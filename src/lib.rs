//! Umbrella crate for the PathExpander reproduction workspace.
//!
//! Re-exports the member crates so that integration tests and examples can use
//! a single dependency. See the individual crates for the real APIs:
//! [`px_isa`], [`px_lang`], [`px_mach`], [`pathexpander`], [`px_detect`],
//! [`px_soft`], [`px_workloads`].

pub use pathexpander;
pub use px_detect;
pub use px_isa;
pub use px_lang;
pub use px_mach;
pub use px_soft;
pub use px_workloads;
