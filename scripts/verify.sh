#!/usr/bin/env bash
# Full offline verification gate — exactly what CI runs.
#
# The workspace is zero-dependency (every crate is an in-tree path crate),
# so everything here must succeed with no network and no registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fault-smoke: 64-case fault-injection campaign"
cargo run --release --offline -q -p px-bench --bin fault_campaign -- --seed 1 --cases 64

echo "verify: OK"
