#!/usr/bin/env bash
# Full offline verification gate — exactly what CI runs.
#
# The workspace is zero-dependency (every crate is an in-tree path crate),
# so everything here must succeed with no network and no registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

# Lint gate: warning-free under clippy. Skips gracefully on toolchains
# without the clippy component installed.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy: not installed, skipping"
fi

echo "==> fault-smoke: 64-case fault-injection campaign"
cargo run --release --offline -q -p px-bench --bin fault_campaign -- --seed 1 --cases 64

# Campaign gate (E16): a 512-case manifest with deliberately panicking and
# runaway chaos cases is run straight through, killed mid-flight (torn
# journal tail), and resumed. The resumed aggregate digest must be
# byte-identical, every case accounted for exactly once, and the
# quarantine must match chaos ground truth.
echo "==> campaign-gate: E16 kill+resume digest identity, 512 cases"
cargo run --release --offline -q -p px-bench --bin campaign_gate -- --check

# Zoo smoke: the quick E15 roster must meet the acceptance criteria
# (every expected bug detected on some engine, zero NT-only false
# positives), and the zoo CLI must be byte-deterministic.
echo "==> zoo-smoke: quick E15 roster + CLI determinism"
cargo run --release --offline -q -p px-bench --bin zoo_tables -- --quick --check
a=$(cargo run --release --offline -q -p px-cli --bin pxc -- zoo run zoo:parser:1 --json)
b=$(cargo run --release --offline -q -p px-cli --bin pxc -- zoo run zoo:parser:1 --json)
if [ "$a" != "$b" ]; then
    echo "zoo-smoke FAILED: pxc zoo run --json is not deterministic" >&2
    exit 1
fi

# Throughput gate: the committed BENCH_throughput.json must carry the
# current schema and this machine's freshly-computed *architectural* digest.
# Wall-clock numbers are machine-specific and are never compared.
echo "==> bench-gate: schema + architectural digest of BENCH_throughput.json"
cargo run --release --offline -q -p px-bench --bin bench_report -- \
    --quick --verify BENCH_throughput.json

echo "verify: OK"
