//! The baseline runner: a monitored run *without* PathExpander.
//!
//! This is the paper's "Baseline" column — the program executes once on one
//! core with full timing, coverage tracking and checker monitoring, but no
//! NT-path exploration.

use px_isa::Program;

use crate::btb::{Btb, Edge};
use crate::cache::{Hierarchy, COMMITTED};
use crate::config::MachConfig;
use crate::core::CoreState;
use crate::coverage::Coverage;
use crate::exec::{step, StepEnv, StepEvent};
use crate::fault::{FaultHook, SimError, MAX_MEM_BYTES};
use crate::io::IoState;
use crate::memory::{CrashKind, Memory};
use crate::monitor::{MonitorArea, MonitorRecord, PathKind, RecordKind};
use crate::watch::WatchTable;

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Clean `exit` system call with this code.
    Exited(i32),
    /// The taken path crashed.
    Crashed(CrashKind),
    /// The instruction budget was exhausted.
    BudgetExhausted,
    /// The *simulator* (not the simulated program) rejected the run: bad
    /// configuration, malformed program, or a broken engine invariant.
    EngineFault(SimError),
}

impl RunExit {
    /// Whether the program exited cleanly with code 0.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, RunExit::Exited(0))
    }

    /// A short class name for histograms and JSON summaries.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            RunExit::Exited(_) => "exited",
            RunExit::Crashed(_) => "crashed",
            RunExit::BudgetExhausted => "budget",
            RunExit::EngineFault(_) => "engine-fault",
        }
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub exit: RunExit,
    /// Instructions retired.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Taken-path branch coverage.
    pub coverage: Coverage,
    /// Checker records (the monitor memory area).
    pub monitor: MonitorArea,
    /// Final I/O state (program output, remaining input).
    pub io: IoState,
    /// Final memory (for test inspection).
    pub memory: Memory,
    /// Final core state (registers and pc) — the committed register file
    /// the containment checker compares against PathExpander runs.
    pub core: CoreState,
}

/// Runs `program` to completion (or `max_instructions`) without PathExpander.
///
/// The run uses core 0 of `cfg`, warms nothing, and is fully deterministic
/// given the input bytes and seed in `io`.
#[must_use]
pub fn run_baseline(
    program: &Program,
    cfg: &MachConfig,
    io: IoState,
    max_instructions: u64,
) -> RunResult {
    run_baseline_with(program, cfg, io, max_instructions, None)
}

/// [`run_baseline`] with an optional fault injector. Baseline has no
/// sandbox, so injected core-level faults are *architectural* — they
/// corrupt the run exactly as a real fault would; deferred (cache-level)
/// faults are PathExpander-specific and are ignored here. Configuration
/// and program problems surface as [`RunExit::EngineFault`].
#[must_use]
pub fn run_baseline_with(
    program: &Program,
    cfg: &MachConfig,
    io: IoState,
    max_instructions: u64,
    mut fault: Option<&mut dyn FaultHook>,
) -> RunResult {
    let fail = |exit: SimError, io: IoState| RunResult {
        exit: RunExit::EngineFault(exit),
        instructions: 0,
        cycles: 0,
        coverage: Coverage::for_program(program),
        monitor: MonitorArea::new(),
        io,
        memory: Memory::new(0),
        core: CoreState::default(),
    };
    if let Err(e) = cfg.validate() {
        return fail(e, io);
    }
    if program.mem_size > MAX_MEM_BYTES {
        return fail(
            SimError::ProgramTooLarge {
                mem_size: program.mem_size,
            },
            io,
        );
    }
    let mut memory = Memory::new(cfg.mem_size.max(program.mem_size));
    for item in &program.data {
        if let Err(e) = memory.try_load_blob(item.addr, &item.bytes) {
            return fail(e, io);
        }
    }
    let mut core = CoreState::at_entry(program.entry, memory.size());
    let mut caches = Hierarchy::new(cfg);
    let mut btb = Btb::new(cfg.btb_entries, cfg.btb_assoc);
    let mut watches = WatchTable::new();
    let mut coverage = Coverage::for_program(program);
    let mut monitor = MonitorArea::new();
    let mut io = io;

    let mut cycles: u64 = 0;
    let mut instructions: u64 = 0;
    let exit = loop {
        if instructions >= max_instructions {
            break RunExit::BudgetExhausted;
        }
        let mut env = StepEnv {
            io: &mut io,
            watches: &mut watches,
            suppress_syscalls: false,
            now_cycles: cycles,
            costs: &cfg.costs,
            fault: fault.as_mut().map(|h| &mut **h as &mut dyn FaultHook),
        };
        let s = step(program, &mut core, &mut memory, &mut env);
        instructions += 1;
        cycles += u64::from(s.base_cost);
        if let Some(access) = s.access {
            let a = caches.access(0, access.addr, access.write, COMMITTED);
            cycles += u64::from(a.cycles);
        }
        match s.event {
            StepEvent::Branch { pc, taken, .. } => {
                let edge = Edge::from_taken(taken);
                btb.exercise(pc, edge);
                coverage.record(pc, edge);
            }
            StepEvent::CheckFailed { kind, site, pc } => monitor.push(MonitorRecord {
                kind: RecordKind::Check(kind),
                site,
                pc,
                cycle: cycles,
                path: PathKind::Taken,
            }),
            StepEvent::WatchHit {
                tag,
                addr,
                is_write,
                pc,
            } => monitor.push(MonitorRecord {
                kind: RecordKind::Watch {
                    tag,
                    addr,
                    is_write,
                },
                site: tag,
                pc,
                cycle: cycles,
                path: PathKind::Taken,
            }),
            StepEvent::Exit { code } => break RunExit::Exited(code),
            StepEvent::Crash { kind, .. } => break RunExit::Crashed(kind),
            StepEvent::Syscall { .. } | StepEvent::None => {}
            StepEvent::UnsafeEvent { .. } => {
                break RunExit::EngineFault(SimError::Invariant(
                    "baseline never suppresses system calls",
                ));
            }
        }
    };

    RunResult {
        exit,
        instructions,
        cycles,
        coverage,
        monitor,
        io,
        memory,
        core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    #[test]
    fn baseline_runs_to_exit_with_coverage() {
        let program = assemble(
            r"
            .code
            main:
                li r1, 3
            loop:
                subi r1, r1, 1
                bgt r1, zero, loop
                li r2, 0
                exit
            ",
        )
        .unwrap();
        let r = run_baseline(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            1_000,
        );
        assert_eq!(r.exit, RunExit::Exited(0));
        // Loop branch: taken twice, not-taken once => both edges covered.
        assert_eq!(r.coverage.covered_edges(&program), 2);
        assert!((r.coverage.branch_coverage(&program) - 1.0).abs() < 1e-12);
        assert!(
            r.cycles > r.instructions,
            "memoryless ALU still costs >= 1 cycle each"
        );
    }

    #[test]
    fn baseline_reports_crash() {
        let program = assemble(".code\nmain:\n  lw r1, 0(zero)\n").unwrap();
        let r = run_baseline(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            100,
        );
        assert!(matches!(
            r.exit,
            RunExit::Crashed(CrashKind::NullDeref { .. })
        ));
    }

    #[test]
    fn baseline_respects_budget() {
        let program = assemble(".code\nmain:\n  jmp main\n").unwrap();
        let r = run_baseline(&program, &MachConfig::single_core(), IoState::default(), 50);
        assert_eq!(r.exit, RunExit::BudgetExhausted);
        assert_eq!(r.instructions, 50);
    }

    #[test]
    fn baseline_collects_monitor_records() {
        let program = assemble(
            r"
            .code
            main:
                li r1, 0
                assert r1, #4
                exit
            ",
        )
        .unwrap();
        let r = run_baseline(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            100,
        );
        assert_eq!(r.monitor.len(), 1);
        assert_eq!(r.monitor.records()[0].site, 4);
        assert_eq!(r.monitor.records()[0].path, PathKind::Taken);
    }

    #[test]
    fn bad_config_is_an_engine_fault_not_a_panic() {
        let program = assemble(".code\nmain:\n  exit\n").unwrap();
        let mut cfg = MachConfig::single_core();
        cfg.cores = 0;
        let r = run_baseline(&program, &cfg, IoState::default(), 100);
        assert_eq!(
            r.exit,
            RunExit::EngineFault(crate::fault::SimError::NoCores)
        );
        assert_eq!(r.exit.class(), "engine-fault");
    }

    #[test]
    fn malformed_program_is_an_engine_fault() {
        // Data item far beyond the data memory: a malformed (or garbage)
        // program must be rejected, not panic the loader.
        let mut program = assemble(".code\nmain:\n  exit\n").unwrap();
        program.data.push(px_isa::DataItem {
            addr: u32::MAX - 2,
            bytes: vec![1, 2, 3, 4],
        });
        let r = run_baseline(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            100,
        );
        assert!(matches!(
            r.exit,
            RunExit::EngineFault(crate::fault::SimError::BlobOutOfBounds { .. })
        ));

        let mut program = assemble(".code\nmain:\n  exit\n").unwrap();
        program.mem_size = u32::MAX;
        let r = run_baseline(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            100,
        );
        assert!(matches!(
            r.exit,
            RunExit::EngineFault(crate::fault::SimError::ProgramTooLarge { .. })
        ));
    }

    #[test]
    fn injected_faults_never_panic_the_baseline() {
        use crate::fault::FaultPlan;
        let program = assemble(
            r"
            .code
            main:
                li r1, 50
            loop:
                subi r1, r1, 1
                sw r1, 0x40(zero)
                bgt r1, zero, loop
                exit
            ",
        )
        .unwrap();
        // Note 0x40(zero) is in the guard page: the program crashes on its
        // own; with aggressive injection it may crash differently or exit.
        for seed in 0..20 {
            let mut plan = FaultPlan::uniform(seed, 2);
            let r = run_baseline_with(
                &program,
                &MachConfig::single_core(),
                IoState::default(),
                10_000,
                Some(&mut plan),
            );
            assert!(
                !matches!(r.exit, RunExit::EngineFault(_)),
                "architectural faults only: {:?}",
                r.exit
            );
        }
    }

    #[test]
    fn io_flows_through() {
        let program = assemble(
            r"
            .code
            main:
                readi
                mv r2, r1
                addi r2, r2, 1
                printi
                li r2, 0
                exit
            ",
        )
        .unwrap();
        let io = IoState::new(b"41".to_vec(), 1);
        let r = run_baseline(&program, &MachConfig::single_core(), io, 100);
        assert_eq!(r.io.output_string(), "42");
    }
}
