//! Machine configuration — the paper's Table 2, plus the instruction cost
//! model the discrete-event engine charges.

use crate::fault::{SimError, MAX_MEM_BYTES};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Access latency in cycles on a hit.
    pub hit_cycles: u32,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size or
    /// capacity not divisible by `assoc * line_bytes`).
    #[must_use]
    pub fn sets(&self) -> u32 {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.assoc) && lines > 0,
            "capacity must be a multiple of assoc * line_bytes"
        );
        lines / self.assoc
    }

    /// Total number of lines.
    #[must_use]
    pub fn lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// Checks the geometry without panicking, returning the set count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadCacheGeometry`] naming the violated rule.
    pub fn validate(&self) -> Result<u32, SimError> {
        if !self.line_bytes.is_power_of_two() {
            return Err(SimError::BadCacheGeometry(
                "line size must be a power of two",
            ));
        }
        if self.assoc == 0 {
            return Err(SimError::BadCacheGeometry(
                "associativity must be at least 1",
            ));
        }
        let lines = self.size_bytes / self.line_bytes;
        if lines == 0 || !lines.is_multiple_of(self.assoc) {
            return Err(SimError::BadCacheGeometry(
                "capacity must be a multiple of assoc * line_bytes",
            ));
        }
        let sets = lines / self.assoc;
        if !sets.is_power_of_two() {
            return Err(SimError::BadCacheGeometry(
                "set count must be a power of two",
            ));
        }
        Ok(sets)
    }
}

/// Per-class instruction costs in cycles (before memory-hierarchy latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU operations, moves, NOPs, predicated fixes.
    pub alu: u32,
    /// Integer multiply.
    pub mul: u32,
    /// Integer divide / remainder.
    pub div: u32,
    /// Branches, jumps, calls, returns (no branch-predictor model; the
    /// paper's overheads are dominated by NT-path work, not by prediction).
    pub control: u32,
    /// System call trap cost (taken path only; NT-paths stop instead).
    pub syscall: u32,
    /// A `check` probe (hardware-assisted monitoring cost).
    pub check: u32,
    /// Setting or clearing a watch range.
    pub watch_op: u32,
    /// Extra cycles when a watchpoint fires and its handler validates the
    /// access (iWatcher's triggered-check cost).
    pub watch_hit: u32,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            alu: 1,
            mul: 3,
            div: 12,
            control: 1,
            syscall: 50,
            check: 2,
            watch_op: 4,
            watch_hit: 20,
        }
    }
}

/// Full machine configuration. `MachConfig::default()` reproduces the
/// paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MachConfig {
    /// Number of cores (4 in the paper; the standard configuration uses 1).
    pub cores: usize,
    /// Core clock in Hz (2.4 GHz in Table 2) — used only to convert cycles
    /// to seconds in reports.
    pub clock_hz: u64,
    /// L1 data cache, per core (16 KB, 4-way, 32 B lines, 3 cycles).
    pub l1: CacheConfig,
    /// Shared L2 (1 MB, 8-way, 32 B lines, 10 cycles).
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (200).
    pub mem_cycles: u32,
    /// BTB entries (2K) and associativity (2-way).
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_assoc: u32,
    /// NT-path spawn overhead in cycles (20: checkpoint / register copy).
    pub spawn_cycles: u32,
    /// NT-path squash overhead in cycles (10: gang invalidation).
    pub squash_cycles: u32,
    /// Instruction cost model.
    pub costs: CostModel,
    /// Data memory size in bytes.
    pub mem_size: u32,
}

impl Default for MachConfig {
    /// The paper's Table 2 parameters.
    fn default() -> MachConfig {
        MachConfig {
            cores: 4,
            clock_hz: 2_400_000_000,
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                assoc: 4,
                line_bytes: 32,
                hit_cycles: 3,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 8,
                line_bytes: 32,
                hit_cycles: 10,
            },
            mem_cycles: 200,
            btb_entries: 2048,
            btb_assoc: 2,
            spawn_cycles: 20,
            squash_cycles: 10,
            costs: CostModel::default(),
            mem_size: px_isa::DEFAULT_MEM_SIZE,
        }
    }
}

impl MachConfig {
    /// A single-core configuration (the paper evaluates the standard
    /// PathExpander configuration on one core).
    #[must_use]
    pub fn single_core() -> MachConfig {
        MachConfig {
            cores: 1,
            ..MachConfig::default()
        }
    }

    /// Checks the whole machine description without panicking. Engines
    /// call this once at run entry so that a bad configuration surfaces as
    /// `RunExit::EngineFault` instead of aborting a sweep.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as a [`SimError`].
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::NoCores);
        }
        self.l1.validate()?;
        self.l2.validate()?;
        if self.btb_assoc == 0 {
            return Err(SimError::BadBtbGeometry("associativity must be at least 1"));
        }
        let btb_sets = self.btb_entries / self.btb_assoc;
        if btb_sets == 0 || !btb_sets.is_power_of_two() {
            return Err(SimError::BadBtbGeometry(
                "sets must be a nonzero power of two",
            ));
        }
        if self.mem_size > MAX_MEM_BYTES {
            return Err(SimError::ProgramTooLarge {
                mem_size: self.mem_size,
            });
        }
        Ok(())
    }

    /// Renders the configuration as the paper's Table 2 rows.
    #[must_use]
    pub fn table2(&self) -> String {
        format!(
            "CPU frequency        {:.1}GHz\n\
             Cores                {}\n\
             BTB                  {}K, {} way\n\
             Squash overhead      {} cycles\n\
             Spawn overhead       {} cycles\n\
             L1 cache             {}KB, {}-way, {}B/line, {} cycles latency\n\
             L2 cache             {}KB, {}-way, {}B/line, {} cycles latency\n\
             Memory               {} cycles latency",
            self.clock_hz as f64 / 1e9,
            self.cores,
            self.btb_entries / 1024,
            self.btb_assoc,
            self.squash_cycles,
            self.spawn_cycles,
            self.l1.size_bytes / 1024,
            self.l1.assoc,
            self.l1.line_bytes,
            self.l1.hit_cycles,
            self.l2.size_bytes / 1024,
            self.l2.assoc,
            self.l2.line_bytes,
            self.l2.hit_cycles,
            self.mem_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults_match_paper() {
        let c = MachConfig::default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1.sets(), 128); // 16KB / 32B / 4-way
        assert_eq!(c.l1.lines(), 512);
        assert_eq!(c.l2.sets(), 4096);
        assert_eq!(c.spawn_cycles, 20);
        assert_eq!(c.squash_cycles, 10);
        let t = c.table2();
        assert!(t.contains("2.4GHz"));
        assert!(t.contains("16KB, 4-way"));
        assert!(t.contains("200 cycles"));
    }

    #[test]
    fn validate_accepts_table2_and_names_violations() {
        use crate::fault::SimError;
        assert!(MachConfig::default().validate().is_ok());
        assert!(MachConfig::single_core().validate().is_ok());
        let c = MachConfig {
            cores: 0,
            ..MachConfig::default()
        };
        assert_eq!(c.validate().unwrap_err(), SimError::NoCores);
        let c = MachConfig {
            btb_assoc: 0,
            ..MachConfig::default()
        };
        assert!(matches!(
            c.validate().unwrap_err(),
            SimError::BadBtbGeometry(_)
        ));
        let c = MachConfig {
            btb_entries: 24,
            btb_assoc: 2, // 12 sets: not a power of two
            ..MachConfig::default()
        };
        assert!(matches!(
            c.validate().unwrap_err(),
            SimError::BadBtbGeometry(_)
        ));
        let c = MachConfig {
            mem_size: u32::MAX,
            ..MachConfig::default()
        };
        assert!(matches!(
            c.validate().unwrap_err(),
            SimError::ProgramTooLarge { .. }
        ));
        let bad_cache = CacheConfig {
            size_bytes: 96,
            assoc: 2,
            line_bytes: 32,
            hit_cycles: 1,
        };
        assert!(bad_cache.validate().is_err(), "3 lines, 2 ways");
        let zero_way = CacheConfig {
            size_bytes: 128,
            assoc: 0,
            line_bytes: 32,
            hit_cycles: 1,
        };
        assert!(zero_way.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let c = CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 24,
            hit_cycles: 1,
        };
        let _ = c.sets();
    }
}
