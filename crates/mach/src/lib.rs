//! # px-mach — the machine model underneath PathExpander
//!
//! This crate is the reproduction's substitute for the paper's cycle-accurate
//! SESC-derived CMP simulator (§6.1): a discrete-event, timing-approximate
//! model of a 4-core chip multiprocessor running the PXVM-32 ISA, with every
//! structure PathExpander's hardware design touches:
//!
//! * an instruction interpreter with exact architectural semantics
//!   ([`exec::step`]), shared by the baseline, both PathExpander hardware
//!   engines, the feasibility harness and the software implementation;
//! * per-core L1 / shared L2 **timing caches with volatile version tags**
//!   ([`cache::Hierarchy`]) implementing the L1 sandbox and its capacity
//!   constraint (paper §4.2(2));
//! * a **BTB with per-edge 4-bit exercise counters** ([`btb::Btb`],
//!   paper §4.1/§4.2(1));
//! * register/PC **checkpoints** ([`core::Checkpoint`], paper §4.2(2));
//! * functional memory with NT-path **sandboxes and copy-on-write snapshots**
//!   ([`memory::Sandbox`]) realizing the CMP option's tree-structured data
//!   dependences (paper Figure 6(c));
//! * the **monitor memory area** ([`monitor::MonitorArea`], paper §4.1) where
//!   checker reports survive squashes;
//! * iWatcher-style **watch ranges** with NT-rollback ([`watch::WatchTable`]);
//! * **branch coverage** tracking ([`coverage::Coverage`], the paper's §2
//!   metric) and a **baseline runner** ([`runner::run_baseline`]) for the
//!   paper's no-PathExpander columns.
//!
//! The default [`MachConfig`] reproduces the paper's Table 2 parameters.
//!
//! What is *not* modeled (and why it does not change the paper's
//! conclusions): out-of-order issue and branch prediction — PathExpander's
//! overheads are dominated by NT-path instruction counts, spawn/squash
//! penalties and memory latency, all of which are modeled with the paper's
//! own parameters. See `DESIGN.md` for the full substitution argument.

pub mod btb;
pub mod cache;
pub mod config;
pub mod core;
pub mod coverage;
pub mod exec;
pub mod fault;
pub mod io;
pub mod memory;
pub mod monitor;
pub mod runner;
pub mod watch;

pub use btb::{Btb, Edge, COUNTER_MAX};
pub use cache::{Access, Cache, Hierarchy, HierarchyStats, Lookup, COMMITTED};
pub use config::{CacheConfig, CostModel, MachConfig};
pub use core::{Checkpoint, CoreState, Regs};
pub use coverage::Coverage;
pub use exec::{step, DataAccess, Step, StepEnv, StepEvent};
pub use fault::{
    FaultAction, FaultHook, FaultKind, FaultMix, FaultPlan, FaultStats, SimError, FAULT_KINDS,
    MAX_MEM_BYTES,
};
pub use io::IoState;
pub use memory::{CrashKind, MemView, Memory, Sandbox, SandboxView};
pub use monitor::{MonitorArea, MonitorRecord, PathKind, RecordKind};
pub use runner::{run_baseline, run_baseline_with, RunExit, RunResult};
pub use watch::{WatchRange, WatchTable};
