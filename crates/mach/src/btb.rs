//! The branch target buffer, extended with PathExpander's per-edge exercise
//! counters (paper §4.1: "extending the BTB with 2 four-bit exercise
//! counters, one for each edge").

use crate::fault::SimError;

/// One of a branch's two edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// The branch condition held and control went to the target.
    Taken,
    /// The branch fell through.
    NotTaken,
}

impl Edge {
    /// Edge from a dynamic outcome.
    #[must_use]
    pub fn from_taken(taken: bool) -> Edge {
        if taken {
            Edge::Taken
        } else {
            Edge::NotTaken
        }
    }

    /// The other edge of the same branch.
    #[must_use]
    pub fn other(self) -> Edge {
        match self {
            Edge::Taken => Edge::NotTaken,
            Edge::NotTaken => Edge::Taken,
        }
    }

    fn idx(self) -> usize {
        match self {
            Edge::Taken => 0,
            Edge::NotTaken => 1,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    tag: u32,
    valid: bool,
    lru: u64,
    counters: [u8; 2],
    /// Reset epoch the counters belong to; counters from an older epoch
    /// read as zero (see [`Btb::reset_counters`]).
    epoch: u64,
}

/// Saturation limit of the 4-bit exercise counters.
pub const COUNTER_MAX: u8 = 15;

/// A set-associative BTB holding 4-bit exercise counters per branch edge.
///
/// A BTB miss reads as count zero (paper §4.2(1)), and allocating a new entry
/// may displace another branch's counters — an intentional source of
/// imprecision the paper inherits from using the BTB as storage.
///
/// Entries live in one flat stride-indexed vector (`set × assoc + way`).
/// The periodic `CounterResetInterval` reset is O(1): it bumps a reset
/// epoch instead of walking every entry, and counters stamped with an older
/// epoch read as zero. With the paper's interval of tens of instructions a
/// physical walk of all 2048 entries would dominate taken-path simulation
/// cost.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    assoc: usize,
    set_bits: u32,
    clock: u64,
    /// Current counter-reset epoch.
    epoch: u64,
    /// Dynamic branches observed since the last counter reset.
    since_reset: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `entries / assoc` is a nonzero power of two (use
    /// [`Btb::try_new`] for untrusted configurations).
    #[must_use]
    pub fn new(entries: u32, assoc: u32) -> Btb {
        Btb::try_new(entries, assoc).expect("BTB sets must be a power of two")
    }

    /// Creates a BTB, rejecting inconsistent geometry without panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadBtbGeometry`] unless `entries / assoc` is a
    /// nonzero power of two.
    pub fn try_new(entries: u32, assoc: u32) -> Result<Btb, SimError> {
        if assoc == 0 {
            return Err(SimError::BadBtbGeometry("associativity must be at least 1"));
        }
        let sets = entries / assoc;
        if sets == 0 || !sets.is_power_of_two() {
            return Err(SimError::BadBtbGeometry(
                "sets must be a nonzero power of two",
            ));
        }
        Ok(Btb {
            entries: vec![BtbEntry::default(); (sets * assoc) as usize],
            assoc: assoc as usize,
            set_bits: sets.trailing_zeros(),
            clock: 0,
            epoch: 0,
            since_reset: 0,
        })
    }

    #[inline]
    fn index(&self, pc: u32) -> (usize, u32) {
        let mask = (1u32 << self.set_bits) - 1;
        ((pc & mask) as usize, pc >> self.set_bits)
    }

    /// The exercise count of `edge` at branch `pc`; a miss reads as zero,
    /// and so does an entry whose counters predate the current reset epoch.
    #[must_use]
    #[inline]
    pub fn edge_count(&self, pc: u32, edge: Edge) -> u8 {
        let (set, tag) = self.index(pc);
        let base = set * self.assoc;
        self.entries[base..base + self.assoc]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map_or(0, |e| {
                if e.epoch == self.epoch {
                    e.counters[edge.idx()]
                } else {
                    0
                }
            })
    }

    /// Records one execution of `edge` at branch `pc`, allocating (and
    /// possibly evicting) a BTB entry. Counters saturate at [`COUNTER_MAX`].
    #[inline]
    pub fn exercise(&mut self, pc: u32, edge: Edge) {
        self.clock += 1;
        self.since_reset += 1;
        let clock = self.clock;
        let epoch = self.epoch;
        let (set, tag) = self.index(pc);
        let base = set * self.assoc;
        let set = &mut self.entries[base..base + self.assoc];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.lru = clock;
            if e.epoch != epoch {
                // First touch since the last reset: the stale counters
                // read as zero, so materialize that before incrementing.
                e.counters = [0, 0];
                e.epoch = epoch;
            }
            let c = &mut e.counters[edge.idx()];
            *c = (*c + 1).min(COUNTER_MAX);
            return;
        }
        let Some(victim) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
        else {
            return;
        };
        let mut entry = BtbEntry {
            tag,
            valid: true,
            lru: clock,
            counters: [0, 0],
            epoch,
        };
        entry.counters[edge.idx()] = 1;
        set[victim] = entry;
    }

    /// Dynamic branch count since the last [`Btb::reset_counters`].
    #[must_use]
    pub fn exercises_since_reset(&self) -> u64 {
        self.since_reset
    }

    /// Clears all exercise counters (the paper's periodic
    /// `CounterResetInterval` reset supporting long-running programs).
    ///
    /// O(1): bumps the reset epoch; stale-epoch counters read as zero.
    /// Entry tags and LRU state survive, exactly as the physical walk this
    /// replaced preserved them.
    pub fn reset_counters(&mut self) {
        self.epoch += 1;
        self.since_reset = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_reads_zero_and_counts_saturate() {
        let mut btb = Btb::new(16, 2);
        assert_eq!(btb.edge_count(100, Edge::Taken), 0);
        for _ in 0..20 {
            btb.exercise(100, Edge::Taken);
        }
        assert_eq!(btb.edge_count(100, Edge::Taken), COUNTER_MAX);
        assert_eq!(btb.edge_count(100, Edge::NotTaken), 0);
    }

    #[test]
    fn edges_counted_independently() {
        let mut btb = Btb::new(16, 2);
        btb.exercise(5, Edge::Taken);
        btb.exercise(5, Edge::NotTaken);
        btb.exercise(5, Edge::NotTaken);
        assert_eq!(btb.edge_count(5, Edge::Taken), 1);
        assert_eq!(btb.edge_count(5, Edge::NotTaken), 2);
    }

    #[test]
    fn conflict_eviction_loses_counts() {
        let mut btb = Btb::new(2, 1); // 2 sets, direct mapped
        btb.exercise(0, Edge::Taken);
        // pc=2 maps to the same set (2 & 1 == 0) and evicts pc=0.
        btb.exercise(2, Edge::Taken);
        assert_eq!(
            btb.edge_count(0, Edge::Taken),
            0,
            "evicted entry reads as zero"
        );
        assert_eq!(btb.edge_count(2, Edge::Taken), 1);
    }

    #[test]
    fn reset_clears_counters() {
        let mut btb = Btb::new(16, 2);
        btb.exercise(7, Edge::Taken);
        assert_eq!(btb.exercises_since_reset(), 1);
        btb.reset_counters();
        assert_eq!(btb.edge_count(7, Edge::Taken), 0);
        assert_eq!(btb.exercises_since_reset(), 0);
    }

    #[test]
    fn try_new_rejects_bad_geometry() {
        assert!(matches!(
            Btb::try_new(24, 2),
            Err(SimError::BadBtbGeometry(_))
        ));
        assert!(matches!(
            Btb::try_new(8, 0),
            Err(SimError::BadBtbGeometry(_))
        ));
        assert!(Btb::try_new(16, 2).is_ok());
    }

    #[test]
    fn edge_other_flips() {
        assert_eq!(Edge::Taken.other(), Edge::NotTaken);
        assert_eq!(Edge::from_taken(true), Edge::Taken);
        assert_eq!(Edge::from_taken(false), Edge::NotTaken);
    }
}
