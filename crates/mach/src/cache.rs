//! Timing caches with PathExpander's volatile tags.
//!
//! The caches are *tag-only* models: functional data lives in
//! [`crate::memory::Memory`] and the per-path sandboxes; the caches determine
//! access latency and, crucially, the **sandbox capacity constraint** — an
//! NT-path whose volatile line would be displaced from L1 must terminate
//! (standard configuration) or be squashed (CMP option), because the L1 is
//! the only place its speculative data may live (paper §4.2(2)).
//!
//! Each L1 line carries a version tag (`vtag`): `0` means committed data; a
//! non-zero value is the path ID of the NT-path (or, in the CMP option, the
//! speculative taken-path segment) that wrote it. This models both the 1-bit
//! Vtag of the standard configuration and the 8-bit version tag of the CMP
//! option with one mechanism.

use crate::config::{CacheConfig, MachConfig};
use crate::fault::SimError;

/// Volatile tag value for committed (non-speculative) data.
pub const COMMITTED: u8 = 0;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    vtag: u8,
    lru: u64,
}

/// What one cache-level lookup did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    Hit,
    /// Miss; a volatile line with this vtag was displaced to make room.
    MissEvictedVolatile(u8),
    /// Miss; the victim was clean/invalid or a committed dirty line
    /// (write-back charged by the caller).
    Miss {
        dirty_writeback: bool,
    },
}

/// A set-associative, write-back, tag-only cache.
///
/// Lines live in one flat, stride-indexed vector (`set × assoc + way`)
/// instead of a vector-of-vectors: one contiguous allocation, no
/// double-indirection on the per-access lookup, and the set shift is
/// precomputed once in [`Cache::new`].
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    assoc: usize,
    line_shift: u32,
    set_mask: u32,
    set_shift: u32,
    clock: u64,
    /// Indices of lines that turned volatile since the last gang
    /// invalidation — the squash's worklist. May hold stale entries (lines
    /// that were since retagged or evicted); gang invalidation re-checks
    /// each. Every currently volatile line is in here at least once, so a
    /// squash visits O(touched) lines instead of the whole cache.
    volatile_idx: Vec<u32>,
    /// MRU hint: the block id (`addr >> line_shift`) the last hit or fill
    /// resolved, `u64::MAX` when unset. Consecutive accesses to the same
    /// line — the dominant pattern of a strided sweep — skip the set scan.
    /// Tags are unique among a set's valid lines, so the hint line is
    /// exactly the line the scan would find; any operation that invalidates
    /// lines outside [`Cache::access`] clears the hint.
    mru_block: u64,
    mru_idx: u32,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets().max(1);
        let assoc = cfg.assoc as usize;
        Cache {
            cfg,
            lines: vec![Line::default(); sets as usize * assoc],
            assoc,
            line_shift: cfg.line_bytes.max(1).trailing_zeros(),
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            clock: 0,
            volatile_idx: Vec::new(),
            mru_block: u64::MAX,
            mru_idx: 0,
        }
    }

    #[inline]
    fn index(&self, addr: u32) -> (usize, u32) {
        let line_addr = addr >> self.line_shift;
        (
            (line_addr & self.set_mask) as usize,
            line_addr >> self.set_shift,
        )
    }

    /// Accesses `addr`; on a write, the line's vtag becomes `vtag`.
    #[inline]
    pub fn access(&mut self, addr: u32, write: bool, vtag: u8) -> Lookup {
        self.clock += 1;
        let block = u64::from(addr >> self.line_shift);
        if block == self.mru_block {
            // Same line as the previous hit/fill: skip the set scan. The
            // bookkeeping below is byte-for-byte the scan's hit path.
            let idx = self.mru_idx as usize;
            let line = &mut self.lines[idx];
            debug_assert!(line.valid);
            line.lru = self.clock;
            if write {
                line.dirty = true;
                let was_committed = line.vtag == COMMITTED;
                line.vtag = vtag;
                if vtag != COMMITTED && was_committed {
                    self.volatile_idx.push(idx as u32);
                }
            }
            return Lookup::Hit;
        }
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.assoc;
        let set = &mut self.lines[base..base + self.assoc];

        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            let line = &mut set[way];
            line.lru = self.clock;
            if write {
                line.dirty = true;
                let was_committed = line.vtag == COMMITTED;
                line.vtag = vtag;
                if vtag != COMMITTED && was_committed {
                    self.volatile_idx.push((base + way) as u32);
                }
            }
            self.mru_block = block;
            self.mru_idx = (base + way) as u32;
            return Lookup::Hit;
        }

        // A zero-way set (degenerate geometry that bypassed validation) can
        // hold nothing: every access is an uncached miss, never a panic.
        if set.is_empty() {
            return Lookup::Miss {
                dirty_writeback: false,
            };
        }

        // Miss: pick a victim. Prefer invalid, then LRU non-volatile, then
        // LRU volatile (which kills the owning path).
        let victim = {
            let mut best: Option<(usize, u64, bool)> = None; // (way, lru, volatile)
            for (way, line) in set.iter().enumerate() {
                if !line.valid {
                    best = Some((way, 0, false));
                    break;
                }
                let volatile = line.vtag != COMMITTED;
                let candidate = (way, line.lru, volatile);
                best = Some(match best {
                    None => candidate,
                    Some(cur) => {
                        // Prefer non-volatile; among equals, prefer older.
                        let better = match (cur.2, volatile) {
                            (true, false) => true,
                            (false, true) => false,
                            _ => line.lru < cur.1,
                        };
                        if better {
                            candidate
                        } else {
                            cur
                        }
                    }
                });
            }
            // The set is non-empty (guarded above), so a victim exists.
            best.map_or(0, |(way, _, _)| way)
        };

        let evicted = set[victim];
        set[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            vtag: if write { vtag } else { COMMITTED },
            lru: self.clock,
        };
        if write && vtag != COMMITTED {
            self.volatile_idx.push((base + victim) as u32);
        }
        self.mru_block = block;
        self.mru_idx = (base + victim) as u32;
        if evicted.valid && evicted.vtag != COMMITTED {
            Lookup::MissEvictedVolatile(evicted.vtag)
        } else {
            Lookup::Miss {
                dirty_writeback: evicted.valid && evicted.dirty,
            }
        }
    }

    /// Invalidates every line tagged `vtag` and returns how many there were
    /// (PathExpander's gang invalidation on squash).
    ///
    /// Walks the volatile worklist rather than the whole cache: a squash
    /// costs O(lines the path actually touched). Entries for other vtags
    /// (CMP's concurrent paths) are kept; stale entries are dropped.
    pub fn gang_invalidate(&mut self, vtag: u8) -> u32 {
        debug_assert_ne!(vtag, COMMITTED, "cannot gang-invalidate committed data");
        self.mru_block = u64::MAX;
        let mut n = 0;
        let mut kept = 0;
        for i in 0..self.volatile_idx.len() {
            let idx = self.volatile_idx[i] as usize;
            let line = &mut self.lines[idx];
            if line.valid && line.vtag == vtag {
                line.valid = false;
                line.dirty = false;
                line.vtag = COMMITTED;
                n += 1;
            } else if line.valid && line.vtag != COMMITTED {
                self.volatile_idx[kept] = idx as u32;
                kept += 1;
            }
        }
        self.volatile_idx.truncate(kept);
        n
    }

    /// Lazily commits every line tagged `vtag` by retagging it as committed
    /// data (the CMP option's lazy commit, paper §4.3).
    pub fn commit_vtag(&mut self, vtag: u8) -> u32 {
        debug_assert_ne!(vtag, COMMITTED);
        let mut n = 0;
        for line in &mut self.lines {
            if line.valid && line.vtag == vtag {
                line.vtag = COMMITTED;
                n += 1;
            }
        }
        n
    }

    /// Number of currently volatile lines (any non-zero vtag).
    #[must_use]
    pub fn volatile_lines(&self) -> u32 {
        self.lines
            .iter()
            .filter(|l| l.valid && l.vtag != COMMITTED)
            .count() as u32
    }

    /// The cache's geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Fault injection: retags one valid line (chosen by `entropy`) with
    /// `vtag`. Returns whether a line was retagged (a fully invalid cache
    /// has nothing to corrupt).
    pub fn flip_vtag(&mut self, entropy: u64, vtag: u8) -> bool {
        self.mru_block = u64::MAX;
        let valid: u64 = self.lines.iter().filter(|l| l.valid).count() as u64;
        if valid == 0 {
            return false;
        }
        let mut target = entropy % valid;
        for (idx, line) in self.lines.iter_mut().enumerate() {
            if line.valid {
                if target == 0 {
                    line.vtag = vtag;
                    line.dirty = line.dirty || vtag != COMMITTED;
                    if vtag != COMMITTED {
                        self.volatile_idx.push(idx as u32);
                    }
                    return true;
                }
                target -= 1;
            }
        }
        false
    }

    /// Fault injection: marks every line of one set (chosen by `entropy`)
    /// as a valid, dirty, volatile line owned by `vtag` — the next miss in
    /// that set is forced to displace a volatile line, exhausting the
    /// owning path's sandbox capacity. Returns the number of lines marked.
    pub fn poison_set_volatile(&mut self, entropy: u64, vtag: u8) -> u32 {
        if self.assoc == 0 || vtag == COMMITTED {
            return 0;
        }
        self.mru_block = u64::MAX;
        let set_idx = (entropy % (u64::from(self.set_mask) + 1)) as usize;
        let clock = self.clock;
        let base = set_idx * self.assoc;
        let mut n = 0;
        for (way, line) in self.lines[base..base + self.assoc].iter_mut().enumerate() {
            line.valid = true;
            line.dirty = true;
            line.vtag = vtag;
            line.lru = clock;
            self.volatile_idx.push((base + way) as u32);
            n += 1;
        }
        n
    }
}

/// Result of a full-hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Latency charged for the access.
    pub cycles: u32,
    /// A volatile L1 line owned by this path ID was displaced: the owning
    /// NT-path (or speculative segment) can no longer be contained and must
    /// be squashed.
    pub volatile_evicted: Option<u8>,
    /// Whether the access missed in L1.
    pub l1_miss: bool,
}

/// Per-core L1s over a shared L2, with flat memory behind.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Vec<Cache>,
    l2: Cache,
    mem_cycles: u32,
    /// Cumulative statistics.
    pub stats: HierarchyStats,
}

/// Hit/miss counters for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
}

impl Hierarchy {
    /// Builds the hierarchy described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent cache geometry (use [`Hierarchy::try_new`]
    /// for untrusted configurations).
    #[must_use]
    pub fn new(cfg: &MachConfig) -> Hierarchy {
        Hierarchy {
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: Cache::new(cfg.l2),
            mem_cycles: cfg.mem_cycles,
            stats: HierarchyStats::default(),
        }
    }

    /// Builds the hierarchy after validating the configuration, so bad
    /// geometry surfaces as a [`SimError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns the first geometry rule `cfg` violates.
    pub fn try_new(cfg: &MachConfig) -> Result<Hierarchy, SimError> {
        cfg.validate()?;
        Ok(Hierarchy::new(cfg))
    }

    /// Number of per-core L1 caches.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Performs a data access from `core`, tagging written lines with
    /// `vtag`. An out-of-range core is charged main-memory latency and
    /// touches no cache state (defensive: engines validate core counts up
    /// front, so this is unreachable from validated configurations).
    #[inline]
    pub fn access(&mut self, core: usize, addr: u32, write: bool, vtag: u8) -> Access {
        let Some(l1) = self.l1.get_mut(core) else {
            return Access {
                cycles: self.mem_cycles,
                volatile_evicted: None,
                l1_miss: true,
            };
        };
        let l1_hit_cycles = l1.config().hit_cycles;
        match l1.access(addr, write, vtag) {
            Lookup::Hit => {
                self.stats.l1_hits += 1;
                Access {
                    cycles: l1_hit_cycles,
                    volatile_evicted: None,
                    l1_miss: false,
                }
            }
            Lookup::MissEvictedVolatile(owner) => {
                self.stats.l1_misses += 1;
                let cycles = l1_hit_cycles + self.l2_fill(addr);
                Access {
                    cycles,
                    volatile_evicted: Some(owner),
                    l1_miss: true,
                }
            }
            Lookup::Miss { dirty_writeback } => {
                self.stats.l1_misses += 1;
                let mut cycles = l1_hit_cycles + self.l2_fill(addr);
                if dirty_writeback {
                    cycles += self.l2.config().hit_cycles;
                }
                Access {
                    cycles,
                    volatile_evicted: None,
                    l1_miss: true,
                }
            }
        }
    }

    fn l2_fill(&mut self, addr: u32) -> u32 {
        match self.l2.access(addr, false, COMMITTED) {
            Lookup::Hit => {
                self.stats.l2_hits += 1;
                self.l2.config().hit_cycles
            }
            _ => {
                self.stats.l2_misses += 1;
                self.l2.config().hit_cycles + self.mem_cycles
            }
        }
    }

    /// Gang-invalidates all of `core`'s L1 lines tagged `vtag`; returns the
    /// number of lines dropped. Out-of-range cores drop nothing.
    pub fn squash_path(&mut self, core: usize, vtag: u8) -> u32 {
        self.l1.get_mut(core).map_or(0, |c| c.gang_invalidate(vtag))
    }

    /// Commits all of `core`'s L1 lines tagged `vtag`. Out-of-range cores
    /// commit nothing.
    pub fn commit_path(&mut self, core: usize, vtag: u8) -> u32 {
        self.l1.get_mut(core).map_or(0, |c| c.commit_vtag(vtag))
    }

    /// Volatile line count in one core's L1 (0 for out-of-range cores).
    #[must_use]
    pub fn volatile_lines(&self, core: usize) -> u32 {
        self.l1.get(core).map_or(0, Cache::volatile_lines)
    }

    /// Fault injection: retags one valid line of `core`'s L1 with `vtag`
    /// (see [`Cache::flip_vtag`]).
    pub fn inject_vtag_flip(&mut self, core: usize, entropy: u64, vtag: u8) -> bool {
        self.l1
            .get_mut(core)
            .is_some_and(|c| c.flip_vtag(entropy, vtag))
    }

    /// Fault injection: marks a whole L1 set of `core` volatile with `vtag`
    /// (see [`Cache::poison_set_volatile`]).
    pub fn inject_volatile_fill(&mut self, core: usize, entropy: u64, vtag: u8) -> u32 {
        self.l1
            .get_mut(core)
            .map_or(0, |c| c.poison_set_volatile(entropy, vtag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 lines of 32B, 2-way => 2 sets.
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
            line_bytes: 32,
            hit_cycles: 3,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache();
        assert_eq!(
            c.access(0x1000, false, COMMITTED),
            Lookup::Miss {
                dirty_writeback: false
            }
        );
        assert_eq!(c.access(0x1000, false, COMMITTED), Lookup::Hit);
        assert_eq!(c.access(0x101F, false, COMMITTED), Lookup::Hit, "same line");
        assert!(
            matches!(c.access(0x1020, false, COMMITTED), Lookup::Miss { .. }),
            "next line"
        );
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut c = small_cache();
        // Three lines mapping to set 0 (stride = 2 sets * 32B = 64B).
        let a = 0x1000;
        let b = 0x1040;
        let d = 0x1080;
        assert!(matches!(
            c.access(a, true, COMMITTED),
            Lookup::Miss {
                dirty_writeback: false
            }
        ));
        assert!(matches!(c.access(b, false, COMMITTED), Lookup::Miss { .. }));
        // `a` is LRU victim and dirty.
        assert_eq!(
            c.access(d, false, COMMITTED),
            Lookup::Miss {
                dirty_writeback: true
            }
        );
    }

    #[test]
    fn volatile_lines_preferred_as_survivors() {
        let mut c = small_cache();
        let a = 0x1000;
        let b = 0x1040;
        let d = 0x1080;
        c.access(a, true, 5); // volatile, older
        c.access(b, false, COMMITTED); // committed, newer
                                       // Victim should be the committed line even though the volatile one is older.
        assert_eq!(
            c.access(d, false, COMMITTED),
            Lookup::Miss {
                dirty_writeback: false
            }
        );
        assert_eq!(c.volatile_lines(), 1);
    }

    #[test]
    fn all_volatile_set_kills_a_path() {
        let mut c = small_cache();
        c.access(0x1000, true, 5);
        c.access(0x1040, true, 6);
        // Set 0 is now entirely volatile; a third line must displace one.
        match c.access(0x1080, false, COMMITTED) {
            Lookup::MissEvictedVolatile(owner) => assert_eq!(owner, 5, "LRU volatile dies"),
            other => panic!("expected volatile eviction, got {other:?}"),
        }
    }

    #[test]
    fn gang_invalidate_and_commit() {
        let mut c = small_cache();
        c.access(0x1000, true, 5);
        c.access(0x1020, true, 5);
        c.access(0x1040, true, 7);
        assert_eq!(c.volatile_lines(), 3);
        assert_eq!(c.gang_invalidate(5), 2);
        assert_eq!(c.volatile_lines(), 1);
        assert_eq!(c.commit_vtag(7), 1);
        assert_eq!(c.volatile_lines(), 0);
        // Committed line still resident.
        assert_eq!(c.access(0x1040, false, COMMITTED), Lookup::Hit);
        // Invalidated lines are gone.
        assert!(matches!(
            c.access(0x1000, false, COMMITTED),
            Lookup::Miss { .. }
        ));
    }

    #[test]
    fn hierarchy_latencies_follow_table2() {
        let cfg = MachConfig::default();
        let mut h = Hierarchy::new(&cfg);
        // Cold: L1 miss + L2 miss + memory.
        let first = h.access(0, 0x2000, false, COMMITTED);
        assert_eq!(first.cycles, 3 + 10 + 200);
        assert!(first.l1_miss);
        // Warm L1.
        let second = h.access(0, 0x2000, false, COMMITTED);
        assert_eq!(second.cycles, 3);
        // Another core: misses its own L1, hits shared L2.
        let third = h.access(1, 0x2000, false, COMMITTED);
        assert_eq!(third.cycles, 3 + 10);
        assert_eq!(h.stats.l1_hits, 1);
        assert_eq!(h.stats.l1_misses, 2);
        assert_eq!(h.stats.l2_hits, 1);
        assert_eq!(h.stats.l2_misses, 1);
    }

    #[test]
    fn squash_path_drops_only_that_core() {
        let cfg = MachConfig::default();
        let mut h = Hierarchy::new(&cfg);
        h.access(0, 0x3000, true, 9);
        h.access(1, 0x3000, true, 9);
        assert_eq!(h.squash_path(0, 9), 1);
        assert_eq!(h.volatile_lines(0), 0);
        assert_eq!(h.volatile_lines(1), 1);
    }

    #[test]
    fn out_of_range_core_never_panics() {
        let cfg = MachConfig::single_core();
        let mut h = Hierarchy::new(&cfg);
        let a = h.access(7, 0x3000, true, 1);
        assert_eq!(a.cycles, cfg.mem_cycles);
        assert_eq!(h.squash_path(7, 1), 0);
        assert_eq!(h.commit_path(7, 1), 0);
        assert_eq!(h.volatile_lines(7), 0);
        assert!(!h.inject_vtag_flip(7, 0, 1));
        assert_eq!(h.inject_volatile_fill(7, 0, 1), 0);
    }

    #[test]
    fn try_new_rejects_bad_geometry() {
        let mut cfg = MachConfig::default();
        cfg.l1.line_bytes = 24;
        assert!(matches!(
            Hierarchy::try_new(&cfg),
            Err(SimError::BadCacheGeometry(_))
        ));
        let cfg = MachConfig {
            cores: 0,
            ..MachConfig::default()
        };
        assert_eq!(Hierarchy::try_new(&cfg).unwrap_err(), SimError::NoCores);
        assert!(Hierarchy::try_new(&MachConfig::default()).is_ok());
    }

    #[test]
    fn poison_set_forces_volatile_eviction() {
        let mut c = small_cache();
        assert_eq!(c.poison_set_volatile(0, 5), 2, "2-way set fully marked");
        // Set 0 is now entirely volatile with vtag 5: a miss there must
        // displace one of the poisoned lines.
        assert!(matches!(
            c.access(0x1000, false, COMMITTED),
            Lookup::MissEvictedVolatile(5) | Lookup::Hit
        ));
        assert_eq!(
            c.poison_set_volatile(0, COMMITTED),
            0,
            "committed is not a path"
        );
    }

    #[test]
    fn flip_vtag_retags_exactly_one_line() {
        let mut c = small_cache();
        assert!(!c.flip_vtag(3, 9), "empty cache has nothing to corrupt");
        c.access(0x1000, false, COMMITTED);
        c.access(0x1040, false, COMMITTED);
        assert!(c.flip_vtag(1, 9));
        assert_eq!(c.volatile_lines(), 1);
    }
}
