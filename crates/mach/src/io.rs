//! Program I/O and the deterministic random-number source behind the
//! `rand` system call.

/// Input, output and entropy for a program run. All state is deterministic
/// so that every experiment is reproducible.
#[derive(Debug, Clone)]
pub struct IoState {
    input: Vec<u8>,
    pos: usize,
    output: Vec<u8>,
    rng_state: u64,
    input_failed: bool,
}

impl Default for IoState {
    fn default() -> IoState {
        IoState::new(Vec::new(), 0x9E3779B97F4A7C15)
    }
}

impl IoState {
    /// Creates I/O state with the given input bytes and RNG seed.
    #[must_use]
    pub fn new(input: Vec<u8>, seed: u64) -> IoState {
        IoState {
            input,
            pos: 0,
            output: Vec::new(),
            rng_state: seed.max(1),
            input_failed: false,
        }
    }

    /// Injects an input error: from now on every read reports end-of-input,
    /// modeling a failed/closed input stream (fault injection).
    pub fn fail_input(&mut self) {
        self.input_failed = true;
    }

    /// Whether an input error has been injected.
    #[must_use]
    pub fn input_failed(&self) -> bool {
        self.input_failed
    }

    /// Reads one input byte; `-1` at end of input or after an input error.
    pub fn get_char(&mut self) -> i32 {
        if self.input_failed {
            return -1;
        }
        match self.input.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                i32::from(b)
            }
            None => -1,
        }
    }

    /// Reads a whitespace-delimited signed decimal integer; `-1` at end of
    /// input, after an input error, or when no digits are found.
    pub fn read_int(&mut self) -> i32 {
        if self.input_failed {
            return -1;
        }
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        let mut negative = false;
        if self.input.get(self.pos) == Some(&b'-') {
            negative = true;
            self.pos += 1;
        }
        let start = self.pos;
        let mut value: i64 = 0;
        while let Some(&b) = self.input.get(self.pos) {
            if !b.is_ascii_digit() {
                break;
            }
            value = value * 10 + i64::from(b - b'0');
            self.pos += 1;
        }
        if self.pos == start {
            return -1;
        }
        let v = if negative { -value } else { value };
        v as i32
    }

    /// Appends one byte to the output stream.
    pub fn put_char(&mut self, byte: u8) {
        self.output.push(byte);
    }

    /// Appends a decimal integer to the output stream.
    pub fn print_int(&mut self, value: i32) {
        self.output.extend_from_slice(value.to_string().as_bytes());
    }

    /// Next pseudo-random non-negative 31-bit integer (xorshift64*).
    pub fn rand(&mut self) -> i32 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) & 0x7FFF_FFFF) as i32
    }

    /// Everything the program has written.
    #[must_use]
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The output as UTF-8 (lossy) for assertions in tests.
    #[must_use]
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Bytes of input not yet consumed.
    #[must_use]
    pub fn remaining_input(&self) -> usize {
        self.input.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_char_walks_input_then_eof() {
        let mut io = IoState::new(b"ab".to_vec(), 1);
        assert_eq!(io.get_char(), i32::from(b'a'));
        assert_eq!(io.get_char(), i32::from(b'b'));
        assert_eq!(io.get_char(), -1);
        assert_eq!(io.get_char(), -1);
    }

    #[test]
    fn read_int_parses_signed_decimals() {
        let mut io = IoState::new(b"  42 -17\nx".to_vec(), 1);
        assert_eq!(io.read_int(), 42);
        assert_eq!(io.read_int(), -17);
        assert_eq!(io.read_int(), -1, "x is not a digit");
    }

    #[test]
    fn output_accumulates() {
        let mut io = IoState::default();
        io.put_char(b'n');
        io.put_char(b'=');
        io.print_int(-5);
        assert_eq!(io.output_string(), "n=-5");
    }

    #[test]
    fn injected_input_error_reads_as_eof() {
        let mut io = IoState::new(b"a 42".to_vec(), 1);
        assert_eq!(io.get_char(), i32::from(b'a'));
        io.fail_input();
        assert!(io.input_failed());
        assert_eq!(io.get_char(), -1);
        assert_eq!(io.read_int(), -1);
    }

    #[test]
    fn rand_is_deterministic_and_non_negative() {
        let mut a = IoState::new(Vec::new(), 12345);
        let mut b = IoState::new(Vec::new(), 12345);
        for _ in 0..100 {
            let x = a.rand();
            assert_eq!(x, b.rand());
            assert!(x >= 0);
        }
        let mut c = IoState::new(Vec::new(), 54321);
        let diverges = (0..10).any(|_| a.rand() != c.rand());
        assert!(diverges, "different seeds should diverge");
    }
}
