//! The instruction interpreter: one architectural step of one core.
//!
//! The interpreter is *pure* with respect to timing — it reports the
//! instruction's base cost and any data access, and the caller (the baseline
//! runner or a PathExpander engine) charges the memory hierarchy. This split
//! lets every engine (baseline, standard, CMP, feasibility, software
//! implementation) share one set of semantics.

use px_isa::{CheckKind, Instruction, Program, Reg, SyscallCode, Width, DATA_BASE};

use crate::config::CostModel;
use crate::core::CoreState;
use crate::fault::{FaultAction, FaultHook};
use crate::io::IoState;
use crate::memory::{CrashKind, MemView};
use crate::watch::WatchTable;

/// A data-memory access performed by a step, for cache timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Byte address of the first accessed byte.
    pub addr: u32,
    /// Whether the access wrote memory.
    pub write: bool,
}

/// What a step observed, beyond plain register updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Nothing notable.
    None,
    /// A conditional branch resolved. `pc` is the branch's own index.
    /// `operands` are the compared values — the raw material for
    /// value-profile collection (profile-guided fix refitting).
    Branch {
        pc: u32,
        taken: bool,
        taken_target: u32,
        not_taken_target: u32,
        operands: (i32, i32),
    },
    /// A system call executed (taken path).
    Syscall { code: SyscallCode },
    /// A system call was *suppressed* because the step ran in an NT-path
    /// sandbox: the paper's unsafe event. The core state is unchanged and
    /// the program counter still points at the system call.
    UnsafeEvent { code: SyscallCode },
    /// A `check` probe failed (its condition was zero).
    CheckFailed { kind: CheckKind, site: u32, pc: u32 },
    /// A load/store touched a watched range.
    WatchHit {
        tag: u32,
        addr: u32,
        is_write: bool,
        pc: u32,
    },
    /// The program exited via the `exit` system call.
    Exit { code: i32 },
    /// The step crashed; the core state is unchanged.
    Crash { kind: CrashKind, pc: u32 },
}

impl StepEvent {
    /// Whether this event ends the current path (exit or crash) or, inside
    /// an NT-path, forces termination (unsafe event).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            StepEvent::Exit { .. } | StepEvent::Crash { .. } | StepEvent::UnsafeEvent { .. }
        )
    }
}

/// Result of one architectural step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The event observed, if any.
    pub event: StepEvent,
    /// Cycles charged before memory-hierarchy latency.
    pub base_cost: u32,
    /// The data access to run through the caches, if any.
    pub access: Option<DataAccess>,
    /// An injected fault the *caller* must apply (cache-level faults the
    /// interpreter cannot reach — see [`FaultAction::is_deferred`]).
    pub deferred: Option<FaultAction>,
}

/// Mutable environment a step executes in.
pub struct StepEnv<'a, 'f> {
    /// Program I/O and entropy.
    pub io: &'a mut IoState,
    /// Active watch ranges.
    pub watches: &'a mut WatchTable,
    /// When true (NT-path execution), system calls are suppressed and
    /// reported as [`StepEvent::UnsafeEvent`].
    pub suppress_syscalls: bool,
    /// Current simulated cycle (for the `time` system call).
    pub now_cycles: u64,
    /// Instruction cost model.
    pub costs: &'a CostModel,
    /// Optional fault injector, consulted once per step. `None` (the
    /// production configuration) costs one branch per step. A separate
    /// lifetime: `&mut dyn` is invariant, and tying the hook to `'a` would
    /// force every other borrow in the environment to match it exactly.
    pub fault: Option<&'f mut (dyn FaultHook + 'f)>,
}

impl core::fmt::Debug for StepEnv<'_, '_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StepEnv")
            .field("io", &self.io)
            .field("watches", &self.watches)
            .field("suppress_syscalls", &self.suppress_syscalls)
            .field("now_cycles", &self.now_cycles)
            .field("costs", &self.costs)
            .field("fault", &self.fault.is_some())
            .finish()
    }
}

/// Executes one instruction of `core` against `mem`.
///
/// On [`StepEvent::Crash`] and [`StepEvent::UnsafeEvent`] the core state is
/// left unchanged (the caller squashes or faults); on every other event the
/// core has advanced.
///
/// Generic over the memory view so each engine's hot loop monomorphizes —
/// loads and stores inline instead of going through a vtable. `?Sized`
/// keeps `&mut dyn MemView` callers working unchanged.
#[inline]
pub fn step<M: MemView + ?Sized>(
    program: &Program,
    core: &mut CoreState,
    mem: &mut M,
    env: &mut StepEnv<'_, '_>,
) -> Step {
    let pc = core.pc;
    let Some(insn) = program.fetch(pc) else {
        return Step {
            event: StepEvent::Crash {
                kind: CrashKind::BadPc { pc },
                pc,
            },
            base_cost: env.costs.control,
            access: None,
            deferred: None,
        };
    };

    // Fault injection: core-level faults apply right here (against whatever
    // MemView this step runs on — an NT-path's faults land in its sandbox);
    // cache-level faults are handed back to the engine via `deferred`.
    let mut deferred: Option<FaultAction> = None;
    let mut redirect: Option<u32> = None;
    if let Some(hook) = env.fault.as_mut() {
        if let Some(action) = hook.before_step(pc) {
            match action {
                FaultAction::ForceCrash { kind } => {
                    return Step {
                        event: StepEvent::Crash { kind, pc },
                        base_cost: env.costs.control,
                        access: None,
                        deferred: None,
                    };
                }
                FaultAction::FlipMemBit { entropy, bit } => {
                    flip_mem_bit(program, mem, entropy, bit);
                }
                FaultAction::RedirectBack { max_back } => redirect = Some(max_back),
                // When system calls are suppressed the step's IoState is the
                // caller's *real* I/O that the path can never observe —
                // failing it would leak the fault past a squash. Only paths
                // that can actually read input (taken path, or an NT-path
                // with an OS-sandbox scratch snapshot) take the error.
                FaultAction::FailInput => {
                    if !env.suppress_syscalls {
                        env.io.fail_input();
                    }
                }
                other => deferred = Some(other),
            }
        }
    }

    // Control transfers clear the NT-entry predicate (design decision D1):
    // the variable-fixing window is the NT-path's entry basic block.
    let mut next_pred = core.pred && !insn.is_control_transfer();
    let costs = env.costs;
    let mut base_cost = costs.alu;
    let mut access = None;
    let mut event = StepEvent::None;
    let mut next_pc = pc.wrapping_add(1);

    macro_rules! crash {
        ($kind:expr) => {
            return Step {
                event: StepEvent::Crash { kind: $kind, pc },
                base_cost,
                access: None,
                deferred,
            }
        };
    }

    match insn {
        Instruction::Nop => {}
        Instruction::Alu { op, rd, rs1, rs2 } => {
            base_cost = alu_cost(op, costs);
            let a = core.regs.get(rs1);
            let b = core.regs.get(rs2);
            match op.eval(a, b) {
                Some(v) => core.regs.set(rd, v),
                None => crash!(CrashKind::DivByZero),
            }
        }
        Instruction::AluI { op, rd, rs1, imm } => {
            base_cost = alu_cost(op, costs);
            let a = core.regs.get(rs1);
            match op.eval(a, imm) {
                Some(v) => core.regs.set(rd, v),
                None => crash!(CrashKind::DivByZero),
            }
        }
        Instruction::Load {
            width,
            rd,
            base,
            offset,
        } => {
            let addr = (core.regs.get(base) as u32).wrapping_add(offset as u32);
            match mem.load(addr, width) {
                Ok(v) => {
                    core.regs.set(rd, v);
                    access = Some(DataAccess { addr, write: false });
                    if let Some(tag) = env.watches.hit(addr, width.bytes()) {
                        base_cost += costs.watch_hit;
                        event = StepEvent::WatchHit {
                            tag,
                            addr,
                            is_write: false,
                            pc,
                        };
                    }
                }
                Err(kind) => crash!(kind),
            }
        }
        Instruction::Store {
            width,
            rs,
            base,
            offset,
        } => {
            let addr = (core.regs.get(base) as u32).wrapping_add(offset as u32);
            match mem.store(addr, core.regs.get(rs), width) {
                Ok(()) => {
                    access = Some(DataAccess { addr, write: true });
                    if let Some(tag) = env.watches.hit(addr, width.bytes()) {
                        base_cost += costs.watch_hit;
                        event = StepEvent::WatchHit {
                            tag,
                            addr,
                            is_write: true,
                            pc,
                        };
                    }
                }
                Err(kind) => crash!(kind),
            }
        }
        Instruction::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            base_cost = costs.control;
            let a = core.regs.get(rs1);
            let b = core.regs.get(rs2);
            let taken = cond.eval(a, b);
            let not_taken_target = pc + 1;
            if taken {
                if !program.valid_pc(target) {
                    crash!(CrashKind::BadPc { pc: target });
                }
                next_pc = target;
            }
            event = StepEvent::Branch {
                pc,
                taken,
                taken_target: target,
                not_taken_target,
                operands: (a, b),
            };
        }
        Instruction::Jump { target } => {
            base_cost = costs.control;
            if !program.valid_pc(target) {
                crash!(CrashKind::BadPc { pc: target });
            }
            next_pc = target;
        }
        Instruction::Call { target } => {
            base_cost = costs.control;
            if !program.valid_pc(target) {
                crash!(CrashKind::BadPc { pc: target });
            }
            core.regs.set(Reg::RA, (pc + 1) as i32);
            next_pc = target;
        }
        Instruction::Ret => {
            base_cost = costs.control;
            let target = core.regs.get(Reg::RA) as u32;
            if !program.valid_pc(target) {
                crash!(CrashKind::BadPc { pc: target });
            }
            next_pc = target;
        }
        Instruction::Syscall { code } => {
            if env.suppress_syscalls {
                return Step {
                    event: StepEvent::UnsafeEvent { code },
                    base_cost: costs.control,
                    access: None,
                    deferred,
                };
            }
            base_cost = costs.syscall;
            match code {
                SyscallCode::Exit => {
                    return Step {
                        event: StepEvent::Exit {
                            code: core.regs.get(Reg::A0),
                        },
                        base_cost,
                        access: None,
                        deferred,
                    };
                }
                SyscallCode::PutChar => env.io.put_char(core.regs.get(Reg::A0) as u8),
                SyscallCode::GetChar => {
                    let v = env.io.get_char();
                    core.regs.set(Reg::RV, v);
                }
                SyscallCode::PrintInt => env.io.print_int(core.regs.get(Reg::A0)),
                SyscallCode::ReadInt => {
                    let v = env.io.read_int();
                    core.regs.set(Reg::RV, v);
                }
                SyscallCode::Rand => {
                    let v = env.io.rand();
                    core.regs.set(Reg::RV, v);
                }
                SyscallCode::Time => {
                    core.regs
                        .set(Reg::RV, (env.now_cycles & 0x7FFF_FFFF) as i32);
                }
            }
            event = StepEvent::Syscall { code };
        }
        Instruction::Check { kind, cond, site } => {
            base_cost = costs.check;
            if core.regs.get(cond) == 0 {
                event = StepEvent::CheckFailed { kind, site, pc };
            }
        }
        Instruction::SetWatch { base, len, tag } => {
            base_cost = costs.watch_op;
            let lo = core.regs.get(base) as u32;
            let len = core.regs.get(len).max(0) as u32;
            env.watches.set(lo, len, tag);
        }
        Instruction::ClearWatch { tag } => {
            base_cost = costs.watch_op;
            env.watches.clear(tag);
        }
        Instruction::PMovI { rd, imm } => {
            if core.pred {
                core.regs.set(rd, imm);
            }
        }
        Instruction::PMov { rd, rs } => {
            if core.pred {
                let v = core.regs.get(rs);
                core.regs.set(rd, v);
            }
        }
        Instruction::PAluI { op, rd, rs1, imm } => {
            if core.pred {
                base_cost = alu_cost(op, costs);
                let a = core.regs.get(rs1);
                match op.eval(a, imm) {
                    Some(v) => core.regs.set(rd, v),
                    None => crash!(CrashKind::DivByZero),
                }
            }
        }
        Instruction::PStore {
            width,
            rs,
            base,
            offset,
        } => {
            if core.pred {
                let addr = (core.regs.get(base) as u32).wrapping_add(offset as u32);
                match mem.store(addr, core.regs.get(rs), width) {
                    Ok(()) => access = Some(DataAccess { addr, write: true }),
                    Err(kind) => crash!(kind),
                }
            }
        }
    }

    core.pc = next_pc;
    // Re-read predicate decision: a control transfer clears it *after* the
    // instruction executes.
    if insn.is_control_transfer() {
        next_pred = false;
    }
    core.pred = next_pred;

    // A runaway fault drags the pc backwards *after* the instruction
    // executed normally: every index at or below the current (valid) pc is
    // itself valid, so the redirect always forms a loop rather than a crash.
    if let Some(max_back) = redirect {
        core.pc = pc.saturating_sub(max_back);
    }

    Step {
        event,
        base_cost,
        access,
        deferred,
    }
}

/// Applies a bit-flip fault to the data segment visible through `mem`. The
/// entropy is reduced to an address inside `[DATA_BASE, mem_size)`;
/// addresses the program cannot itself reach are silently skipped, so a
/// flip is never an engine error.
fn flip_mem_bit<M: MemView + ?Sized>(program: &Program, mem: &mut M, entropy: u64, bit: u8) {
    let span = u64::from(program.mem_size.max(DATA_BASE + 1) - DATA_BASE);
    let addr = DATA_BASE + (entropy % span) as u32;
    if let Ok(v) = mem.load(addr, Width::Byte) {
        let _ = mem.store(addr, v ^ (1 << (bit & 7)), Width::Byte);
    }
}

fn alu_cost(op: px_isa::AluOp, costs: &CostModel) -> u32 {
    use px_isa::AluOp;
    match op {
        AluOp::Mul => costs.mul,
        AluOp::Div | AluOp::Rem => costs.div,
        _ => costs.alu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostModel;
    use crate::memory::Memory;
    use px_isa::{asm::assemble, Width, DATA_BASE};

    fn run_snippet(src: &str, input: &[u8]) -> (CoreState, Memory, IoState, StepEvent) {
        let program = assemble(src).unwrap();
        let mut mem = Memory::new(px_isa::DEFAULT_MEM_SIZE);
        for item in &program.data {
            mem.load_blob(item.addr, &item.bytes);
        }
        let mut core = CoreState::at_entry(program.entry, mem.size());
        let mut io = IoState::new(input.to_vec(), 7);
        let mut watches = WatchTable::new();
        let costs = CostModel::default();
        for _ in 0..100_000 {
            let mut env = StepEnv {
                io: &mut io,
                watches: &mut watches,
                suppress_syscalls: false,
                now_cycles: 0,
                costs: &costs,
                fault: None,
            };
            let step = step(&program, &mut core, &mut mem, &mut env);
            match step.event {
                StepEvent::Exit { .. } | StepEvent::Crash { .. } => {
                    return (core, mem, io, step.event)
                }
                _ => {}
            }
        }
        panic!("snippet did not terminate");
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        let (_, _, io, event) = run_snippet(
            r"
            .code
            main:
                li r1, 0      ; sum
                li r2, 1      ; i
            loop:
                add r1, r1, r2
                addi r2, r2, 1
                ble r2, r3, loop ; r3 == 0, so falls through first time? no: set below
                li r3, 10
                ble r2, r3, loop
                mv r2, r1
                printi
                exit
            ",
            b"",
        );
        assert!(matches!(event, StepEvent::Exit { .. }));
        assert_eq!(io.output_string(), "55");
    }

    #[test]
    fn call_and_ret_follow_ra() {
        let (_, _, io, _) = run_snippet(
            r"
            .code
            main:
                call f
                mv r2, r1
                printi
                exit
            f:
                li r1, 9
                ret
            ",
            b"",
        );
        assert_eq!(io.output_string(), "9");
    }

    #[test]
    fn loads_stores_and_data_segment() {
        let (_, mem, io, _) = run_snippet(
            r"
            .data
            v: .word 5
            .code
            main:
                la r2, v
                lw r1, 0(r2)
                addi r1, r1, 1
                sw r1, 0(r2)
                mv r2, r1
                printi
                exit
            ",
            b"",
        );
        assert_eq!(io.output_string(), "6");
        let mut m = mem;
        assert_eq!(m.load(DATA_BASE, Width::Word).unwrap(), 6);
    }

    #[test]
    fn div_by_zero_crashes() {
        let (_, _, _, event) = run_snippet(
            ".code\nmain:\n  li r1, 4\n  li r2, 0\n  div r3, r1, r2\n  exit\n",
            b"",
        );
        assert!(matches!(
            event,
            StepEvent::Crash {
                kind: CrashKind::DivByZero,
                pc: 2
            }
        ));
    }

    #[test]
    fn null_deref_crashes() {
        let (_, _, _, event) = run_snippet(".code\nmain:\n  lw r1, 0(zero)\n  exit\n", b"");
        assert!(matches!(
            event,
            StepEvent::Crash {
                kind: CrashKind::NullDeref { addr: 0 },
                ..
            }
        ));
    }

    #[test]
    fn predicate_gates_fix_instructions_and_clears_on_control() {
        let program = assemble(
            r"
            .code
            main:
                pli r1, 42
                jmp next
            next:
                pli r2, 99
                exit
            ",
        )
        .unwrap();
        let mut mem = Memory::new(px_isa::DEFAULT_MEM_SIZE);
        let mut core = CoreState::at_entry(0, mem.size());
        core.pred = true; // as if spawned as NT-path
        let mut io = IoState::default();
        let mut watches = WatchTable::new();
        let costs = CostModel::default();
        for _ in 0..4 {
            let mut env = StepEnv {
                io: &mut io,
                watches: &mut watches,
                suppress_syscalls: true,
                now_cycles: 0,
                costs: &costs,
                fault: None,
            };
            let s = step(&program, &mut core, &mut mem, &mut env);
            if s.event.is_terminal() {
                break;
            }
        }
        assert_eq!(core.regs.get(Reg::RV), 42, "fix executed at NT entry");
        assert_eq!(
            core.regs.get(Reg::A0),
            0,
            "fix after control transfer is a NOP"
        );
        assert!(!core.pred);
    }

    #[test]
    fn suppressed_syscall_reports_unsafe_event_without_side_effects() {
        let program = assemble(".code\nmain:\n  li r2, 65\n  putc\n  exit\n").unwrap();
        let mut mem = Memory::new(px_isa::DEFAULT_MEM_SIZE);
        let mut core = CoreState::at_entry(0, mem.size());
        let mut io = IoState::default();
        let mut watches = WatchTable::new();
        let costs = CostModel::default();
        let mut env = StepEnv {
            io: &mut io,
            watches: &mut watches,
            suppress_syscalls: true,
            now_cycles: 0,
            costs: &costs,
            fault: None,
        };
        let s1 = step(&program, &mut core, &mut mem, &mut env);
        assert!(matches!(s1.event, StepEvent::None));
        let mut env = StepEnv {
            io: &mut io,
            watches: &mut watches,
            suppress_syscalls: true,
            now_cycles: 0,
            costs: &costs,
            fault: None,
        };
        let s2 = step(&program, &mut core, &mut mem, &mut env);
        assert!(matches!(
            s2.event,
            StepEvent::UnsafeEvent {
                code: SyscallCode::PutChar
            }
        ));
        assert_eq!(core.pc, 1, "pc still at the system call");
        assert!(io.output().is_empty(), "no side effect leaked");
    }

    #[test]
    fn check_fires_only_on_zero() {
        let (_, _, _, event) =
            run_snippet(".code\nmain:\n  li r1, 1\n  assert r1, #3\n  exit\n", b"");
        assert!(matches!(event, StepEvent::Exit { .. }));

        let program = assemble(".code\nmain:\n  assert r1, #3\n  exit\n").unwrap();
        let mut mem = Memory::new(px_isa::DEFAULT_MEM_SIZE);
        let mut core = CoreState::at_entry(0, mem.size());
        let mut io = IoState::default();
        let mut watches = WatchTable::new();
        let costs = CostModel::default();
        let mut env = StepEnv {
            io: &mut io,
            watches: &mut watches,
            suppress_syscalls: false,
            now_cycles: 0,
            costs: &costs,
            fault: None,
        };
        let s = step(&program, &mut core, &mut mem, &mut env);
        assert!(matches!(
            s.event,
            StepEvent::CheckFailed {
                kind: CheckKind::Assertion,
                site: 3,
                pc: 0
            }
        ));
        assert_eq!(core.pc, 1, "execution continues after a failed check");
    }

    #[test]
    fn watch_hit_reported_on_store() {
        let program = assemble(
            r"
            .code
            main:
                li r4, 0x2000
                li r5, 8
                watch r4, r5, #9
                sw r1, 0(r4)
                exit
            ",
        )
        .unwrap();
        let mut mem = Memory::new(px_isa::DEFAULT_MEM_SIZE);
        let mut core = CoreState::at_entry(0, mem.size());
        let mut io = IoState::default();
        let mut watches = WatchTable::new();
        let costs = CostModel::default();
        let mut hit = None;
        for _ in 0..5 {
            let mut env = StepEnv {
                io: &mut io,
                watches: &mut watches,
                suppress_syscalls: false,
                now_cycles: 0,
                costs: &costs,
                fault: None,
            };
            let s = step(&program, &mut core, &mut mem, &mut env);
            if let StepEvent::WatchHit {
                tag,
                addr,
                is_write,
                ..
            } = s.event
            {
                hit = Some((tag, addr, is_write));
            }
            if s.event.is_terminal() {
                break;
            }
        }
        assert_eq!(hit, Some((9, 0x2000, true)));
    }

    #[test]
    fn branch_event_reports_both_targets() {
        let program = assemble(".code\nmain:\n  beq zero, zero, t\n  nop\nt:  exit\n").unwrap();
        let mut mem = Memory::new(px_isa::DEFAULT_MEM_SIZE);
        let mut core = CoreState::at_entry(0, mem.size());
        let mut io = IoState::default();
        let mut watches = WatchTable::new();
        let costs = CostModel::default();
        let mut env = StepEnv {
            io: &mut io,
            watches: &mut watches,
            suppress_syscalls: false,
            now_cycles: 0,
            costs: &costs,
            fault: None,
        };
        let s = step(&program, &mut core, &mut mem, &mut env);
        assert_eq!(
            s.event,
            StepEvent::Branch {
                pc: 0,
                taken: true,
                taken_target: 2,
                not_taken_target: 1,
                operands: (0, 0),
            }
        );
        assert_eq!(core.pc, 2);
    }
}
