//! Architectural per-core state and checkpoints.

use px_isa::Reg;

/// The architectural register file. Writes to register 0 are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regs([i32; Reg::COUNT]);

impl Default for Regs {
    fn default() -> Regs {
        Regs([0; Reg::COUNT])
    }
}

impl Regs {
    /// Reads a register (register 0 always reads 0).
    #[must_use]
    #[inline]
    pub fn get(&self, r: Reg) -> i32 {
        self.0[r.index()]
    }

    /// Writes a register; writes to register 0 are discarded.
    #[inline]
    pub fn set(&mut self, r: Reg, value: i32) {
        if !r.is_zero() {
            self.0[r.index()] = value;
        }
    }
}

/// One core's architectural state: registers, program counter, and the
/// NT-entry predicate that gates the variable-fixing instructions
/// (paper §4.4(3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreState {
    /// Register file.
    pub regs: Regs,
    /// Program counter (instruction index).
    pub pc: u32,
    /// NT-entry predicate: set when an NT-path is spawned onto this core,
    /// cleared by the first control-transfer instruction.
    pub pred: bool,
}

impl CoreState {
    /// Creates a core ready to run from `entry` with the stack pointer at the
    /// top of a `mem_size`-byte memory.
    #[must_use]
    pub fn at_entry(entry: u32, mem_size: u32) -> CoreState {
        let mut core = CoreState {
            pc: entry,
            ..CoreState::default()
        };
        core.regs.set(Reg::SP, mem_size as i32);
        core.regs.set(Reg::FP, mem_size as i32);
        core
    }
}

/// A checkpoint of one core — "the architectural registers as well as the
/// program counter" (paper §4.2(2)). Restoring it is the processor half of
/// an NT-path rollback; the memory half is the sandbox discard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint(CoreState);

impl Checkpoint {
    /// Captures the core's current state.
    #[must_use]
    pub fn take(core: &CoreState) -> Checkpoint {
        Checkpoint(*core)
    }

    /// Restores the captured state into `core`.
    pub fn restore(&self, core: &mut CoreState) {
        *core = self.0;
    }

    /// The captured state (for spawning an NT-path onto another core: the
    /// CMP option's register copy).
    #[must_use]
    pub fn state(&self) -> CoreState {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_zero_is_hardwired() {
        let mut regs = Regs::default();
        regs.set(Reg::ZERO, 42);
        assert_eq!(regs.get(Reg::ZERO), 0);
        regs.set(Reg::RV, 42);
        assert_eq!(regs.get(Reg::RV), 42);
    }

    #[test]
    fn checkpoint_round_trips() {
        let mut core = CoreState::at_entry(10, 0x10000);
        assert_eq!(core.regs.get(Reg::SP), 0x10000);
        let cp = Checkpoint::take(&core);
        core.regs.set(Reg::RV, 99);
        core.pc = 55;
        core.pred = true;
        cp.restore(&mut core);
        assert_eq!(core.pc, 10);
        assert_eq!(core.regs.get(Reg::RV), 0);
        assert!(!core.pred);
    }
}
