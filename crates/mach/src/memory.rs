//! Functional data memory: a flat byte array with a null guard page, plus the
//! sandbox views PathExpander uses to contain NT-path side effects.

use std::collections::HashMap;

use px_isa::{Width, NULL_GUARD_END};

use crate::fault::SimError;

/// Why an access (or instruction) crashed. Inside an NT-path a crash squashes
/// the path silently ("the exception that caused the crash is not delivered
/// to the OS", paper §4.2); on the taken path it faults the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Load/store to the null guard page (address below `DATA_BASE`).
    NullDeref { addr: u32 },
    /// Load/store beyond the end of data memory.
    OutOfBounds { addr: u32 },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Control transfer to an invalid instruction index.
    BadPc { pc: u32 },
}

impl core::fmt::Display for CrashKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CrashKind::NullDeref { addr } => write!(f, "null dereference at {addr:#x}"),
            CrashKind::OutOfBounds { addr } => write!(f, "out-of-bounds access at {addr:#x}"),
            CrashKind::DivByZero => write!(f, "division by zero"),
            CrashKind::BadPc { pc } => write!(f, "invalid program counter {pc}"),
        }
    }
}

/// A view of data memory the interpreter executes against. The committed
/// memory and the NT-path sandboxes all implement this.
pub trait MemView {
    /// Loads a value; byte loads zero-extend.
    ///
    /// # Errors
    ///
    /// Returns the [`CrashKind`] for accesses to the null guard page or
    /// beyond the end of memory.
    fn load(&mut self, addr: u32, width: Width) -> Result<i32, CrashKind>;

    /// Stores the low `width` bytes of `value`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemView::load`].
    fn store(&mut self, addr: u32, value: i32, width: Width) -> Result<(), CrashKind>;
}

/// The committed (architectural) data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes.
    #[must_use]
    pub fn new(size: u32) -> Memory {
        Memory {
            bytes: vec![0; size as usize],
        }
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Validates an access of `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`CrashKind::NullDeref`] below the guard page boundary and
    /// [`CrashKind::OutOfBounds`] past the end of memory.
    pub fn check(&self, addr: u32, len: u32) -> Result<(), CrashKind> {
        if addr < NULL_GUARD_END {
            return Err(CrashKind::NullDeref { addr });
        }
        if (addr as u64) + u64::from(len) > self.bytes.len() as u64 {
            return Err(CrashKind::OutOfBounds { addr });
        }
        Ok(())
    }

    /// Reads one byte without bounds diagnostics (caller must have checked).
    #[must_use]
    pub fn byte(&self, addr: u32) -> u8 {
        self.bytes[addr as usize]
    }

    /// Writes one byte without bounds diagnostics (caller must have checked).
    pub fn set_byte(&mut self, addr: u32, value: u8) {
        self.bytes[addr as usize] = value;
    }

    /// Copies a blob into memory (program loading), rejecting blobs that do
    /// not fit — the malformed-program path the engines take.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BlobOutOfBounds`] when the blob ends past the end
    /// of memory.
    pub fn try_load_blob(&mut self, addr: u32, blob: &[u8]) -> Result<(), SimError> {
        let start = addr as usize;
        let end = start.checked_add(blob.len());
        match end {
            Some(end) if end <= self.bytes.len() => {
                self.bytes[start..end].copy_from_slice(blob);
                Ok(())
            }
            _ => Err(SimError::BlobOutOfBounds {
                addr,
                len: blob.len() as u32,
            }),
        }
    }

    /// Copies a blob into memory (program loading).
    ///
    /// # Panics
    ///
    /// Panics if the blob does not fit (use [`Memory::try_load_blob`] for
    /// untrusted programs).
    pub fn load_blob(&mut self, addr: u32, blob: &[u8]) {
        self.try_load_blob(addr, blob)
            .expect("blob must fit in memory");
    }

    /// Reads `len` bytes (for inspecting program output buffers in tests).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, addr: u32, len: u32) -> &[u8] {
        &self.bytes[addr as usize..(addr + len) as usize]
    }
}

fn load_le(view: &mut impl FnMut(u32) -> u8, addr: u32, width: Width) -> i32 {
    match width {
        Width::Byte => i32::from(view(addr)),
        Width::Word => {
            let b = [view(addr), view(addr + 1), view(addr + 2), view(addr + 3)];
            i32::from_le_bytes(b)
        }
    }
}

impl MemView for Memory {
    fn load(&mut self, addr: u32, width: Width) -> Result<i32, CrashKind> {
        self.check(addr, width.bytes())?;
        Ok(load_le(&mut |a| self.bytes[a as usize], addr, width))
    }

    fn store(&mut self, addr: u32, value: i32, width: Width) -> Result<(), CrashKind> {
        self.check(addr, width.bytes())?;
        let bytes = value.to_le_bytes();
        for i in 0..width.bytes() {
            self.bytes[(addr + i) as usize] = bytes[i as usize];
        }
        Ok(())
    }
}

/// The per-NT-path sandbox state: the path's own (volatile) writes plus the
/// snapshot of committed bytes that the taken path has overwritten since the
/// path was spawned (CMP option only — the snapshot realizes the
/// tree-structured data dependence of paper Figure 6(c)).
#[derive(Debug, Clone, Default)]
pub struct Sandbox {
    writes: HashMap<u32, u8>,
    snapshot: HashMap<u32, u8>,
}

impl Sandbox {
    /// Creates an empty sandbox.
    #[must_use]
    pub fn new() -> Sandbox {
        Sandbox::default()
    }

    /// Number of distinct bytes written by the NT-path.
    #[must_use]
    pub fn written_bytes(&self) -> usize {
        self.writes.len()
    }

    /// Records that the *taken path* is about to overwrite `addr` which
    /// currently holds `old`. Must be called before the committed write for
    /// every live sandbox (copy-on-write snapshot).
    pub fn preserve(&mut self, addr: u32, old: u8) {
        self.snapshot.entry(addr).or_insert(old);
    }

    /// Discards all NT-path writes (the squash). The snapshot is dropped too.
    pub fn clear(&mut self) {
        self.writes.clear();
        self.snapshot.clear();
    }
}

/// A [`MemView`] that layers a [`Sandbox`] over committed memory: reads
/// resolve sandbox-writes → snapshot → committed; writes stay in the sandbox.
#[derive(Debug)]
pub struct SandboxView<'a> {
    committed: &'a Memory,
    sandbox: &'a mut Sandbox,
}

impl<'a> SandboxView<'a> {
    /// Creates the layered view.
    pub fn new(committed: &'a Memory, sandbox: &'a mut Sandbox) -> SandboxView<'a> {
        SandboxView { committed, sandbox }
    }

    fn read_byte(&self, addr: u32) -> u8 {
        if let Some(&b) = self.sandbox.writes.get(&addr) {
            return b;
        }
        if let Some(&b) = self.sandbox.snapshot.get(&addr) {
            return b;
        }
        self.committed.byte(addr)
    }
}

impl MemView for SandboxView<'_> {
    fn load(&mut self, addr: u32, width: Width) -> Result<i32, CrashKind> {
        self.committed.check(addr, width.bytes())?;
        Ok(load_le(&mut |a| self.read_byte(a), addr, width))
    }

    fn store(&mut self, addr: u32, value: i32, width: Width) -> Result<(), CrashKind> {
        self.committed.check(addr, width.bytes())?;
        let bytes = value.to_le_bytes();
        for i in 0..width.bytes() {
            self.sandbox.writes.insert(addr + i, bytes[i as usize]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::DATA_BASE;

    #[test]
    fn little_endian_word_round_trip() {
        let mut m = Memory::new(DATA_BASE + 64);
        m.store(DATA_BASE, -559038737, Width::Word).unwrap();
        assert_eq!(m.load(DATA_BASE, Width::Word).unwrap(), -559038737);
        assert_eq!(m.load(DATA_BASE, Width::Byte).unwrap(), 0xEF);
    }

    #[test]
    fn guard_page_and_bounds_trap() {
        let mut m = Memory::new(DATA_BASE + 8);
        assert_eq!(
            m.load(0, Width::Word).unwrap_err(),
            CrashKind::NullDeref { addr: 0 }
        );
        assert_eq!(
            m.load(DATA_BASE - 1, Width::Byte).unwrap_err(),
            CrashKind::NullDeref {
                addr: DATA_BASE - 1
            }
        );
        assert_eq!(
            m.store(DATA_BASE + 8, 0, Width::Byte).unwrap_err(),
            CrashKind::OutOfBounds {
                addr: DATA_BASE + 8
            }
        );
        // Word access straddling the end also traps.
        assert_eq!(
            m.load(DATA_BASE + 6, Width::Word).unwrap_err(),
            CrashKind::OutOfBounds {
                addr: DATA_BASE + 6
            }
        );
    }

    #[test]
    fn sandbox_reads_own_writes_and_rolls_back() {
        let mut m = Memory::new(DATA_BASE + 64);
        m.store(DATA_BASE, 7, Width::Word).unwrap();
        let mut sb = Sandbox::new();
        {
            let mut v = SandboxView::new(&m, &mut sb);
            assert_eq!(v.load(DATA_BASE, Width::Word).unwrap(), 7);
            v.store(DATA_BASE, 99, Width::Word).unwrap();
            assert_eq!(
                v.load(DATA_BASE, Width::Word).unwrap(),
                99,
                "reads own writes"
            );
        }
        assert_eq!(
            m.load(DATA_BASE, Width::Word).unwrap(),
            7,
            "committed untouched"
        );
        assert_eq!(sb.written_bytes(), 4);
        sb.clear();
        assert_eq!(sb.written_bytes(), 0);
    }

    #[test]
    fn snapshot_hides_taken_path_writes_made_after_spawn() {
        let mut m = Memory::new(DATA_BASE + 64);
        m.store(DATA_BASE + 4, 11, Width::Word).unwrap();
        let mut sb = Sandbox::new();
        // Taken path overwrites addr after the NT-path spawned: preserve old
        // bytes first, then write committed memory.
        for (i, old) in (0..4).map(|i| (i, m.byte(DATA_BASE + 4 + i))) {
            sb.preserve(DATA_BASE + 4 + i, old);
        }
        m.store(DATA_BASE + 4, 22, Width::Word).unwrap();
        let mut v = SandboxView::new(&m, &mut sb);
        assert_eq!(
            v.load(DATA_BASE + 4, Width::Word).unwrap(),
            11,
            "NT-path sees the value from its spawn time"
        );
        // But the NT-path's own store wins over the snapshot.
        v.store(DATA_BASE + 4, 33, Width::Word).unwrap();
        assert_eq!(v.load(DATA_BASE + 4, Width::Word).unwrap(), 33);
    }

    #[test]
    fn try_load_blob_rejects_overflow() {
        let mut m = Memory::new(DATA_BASE + 4);
        assert!(m.try_load_blob(DATA_BASE, &[1, 2, 3, 4]).is_ok());
        assert_eq!(
            m.try_load_blob(DATA_BASE + 2, &[0; 4]).unwrap_err(),
            SimError::BlobOutOfBounds {
                addr: DATA_BASE + 2,
                len: 4
            }
        );
        assert!(m.try_load_blob(u32::MAX, &[0; 8]).is_err());
        assert_eq!(m.load(DATA_BASE, Width::Word).unwrap(), 0x04030201);
    }

    #[test]
    fn preserve_keeps_earliest_value() {
        let mut sb = Sandbox::new();
        sb.preserve(10, 1);
        sb.preserve(10, 2);
        let m = Memory::new(DATA_BASE);
        let mut v = SandboxView::new(&m, &mut sb);
        // addr 10 is in the guard page; read via internals instead:
        let _ = &mut v;
        assert_eq!(sb.snapshot.get(&10), Some(&1));
    }
}
