//! Functional data memory: a flat byte array with a null guard page, plus the
//! sandbox views PathExpander uses to contain NT-path side effects.
//!
//! The sandbox is the simulation's hottest data structure: every NT-path
//! load and store resolves through it, and every squash empties it. It is
//! implemented as lazily-allocated fixed-size shadow pages carrying
//! generation stamps (see [`Sandbox`]): a squash is an O(1) generation
//! bump, and a byte lookup is one page-index load plus two bit tests —
//! no hashing anywhere on the hot path.

use px_isa::{Width, NULL_GUARD_END};

use crate::fault::SimError;

/// Why an access (or instruction) crashed. Inside an NT-path a crash squashes
/// the path silently ("the exception that caused the crash is not delivered
/// to the OS", paper §4.2); on the taken path it faults the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Load/store to the null guard page (address below `DATA_BASE`).
    NullDeref { addr: u32 },
    /// Load/store beyond the end of data memory.
    OutOfBounds { addr: u32 },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Control transfer to an invalid instruction index.
    BadPc { pc: u32 },
}

impl core::fmt::Display for CrashKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CrashKind::NullDeref { addr } => write!(f, "null dereference at {addr:#x}"),
            CrashKind::OutOfBounds { addr } => write!(f, "out-of-bounds access at {addr:#x}"),
            CrashKind::DivByZero => write!(f, "division by zero"),
            CrashKind::BadPc { pc } => write!(f, "invalid program counter {pc}"),
        }
    }
}

/// A view of data memory the interpreter executes against. The committed
/// memory and the NT-path sandboxes all implement this.
pub trait MemView {
    /// Loads a value; byte loads zero-extend.
    ///
    /// # Errors
    ///
    /// Returns the [`CrashKind`] for accesses to the null guard page or
    /// beyond the end of memory.
    fn load(&mut self, addr: u32, width: Width) -> Result<i32, CrashKind>;

    /// Stores the low `width` bytes of `value`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemView::load`].
    fn store(&mut self, addr: u32, value: i32, width: Width) -> Result<(), CrashKind>;
}

/// The committed (architectural) data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes.
    #[must_use]
    pub fn new(size: u32) -> Memory {
        Memory {
            bytes: vec![0; size as usize],
        }
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Validates an access of `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`CrashKind::NullDeref`] below the guard page boundary and
    /// [`CrashKind::OutOfBounds`] past the end of memory.
    pub fn check(&self, addr: u32, len: u32) -> Result<(), CrashKind> {
        if addr < NULL_GUARD_END {
            return Err(CrashKind::NullDeref { addr });
        }
        if (addr as u64) + u64::from(len) > self.bytes.len() as u64 {
            return Err(CrashKind::OutOfBounds { addr });
        }
        Ok(())
    }

    /// Reads one byte without bounds diagnostics (caller must have checked).
    #[must_use]
    pub fn byte(&self, addr: u32) -> u8 {
        self.bytes[addr as usize]
    }

    /// Writes one byte without bounds diagnostics (caller must have checked).
    pub fn set_byte(&mut self, addr: u32, value: u8) {
        self.bytes[addr as usize] = value;
    }

    /// Copies a blob into memory (program loading), rejecting blobs that do
    /// not fit — the malformed-program path the engines take.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BlobOutOfBounds`] when the blob ends past the end
    /// of memory.
    pub fn try_load_blob(&mut self, addr: u32, blob: &[u8]) -> Result<(), SimError> {
        let start = addr as usize;
        let end = start.checked_add(blob.len());
        match end {
            Some(end) if end <= self.bytes.len() => {
                self.bytes[start..end].copy_from_slice(blob);
                Ok(())
            }
            _ => Err(SimError::BlobOutOfBounds {
                addr,
                len: blob.len() as u32,
            }),
        }
    }

    /// Copies a blob into memory (program loading).
    ///
    /// # Panics
    ///
    /// Panics if the blob does not fit (use [`Memory::try_load_blob`] for
    /// untrusted programs).
    pub fn load_blob(&mut self, addr: u32, blob: &[u8]) {
        self.try_load_blob(addr, blob)
            .expect("blob must fit in memory");
    }

    /// Reads `len` bytes (for inspecting program output buffers in tests).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, addr: u32, len: u32) -> &[u8] {
        &self.bytes[addr as usize..(addr + len) as usize]
    }
}

impl MemView for Memory {
    #[inline]
    fn load(&mut self, addr: u32, width: Width) -> Result<i32, CrashKind> {
        self.check(addr, width.bytes())?;
        let i = addr as usize;
        Ok(match width {
            Width::Byte => i32::from(self.bytes[i]),
            // The backing store is a flat byte array, so even misaligned
            // words are one contiguous 4-byte copy.
            Width::Word => {
                i32::from_le_bytes(self.bytes[i..i + 4].try_into().expect("checked above"))
            }
        })
    }

    #[inline]
    fn store(&mut self, addr: u32, value: i32, width: Width) -> Result<(), CrashKind> {
        self.check(addr, width.bytes())?;
        let i = addr as usize;
        match width {
            Width::Byte => self.bytes[i] = value as u8,
            Width::Word => self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }
}

/// Shadow-page geometry: 4 KiB pages, presence tracked by one bit per byte.
const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;
const MASK_WORDS: usize = PAGE_SIZE / 64;

/// One lazily-allocated shadow page of a [`Sandbox`].
///
/// `stamp` names the sandbox generation the page's masks belong to: a page
/// whose stamp is stale (≠ the sandbox's current generation) is logically
/// empty and its masks are lazily zeroed on the next write — so a squash
/// never touches page memory at all.
#[derive(Debug, Clone)]
struct ShadowPage {
    stamp: u64,
    /// Bit `i` set ⇔ byte `i` was written by the NT-path this generation.
    write_mask: [u64; MASK_WORDS],
    /// Bit `i` set ⇔ byte `i` holds a preserved spawn-time snapshot value.
    snap_mask: [u64; MASK_WORDS],
    /// NT-path write values.
    data: [u8; PAGE_SIZE],
    /// Preserved committed bytes (CMP copy-on-write snapshot).
    snap: [u8; PAGE_SIZE],
}

impl ShadowPage {
    /// A fresh page with a stale stamp (generation 0 is never current).
    fn new_boxed() -> Box<ShadowPage> {
        Box::new(ShadowPage {
            stamp: 0,
            write_mask: [0; MASK_WORDS],
            snap_mask: [0; MASK_WORDS],
            data: [0; PAGE_SIZE],
            snap: [0; PAGE_SIZE],
        })
    }

    #[inline]
    fn bit(off: usize) -> (usize, u64) {
        (off >> 6, 1u64 << (off & 63))
    }
}

/// The per-NT-path sandbox state: the path's own (volatile) writes plus the
/// snapshot of committed bytes that the taken path has overwritten since the
/// path was spawned (CMP option only — the snapshot realizes the
/// tree-structured data dependence of paper Figure 6(c)).
///
/// Writes and snapshot entries live in generation-stamped shadow pages:
/// [`Sandbox::clear`] (the squash) is an O(1) generation bump plus counter
/// reset, and pages are revived lazily the next time a path touches them.
#[derive(Debug, Clone)]
pub struct Sandbox {
    pages: Vec<Option<Box<ShadowPage>>>,
    generation: u64,
    written: usize,
}

impl Default for Sandbox {
    fn default() -> Sandbox {
        Sandbox::new()
    }
}

impl Sandbox {
    /// Creates an empty sandbox.
    #[must_use]
    pub fn new() -> Sandbox {
        Sandbox {
            pages: Vec::new(),
            // Pages allocate with stamp 0, so the live generation starts at 1.
            generation: 1,
            written: 0,
        }
    }

    /// Number of distinct bytes written by the NT-path.
    #[must_use]
    pub fn written_bytes(&self) -> usize {
        self.written
    }

    /// Fetches the page covering `addr` for writing, allocating it on first
    /// touch and lazily resetting its masks when its stamp is stale. A free
    /// function over the fields so callers can keep updating the sandbox's
    /// counters while the page is borrowed.
    #[inline]
    fn page_mut(
        pages: &mut Vec<Option<Box<ShadowPage>>>,
        generation: u64,
        addr: u32,
    ) -> (&mut ShadowPage, usize) {
        let idx = (addr >> PAGE_SHIFT) as usize;
        if idx >= pages.len() {
            pages.resize_with(idx + 1, || None);
        }
        let page = pages[idx].get_or_insert_with(ShadowPage::new_boxed);
        if page.stamp != generation {
            page.write_mask = [0; MASK_WORDS];
            page.snap_mask = [0; MASK_WORDS];
            page.stamp = generation;
        }
        (page, (addr & PAGE_MASK) as usize)
    }

    /// The page covering `addr` for reading, if it exists and is current.
    #[inline]
    fn page(&self, addr: u32) -> Option<&ShadowPage> {
        let page = self.pages.get((addr >> PAGE_SHIFT) as usize)?.as_deref()?;
        (page.stamp == self.generation).then_some(page)
    }

    /// Records an NT-path write of one byte.
    #[inline]
    pub(crate) fn write_byte(&mut self, addr: u32, value: u8) {
        let (page, off) = Sandbox::page_mut(&mut self.pages, self.generation, addr);
        let (w, bit) = ShadowPage::bit(off);
        if page.write_mask[w] & bit == 0 {
            page.write_mask[w] |= bit;
            self.written += 1;
        }
        page.data[off] = value;
    }

    /// Records an NT-path write of `bytes.len()` consecutive bytes.
    #[inline]
    fn write_span(&mut self, addr: u32, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE {
            let (page, off) = Sandbox::page_mut(&mut self.pages, self.generation, addr);
            let (w, _) = ShadowPage::bit(off);
            let sh = off & 63;
            if sh + bytes.len() <= 64 {
                // All presence bits land in one mask word: set them in one
                // OR and count the fresh ones with a popcount.
                let bits = ((1u64 << bytes.len()) - 1) << sh;
                self.written += (!page.write_mask[w] & bits).count_ones() as usize;
                page.write_mask[w] |= bits;
                page.data[off..off + bytes.len()].copy_from_slice(bytes);
            } else {
                let mut fresh = 0;
                for (i, &b) in bytes.iter().enumerate() {
                    let (w, bit) = ShadowPage::bit(off + i);
                    if page.write_mask[w] & bit == 0 {
                        page.write_mask[w] |= bit;
                        fresh += 1;
                    }
                    page.data[off + i] = b;
                }
                self.written += fresh;
            }
        } else {
            // The span straddles a page boundary (misaligned word at a page
            // edge): fall back to per-byte writes.
            for (i, &b) in bytes.iter().enumerate() {
                self.write_byte(addr + i as u32, b);
            }
        }
    }

    /// The NT-path's own value for `addr`, if it wrote one this generation.
    #[must_use]
    pub fn written_byte(&self, addr: u32) -> Option<u8> {
        let page = self.page(addr)?;
        let off = (addr & PAGE_MASK) as usize;
        let (w, bit) = ShadowPage::bit(off);
        (page.write_mask[w] & bit != 0).then(|| page.data[off])
    }

    /// The preserved spawn-time value for `addr`, if the taken path has
    /// overwritten it since this sandbox's path spawned.
    #[must_use]
    pub fn snapshot_byte(&self, addr: u32) -> Option<u8> {
        let page = self.page(addr)?;
        let off = (addr & PAGE_MASK) as usize;
        let (w, bit) = ShadowPage::bit(off);
        (page.snap_mask[w] & bit != 0).then(|| page.snap[off])
    }

    /// Records that the *taken path* is about to overwrite `addr` which
    /// currently holds `old`. Must be called before the committed write for
    /// every live sandbox (copy-on-write snapshot). Only the earliest value
    /// per address sticks.
    pub fn preserve(&mut self, addr: u32, old: u8) {
        let (page, off) = Sandbox::page_mut(&mut self.pages, self.generation, addr);
        let (w, bit) = ShadowPage::bit(off);
        if page.snap_mask[w] & bit == 0 {
            page.snap_mask[w] |= bit;
            page.snap[off] = old;
        }
    }

    /// Discards all NT-path writes (the squash). The snapshot is dropped
    /// too. O(1): pages go stale by generation bump and are lazily revived.
    pub fn clear(&mut self) {
        self.generation += 1;
        self.written = 0;
    }
}

/// A [`MemView`] that layers a [`Sandbox`] over committed memory: reads
/// resolve sandbox-writes → snapshot → committed; writes stay in the sandbox.
#[derive(Debug)]
pub struct SandboxView<'a> {
    committed: &'a Memory,
    sandbox: &'a mut Sandbox,
}

impl<'a> SandboxView<'a> {
    /// Creates the layered view.
    pub fn new(committed: &'a Memory, sandbox: &'a mut Sandbox) -> SandboxView<'a> {
        SandboxView { committed, sandbox }
    }

    #[inline]
    fn read_byte(&self, addr: u32) -> u8 {
        let Some(page) = self.sandbox.page(addr) else {
            return self.committed.byte(addr);
        };
        let off = (addr & PAGE_MASK) as usize;
        let (w, bit) = ShadowPage::bit(off);
        if page.write_mask[w] & bit != 0 {
            page.data[off]
        } else if page.snap_mask[w] & bit != 0 {
            page.snap[off]
        } else {
            self.committed.byte(addr)
        }
    }
}

impl MemView for SandboxView<'_> {
    #[inline]
    fn load(&mut self, addr: u32, width: Width) -> Result<i32, CrashKind> {
        self.committed.check(addr, width.bytes())?;
        Ok(match width {
            Width::Byte => i32::from(self.read_byte(addr)),
            Width::Word => {
                let off = (addr & PAGE_MASK) as usize;
                // Fast path: the word sits in one shadow page (or none).
                // A span whose presence bits are all clear reads straight
                // from committed memory in one copy.
                if off + 4 <= PAGE_SIZE {
                    match self.sandbox.page(addr) {
                        None => {
                            let i = addr as usize;
                            return Ok(i32::from_le_bytes(
                                self.committed.bytes[i..i + 4]
                                    .try_into()
                                    .expect("checked above"),
                            ));
                        }
                        Some(page) if (off & 63) <= 60 => {
                            let (w, _) = ShadowPage::bit(off);
                            let written = page.write_mask[w] >> (off & 63) & 0xF;
                            if written == 0xF {
                                // Fully written by the NT-path (the common
                                // load-after-store shape).
                                return Ok(i32::from_le_bytes(
                                    page.data[off..off + 4]
                                        .try_into()
                                        .expect("single-page span"),
                                ));
                            }
                            let snapped = page.snap_mask[w] >> (off & 63) & 0xF;
                            if written | snapped == 0 {
                                let i = addr as usize;
                                return Ok(i32::from_le_bytes(
                                    self.committed.bytes[i..i + 4]
                                        .try_into()
                                        .expect("checked above"),
                                ));
                            }
                        }
                        Some(_) => {}
                    }
                }
                let b = [
                    self.read_byte(addr),
                    self.read_byte(addr + 1),
                    self.read_byte(addr + 2),
                    self.read_byte(addr + 3),
                ];
                i32::from_le_bytes(b)
            }
        })
    }

    #[inline]
    fn store(&mut self, addr: u32, value: i32, width: Width) -> Result<(), CrashKind> {
        self.committed.check(addr, width.bytes())?;
        match width {
            Width::Byte => self.sandbox.write_byte(addr, value as u8),
            Width::Word => self.sandbox.write_span(addr, &value.to_le_bytes()),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::DATA_BASE;

    #[test]
    fn little_endian_word_round_trip() {
        let mut m = Memory::new(DATA_BASE + 64);
        m.store(DATA_BASE, -559038737, Width::Word).unwrap();
        assert_eq!(m.load(DATA_BASE, Width::Word).unwrap(), -559038737);
        assert_eq!(m.load(DATA_BASE, Width::Byte).unwrap(), 0xEF);
    }

    #[test]
    fn guard_page_and_bounds_trap() {
        let mut m = Memory::new(DATA_BASE + 8);
        assert_eq!(
            m.load(0, Width::Word).unwrap_err(),
            CrashKind::NullDeref { addr: 0 }
        );
        assert_eq!(
            m.load(DATA_BASE - 1, Width::Byte).unwrap_err(),
            CrashKind::NullDeref {
                addr: DATA_BASE - 1
            }
        );
        assert_eq!(
            m.store(DATA_BASE + 8, 0, Width::Byte).unwrap_err(),
            CrashKind::OutOfBounds {
                addr: DATA_BASE + 8
            }
        );
        // Word access straddling the end also traps.
        assert_eq!(
            m.load(DATA_BASE + 6, Width::Word).unwrap_err(),
            CrashKind::OutOfBounds {
                addr: DATA_BASE + 6
            }
        );
    }

    #[test]
    fn sandbox_reads_own_writes_and_rolls_back() {
        let mut m = Memory::new(DATA_BASE + 64);
        m.store(DATA_BASE, 7, Width::Word).unwrap();
        let mut sb = Sandbox::new();
        {
            let mut v = SandboxView::new(&m, &mut sb);
            assert_eq!(v.load(DATA_BASE, Width::Word).unwrap(), 7);
            v.store(DATA_BASE, 99, Width::Word).unwrap();
            assert_eq!(
                v.load(DATA_BASE, Width::Word).unwrap(),
                99,
                "reads own writes"
            );
        }
        assert_eq!(
            m.load(DATA_BASE, Width::Word).unwrap(),
            7,
            "committed untouched"
        );
        assert_eq!(sb.written_bytes(), 4);
        sb.clear();
        assert_eq!(sb.written_bytes(), 0);
    }

    #[test]
    fn snapshot_hides_taken_path_writes_made_after_spawn() {
        let mut m = Memory::new(DATA_BASE + 64);
        m.store(DATA_BASE + 4, 11, Width::Word).unwrap();
        let mut sb = Sandbox::new();
        // Taken path overwrites addr after the NT-path spawned: preserve old
        // bytes first, then write committed memory.
        for (i, old) in (0..4).map(|i| (i, m.byte(DATA_BASE + 4 + i))) {
            sb.preserve(DATA_BASE + 4 + i, old);
        }
        m.store(DATA_BASE + 4, 22, Width::Word).unwrap();
        let mut v = SandboxView::new(&m, &mut sb);
        assert_eq!(
            v.load(DATA_BASE + 4, Width::Word).unwrap(),
            11,
            "NT-path sees the value from its spawn time"
        );
        // But the NT-path's own store wins over the snapshot.
        v.store(DATA_BASE + 4, 33, Width::Word).unwrap();
        assert_eq!(v.load(DATA_BASE + 4, Width::Word).unwrap(), 33);
    }

    #[test]
    fn try_load_blob_rejects_overflow() {
        let mut m = Memory::new(DATA_BASE + 4);
        assert!(m.try_load_blob(DATA_BASE, &[1, 2, 3, 4]).is_ok());
        assert_eq!(
            m.try_load_blob(DATA_BASE + 2, &[0; 4]).unwrap_err(),
            SimError::BlobOutOfBounds {
                addr: DATA_BASE + 2,
                len: 4
            }
        );
        assert!(m.try_load_blob(u32::MAX, &[0; 8]).is_err());
        assert_eq!(m.load(DATA_BASE, Width::Word).unwrap(), 0x04030201);
    }

    #[test]
    fn preserve_keeps_earliest_value() {
        let mut sb = Sandbox::new();
        sb.preserve(10, 1);
        sb.preserve(10, 2);
        assert_eq!(sb.snapshot_byte(10), Some(1));
        sb.clear();
        assert_eq!(sb.snapshot_byte(10), None, "squash drops the snapshot");
    }

    #[test]
    fn generation_squash_revives_pages_lazily() {
        let mut m = Memory::new(DATA_BASE + 64);
        let mut sb = Sandbox::new();
        {
            let mut v = SandboxView::new(&m, &mut sb);
            v.store(DATA_BASE, 0x0A0B_0C0D, Width::Word).unwrap();
        }
        assert_eq!(sb.written_bytes(), 4);
        sb.clear();
        assert_eq!(sb.written_bytes(), 0);
        // The stale page must contribute nothing after the squash...
        {
            let mut v = SandboxView::new(&m, &mut sb);
            assert_eq!(v.load(DATA_BASE, Width::Word).unwrap(), 0);
            // ...and writing to it again revives only the new bytes.
            v.store(DATA_BASE + 1, 0x55, Width::Byte).unwrap();
            assert_eq!(v.load(DATA_BASE, Width::Word).unwrap(), 0x5500);
        }
        assert_eq!(sb.written_bytes(), 1);
        assert_eq!(sb.written_byte(DATA_BASE), None, "old write stayed dead");
        m.store(DATA_BASE, 0, Width::Word).unwrap();
    }

    #[test]
    fn word_access_straddling_a_page_boundary_is_consistent() {
        let edge = DATA_BASE + (PAGE_SIZE as u32) - 2; // crosses 0x1000+PAGE
        let m = Memory::new(DATA_BASE + 2 * PAGE_SIZE as u32);
        let mut sb = Sandbox::new();
        let mut v = SandboxView::new(&m, &mut sb);
        v.store(edge, 0x1122_3344, Width::Word).unwrap();
        assert_eq!(v.load(edge, Width::Word).unwrap(), 0x1122_3344);
        assert_eq!(sb.written_bytes(), 4);
    }
}
