//! iWatcher-style hardware watch ranges.
//!
//! Programs (via the `px-lang` iWatcher pass) register address ranges to
//! monitor; the machine reports any load/store that touches one. The table
//! keeps an undo log so that watch registrations performed inside an NT-path
//! can be rolled back at squash time, like every other side effect.

/// A monitored address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchRange {
    /// First watched byte.
    pub lo: u32,
    /// One past the last watched byte.
    pub hi: u32,
    /// Program-chosen tag, reported on hits (the detector maps it back to an
    /// object / bug site).
    pub tag: u32,
}

#[derive(Debug, Clone)]
enum WatchOp {
    Added(WatchRange),
    Removed(Vec<WatchRange>),
}

/// The watch-range table.
#[derive(Debug, Clone, Default)]
pub struct WatchTable {
    ranges: Vec<WatchRange>,
    log: Vec<WatchOp>,
    logging: bool,
}

impl WatchTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> WatchTable {
        WatchTable::default()
    }

    /// Number of active ranges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no ranges are active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Starts logging operations so they can be undone with
    /// [`WatchTable::rollback`] (entering an NT-path).
    pub fn begin_log(&mut self) {
        debug_assert!(self.log.is_empty(), "nested watch logs are not supported");
        self.logging = true;
    }

    /// Undoes every operation since [`WatchTable::begin_log`] and stops
    /// logging (NT-path squash).
    pub fn rollback(&mut self) {
        while let Some(op) = self.log.pop() {
            match op {
                WatchOp::Added(r) => {
                    if let Some(pos) = self.ranges.iter().rposition(|x| *x == r) {
                        self.ranges.remove(pos);
                    }
                }
                WatchOp::Removed(mut rs) => self.ranges.append(&mut rs),
            }
        }
        self.logging = false;
    }

    /// Discards the log, keeping all changes (leaving an NT-path is never a
    /// commit in PathExpander, but the detectors use this for taken-path
    /// scopes).
    pub fn commit_log(&mut self) {
        self.log.clear();
        self.logging = false;
    }

    /// Registers a watch on `[lo, lo+len)` with the given tag.
    pub fn set(&mut self, lo: u32, len: u32, tag: u32) {
        if len == 0 {
            return;
        }
        let range = WatchRange {
            lo,
            hi: lo.saturating_add(len),
            tag,
        };
        self.ranges.push(range);
        if self.logging {
            self.log.push(WatchOp::Added(range));
        }
    }

    /// Removes all ranges with `tag`.
    pub fn clear(&mut self, tag: u32) {
        let mut removed = Vec::new();
        self.ranges.retain(|r| {
            if r.tag == tag {
                removed.push(*r);
                false
            } else {
                true
            }
        });
        if self.logging && !removed.is_empty() {
            self.log.push(WatchOp::Removed(removed));
        }
    }

    /// Returns the tag of a range overlapping `[addr, addr+len)`, if any.
    /// When several ranges overlap the access, the smallest tag is reported,
    /// so the answer is independent of registration order (and therefore
    /// stable across NT-path rollbacks, which restore the set of ranges but
    /// not their order).
    #[must_use]
    #[inline]
    pub fn hit(&self, addr: u32, len: u32) -> Option<u32> {
        let end = addr.saturating_add(len);
        self.ranges
            .iter()
            .filter(|r| addr < r.hi && r.lo < end)
            .map(|r| r.tag)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_detects_overlap_only() {
        let mut w = WatchTable::new();
        w.set(100, 10, 7);
        assert_eq!(w.hit(99, 1), None);
        assert_eq!(w.hit(99, 2), Some(7), "straddles the start");
        assert_eq!(w.hit(105, 4), Some(7));
        assert_eq!(w.hit(109, 1), Some(7), "last byte");
        assert_eq!(w.hit(110, 4), None, "one past the end");
    }

    #[test]
    fn zero_length_watch_ignored() {
        let mut w = WatchTable::new();
        w.set(100, 0, 7);
        assert!(w.is_empty());
    }

    #[test]
    fn clear_removes_all_with_tag() {
        let mut w = WatchTable::new();
        w.set(0x100, 4, 1);
        w.set(0x200, 4, 1);
        w.set(0x300, 4, 2);
        w.clear(1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.hit(0x100, 4), None);
        assert_eq!(w.hit(0x300, 1), Some(2));
    }

    #[test]
    fn rollback_undoes_nt_path_changes() {
        let mut w = WatchTable::new();
        w.set(0x100, 4, 1);
        w.begin_log();
        w.set(0x200, 4, 2); // added inside NT-path
        w.clear(1); // removed inside NT-path
        assert_eq!(w.hit(0x100, 1), None);
        assert_eq!(w.hit(0x200, 1), Some(2));
        w.rollback();
        assert_eq!(w.hit(0x100, 1), Some(1), "removed range restored");
        assert_eq!(w.hit(0x200, 1), None, "added range dropped");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn commit_keeps_changes() {
        let mut w = WatchTable::new();
        w.begin_log();
        w.set(0x100, 4, 1);
        w.commit_log();
        w.rollback(); // no-op: log is empty
        assert_eq!(w.hit(0x100, 1), Some(1));
    }
}
