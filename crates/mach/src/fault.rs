//! Fault injection and typed engine errors.
//!
//! PathExpander's central claim is *containment*: an NT-path may crash, run
//! away, or exhaust its sandbox, yet committed architectural state must be
//! identical to a run that never spawned it (paper §§3–4). This module
//! provides the machinery to drive the engines into those corners on
//! purpose and at scale:
//!
//! * [`FaultHook`] — a step-granular injection point threaded through
//!   [`crate::exec::step`]. Engines pass `None` for zero-cost production
//!   runs and a hook during fault campaigns.
//! * [`FaultPlan`] — a seeded, replayable hook: given the same seed, mix
//!   and rate it injects the identical fault sequence, so any containment
//!   violation found by a campaign replays deterministically.
//! * [`SimError`] — the typed error that replaces engine panics. Invalid
//!   configurations and malformed programs surface as
//!   `RunExit::EngineFault` instead of aborting a sweep.
//!
//! Faults come in two delivery flavours. *Core-level* faults (forced
//! crashes, data-memory bit flips, runaway redirects, I/O errors) are
//! applied inside `step` itself, against whatever [`crate::memory::MemView`]
//! the step executes on — so an NT-path's bit flips land in its sandbox and
//! are squashed with it. *Cache-level* faults (L1 vtag flips, volatile-way
//! exhaustion, monitor pressure) cannot be applied by `step`, which never
//! touches the timing caches; they are returned to the engine as the step's
//! `deferred` action, and the engine applies them to its
//! [`crate::cache::Hierarchy`] / monitor area.

use px_util::{Rng, Xoshiro256};

use crate::memory::CrashKind;

/// Hard ceiling on simulated data-memory size (256 MiB). Programs (or
/// garbage bytes parsed as programs) demanding more are rejected with
/// [`SimError::ProgramTooLarge`] instead of aborting the host on a huge
/// allocation.
pub const MAX_MEM_BYTES: u32 = 1 << 28;

/// A typed simulator error: a condition that previously panicked.
///
/// These are *engine* faults — bad configuration, malformed programs,
/// broken internal invariants — as opposed to architectural crashes
/// ([`CrashKind`]), which are simulated program behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimError {
    /// A machine configuration with zero cores.
    NoCores,
    /// The CMP option needs at least one primary and one NT core.
    NeedsTwoCores,
    /// Inconsistent cache geometry (the message names the violated rule).
    BadCacheGeometry(&'static str),
    /// Inconsistent BTB geometry.
    BadBtbGeometry(&'static str),
    /// The program demands more than [`MAX_MEM_BYTES`] of data memory.
    ProgramTooLarge { mem_size: u32 },
    /// A data item does not fit in the program's data memory.
    BlobOutOfBounds { addr: u32, len: u32 },
    /// Two coverage trackers built for different code sizes were merged.
    CoverageSizeMismatch { left: usize, right: usize },
    /// An internal invariant did not hold (the message names it).
    Invariant(&'static str),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::NoCores => write!(f, "machine configuration has zero cores"),
            SimError::NeedsTwoCores => write!(f, "CMP option needs at least 2 cores"),
            SimError::BadCacheGeometry(m) => write!(f, "bad cache geometry: {m}"),
            SimError::BadBtbGeometry(m) => write!(f, "bad BTB geometry: {m}"),
            SimError::ProgramTooLarge { mem_size } => {
                write!(f, "program demands {mem_size} bytes of data memory")
            }
            SimError::BlobOutOfBounds { addr, len } => {
                write!(f, "data item of {len} bytes at {addr:#x} does not fit")
            }
            SimError::CoverageSizeMismatch { left, right } => {
                write!(f, "coverage size mismatch: {left} vs {right} instructions")
            }
            SimError::Invariant(m) => write!(f, "engine invariant violated: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The categories of injectable faults, in the order used by
/// [`FaultMix::weights`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip one bit of data memory (lands in the sandbox on NT-paths).
    BitFlip,
    /// Force an architectural crash of a chosen [`CrashKind`].
    Crash,
    /// Redirect the pc backwards, forcing a runaway loop that must hit
    /// the `MaxNTPathLength` bound (or the watchdog).
    Runaway,
    /// Flip the vtag of a random valid L1 line.
    VtagFlip,
    /// Mark an entire L1 set volatile, exhausting the sandbox's ways.
    VolatileExhaust,
    /// Push synthetic records into the monitor memory area.
    MonitorPressure,
    /// Fail the program's input stream (reads return end-of-input).
    IoError,
}

/// All fault kinds, indexable by [`FaultKind::index`].
pub const FAULT_KINDS: [FaultKind; 7] = [
    FaultKind::BitFlip,
    FaultKind::Crash,
    FaultKind::Runaway,
    FaultKind::VtagFlip,
    FaultKind::VolatileExhaust,
    FaultKind::MonitorPressure,
    FaultKind::IoError,
];

impl FaultKind {
    /// Position in [`FAULT_KINDS`] and [`FaultMix::weights`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultKind::BitFlip => 0,
            FaultKind::Crash => 1,
            FaultKind::Runaway => 2,
            FaultKind::VtagFlip => 3,
            FaultKind::VolatileExhaust => 4,
            FaultKind::MonitorPressure => 5,
            FaultKind::IoError => 6,
        }
    }

    /// The name used in `--fault-mix` specs and JSON summaries.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bitflip",
            FaultKind::Crash => "crash",
            FaultKind::Runaway => "runaway",
            FaultKind::VtagFlip => "vtag",
            FaultKind::VolatileExhaust => "overflow",
            FaultKind::MonitorPressure => "monitor",
            FaultKind::IoError => "io",
        }
    }
}

/// One concrete injected fault. `entropy` fields are resolved against the
/// live structures at the point of application (e.g. reduced modulo the
/// data span or the set count), so a plan does not need to know geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Flip bit `bit & 7` of a data byte chosen by `entropy`.
    FlipMemBit { entropy: u64, bit: u8 },
    /// Crash the current step with the given kind.
    ForceCrash { kind: CrashKind },
    /// After the instruction executes, pull the pc back up to `max_back`
    /// instructions (clamped to the current pc), creating a loop.
    RedirectBack { max_back: u32 },
    /// Retag a valid L1 line (chosen by `entropy`) with the running path's
    /// vtag. Deferred: applied by the engine to its hierarchy.
    FlipL1Vtag { entropy: u64 },
    /// Mark every line of an L1 set (chosen by `entropy`) volatile with the
    /// running path's vtag. Deferred: applied by the engine.
    ExhaustVolatileSet { entropy: u64 },
    /// Push `records` synthetic watch records into the monitor area.
    /// Deferred: applied by the engine.
    MonitorPressure { records: u8 },
    /// Fail the input stream from now on.
    FailInput,
}

impl FaultAction {
    /// The category this action belongs to.
    #[must_use]
    pub fn kind(self) -> FaultKind {
        match self {
            FaultAction::FlipMemBit { .. } => FaultKind::BitFlip,
            FaultAction::ForceCrash { .. } => FaultKind::Crash,
            FaultAction::RedirectBack { .. } => FaultKind::Runaway,
            FaultAction::FlipL1Vtag { .. } => FaultKind::VtagFlip,
            FaultAction::ExhaustVolatileSet { .. } => FaultKind::VolatileExhaust,
            FaultAction::MonitorPressure { .. } => FaultKind::MonitorPressure,
            FaultAction::FailInput => FaultKind::IoError,
        }
    }

    /// Whether the engine (not `step`) must apply this action.
    #[must_use]
    pub fn is_deferred(self) -> bool {
        matches!(
            self,
            FaultAction::FlipL1Vtag { .. }
                | FaultAction::ExhaustVolatileSet { .. }
                | FaultAction::MonitorPressure { .. }
        )
    }
}

/// A step-granular fault injector. Called once per executed instruction
/// with the instruction's pc; returning `Some` injects that fault into the
/// step. Implementations must be deterministic for replayability.
pub trait FaultHook {
    /// Decide whether to inject a fault at this step.
    fn before_step(&mut self, pc: u32) -> Option<FaultAction>;
}

/// Relative weights for each [`FaultKind`] when a [`FaultPlan`] draws the
/// kind of an injected fault. A zero weight disables the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMix {
    /// Weight per kind, indexed by [`FaultKind::index`].
    pub weights: [u32; FAULT_KINDS.len()],
}

impl Default for FaultMix {
    fn default() -> FaultMix {
        FaultMix::uniform()
    }
}

impl FaultMix {
    /// Every kind equally likely.
    #[must_use]
    pub fn uniform() -> FaultMix {
        FaultMix {
            weights: [1; FAULT_KINDS.len()],
        }
    }

    /// Only the given kind.
    #[must_use]
    pub fn only(kind: FaultKind) -> FaultMix {
        let mut weights = [0; FAULT_KINDS.len()];
        weights[kind.index()] = 1;
        FaultMix { weights }
    }

    /// Parses a `--fault-mix` spec: comma-separated `name=weight` pairs,
    /// e.g. `"bitflip=2,crash=1,runaway=1"`. Kinds not named get weight 0;
    /// the bare word `"all"` (or an empty spec) means uniform.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry and listing the valid
    /// kind names.
    pub fn parse(spec: &str) -> Result<FaultMix, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "all" {
            return Ok(FaultMix::uniform());
        }
        let mut weights = [0u32; FAULT_KINDS.len()];
        for entry in spec.split(',') {
            let entry = entry.trim();
            let (name, weight) = match entry.split_once('=') {
                Some((n, w)) => {
                    let w: u32 = w.trim().parse().map_err(|_| {
                        format!("invalid weight in fault-mix entry {entry:?}: expected a non-negative integer")
                    })?;
                    (n.trim(), w)
                }
                None => (entry, 1),
            };
            let kind = FAULT_KINDS
                .iter()
                .find(|k| k.name() == name)
                .ok_or_else(|| {
                    let names: Vec<&str> = FAULT_KINDS.iter().map(|k| k.name()).collect();
                    format!(
                        "unknown fault kind {name:?} in fault-mix; valid kinds: {}",
                        names.join(", ")
                    )
                })?;
            weights[kind.index()] = weight;
        }
        if weights.iter().all(|&w| w == 0) {
            return Err("fault-mix disables every fault kind (all weights zero)".to_owned());
        }
        Ok(FaultMix { weights })
    }

    fn total(&self) -> u64 {
        self.weights.iter().map(|&w| u64::from(w)).sum()
    }

    fn draw(&self, rng: &mut Xoshiro256) -> FaultKind {
        let total = self.total().max(1);
        let mut roll = rng.below(total);
        for (i, &w) in self.weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return FAULT_KINDS[i];
            }
            roll -= w;
        }
        FaultKind::BitFlip
    }
}

impl core::fmt::Display for FaultMix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut first = true;
        for (i, &w) in self.weights.iter().enumerate() {
            if w == 0 {
                continue;
            }
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}={w}", FAULT_KINDS[i].name())?;
            first = false;
        }
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// Per-kind injection counters of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected, indexed by [`FaultKind::index`].
    pub by_kind: [u64; FAULT_KINDS.len()],
}

impl FaultStats {
    /// Total injected faults across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_kind.iter().sum()
    }
}

/// A seeded, replayable fault injector: at each step it fires with
/// probability `1/period`, drawing the fault kind from a [`FaultMix`] and
/// the fault parameters from the same PRNG stream. Identical
/// `(seed, mix, period)` produce the identical injection sequence.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: Xoshiro256,
    mix: FaultMix,
    period: u32,
    /// Injection counters, for campaign summaries.
    pub stats: FaultStats,
}

impl FaultPlan {
    /// Creates a plan firing on average once every `period` steps.
    #[must_use]
    pub fn new(seed: u64, mix: FaultMix, period: u32) -> FaultPlan {
        FaultPlan {
            rng: Xoshiro256::seeded(seed),
            mix,
            period: period.max(1),
            stats: FaultStats::default(),
        }
    }

    /// A uniform-mix plan firing once every `period` steps.
    #[must_use]
    pub fn uniform(seed: u64, period: u32) -> FaultPlan {
        FaultPlan::new(seed, FaultMix::uniform(), period)
    }

    fn action_for(&mut self, kind: FaultKind) -> FaultAction {
        match kind {
            FaultKind::BitFlip => FaultAction::FlipMemBit {
                entropy: self.rng.next_u64(),
                bit: (self.rng.next_u64() & 7) as u8,
            },
            FaultKind::Crash => {
                let kind = match self.rng.below(4) {
                    0 => CrashKind::NullDeref {
                        addr: (self.rng.next_u64() % u64::from(px_isa::NULL_GUARD_END)) as u32,
                    },
                    1 => CrashKind::OutOfBounds {
                        addr: u32::MAX - (self.rng.next_u64() & 0xFFFF) as u32,
                    },
                    2 => CrashKind::DivByZero,
                    _ => CrashKind::BadPc {
                        pc: u32::MAX - (self.rng.next_u64() & 0xFFFF) as u32,
                    },
                };
                FaultAction::ForceCrash { kind }
            }
            FaultKind::Runaway => FaultAction::RedirectBack {
                max_back: 1 + (self.rng.next_u64() & 15) as u32,
            },
            FaultKind::VtagFlip => FaultAction::FlipL1Vtag {
                entropy: self.rng.next_u64(),
            },
            FaultKind::VolatileExhaust => FaultAction::ExhaustVolatileSet {
                entropy: self.rng.next_u64(),
            },
            FaultKind::MonitorPressure => FaultAction::MonitorPressure {
                records: 1 + (self.rng.next_u64() & 7) as u8,
            },
            FaultKind::IoError => FaultAction::FailInput,
        }
    }
}

impl FaultHook for FaultPlan {
    fn before_step(&mut self, _pc: u32) -> Option<FaultAction> {
        if !self.rng.chance(1, u64::from(self.period)) {
            return None;
        }
        let kind = self.mix.draw(&mut self.rng);
        self.stats.by_kind[kind.index()] += 1;
        Some(self.action_for(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_replayable() {
        let mut a = FaultPlan::uniform(42, 3);
        let mut b = FaultPlan::uniform(42, 3);
        for pc in 0..2000 {
            assert_eq!(a.before_step(pc), b.before_step(pc));
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.total() > 0, "a 1-in-3 plan fires within 2000 steps");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::uniform(1, 2);
        let mut b = FaultPlan::uniform(2, 2);
        let same = (0..500).all(|pc| a.before_step(pc) == b.before_step(pc));
        assert!(!same);
    }

    #[test]
    fn mix_parse_round_trips_and_restricts_kinds() {
        let mix = FaultMix::parse("bitflip=2,crash=1").unwrap();
        assert_eq!(mix.weights[FaultKind::BitFlip.index()], 2);
        assert_eq!(mix.weights[FaultKind::Crash.index()], 1);
        assert_eq!(mix.weights[FaultKind::Runaway.index()], 0);
        let mut plan = FaultPlan::new(7, mix, 1);
        for pc in 0..500 {
            if let Some(action) = plan.before_step(pc) {
                assert!(matches!(
                    action.kind(),
                    FaultKind::BitFlip | FaultKind::Crash
                ));
            }
        }
        assert_eq!(FaultMix::parse(&mix.to_string()).unwrap(), mix);
    }

    #[test]
    fn mix_parse_rejects_bad_specs() {
        assert!(FaultMix::parse("nosuchkind=1")
            .unwrap_err()
            .contains("nosuchkind"));
        assert!(FaultMix::parse("crash=abc").unwrap_err().contains("weight"));
        assert!(FaultMix::parse("crash=0").unwrap_err().contains("zero"));
        assert_eq!(FaultMix::parse("all").unwrap(), FaultMix::uniform());
        assert_eq!(FaultMix::parse("").unwrap(), FaultMix::uniform());
    }

    #[test]
    fn bare_names_default_to_weight_one() {
        let mix = FaultMix::parse("crash,io").unwrap();
        assert_eq!(mix.weights[FaultKind::Crash.index()], 1);
        assert_eq!(mix.weights[FaultKind::IoError.index()], 1);
        assert_eq!(mix.total(), 2);
    }

    #[test]
    fn sim_error_displays() {
        assert!(SimError::NoCores.to_string().contains("zero cores"));
        assert!(SimError::BadCacheGeometry("x").to_string().contains("x"));
        assert!(SimError::ProgramTooLarge { mem_size: 9 }
            .to_string()
            .contains('9'));
    }
}
