//! Branch-edge coverage tracking — the paper's evaluation metric (§2, §6.3).

use px_isa::Program;

use crate::btb::Edge;
use crate::fault::SimError;

/// Tracks which static branch edges have been executed.
///
/// One instance typically tracks the taken path, another the NT-paths; their
/// union ([`Coverage::merge`]) is "PathExpander coverage". Cumulative
/// coverage over a test suite is the merge across inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// `edges[pc][0]` = taken edge seen, `edges[pc][1]` = not-taken edge seen.
    edges: Vec<[bool; 2]>,
}

impl Coverage {
    /// Creates a tracker for a program with `code_len` instructions.
    #[must_use]
    pub fn new(code_len: usize) -> Coverage {
        Coverage {
            edges: vec![[false; 2]; code_len],
        }
    }

    /// Creates a tracker sized for `program`.
    #[must_use]
    pub fn for_program(program: &Program) -> Coverage {
        Coverage::new(program.code.len())
    }

    /// Records execution of one edge of the branch at `pc`.
    pub fn record(&mut self, pc: u32, edge: Edge) {
        let slot = match edge {
            Edge::Taken => 0,
            Edge::NotTaken => 1,
        };
        if let Some(e) = self.edges.get_mut(pc as usize) {
            e[slot] = true;
        }
    }

    /// Whether a specific edge has been covered.
    #[must_use]
    pub fn covered(&self, pc: u32, edge: Edge) -> bool {
        let slot = match edge {
            Edge::Taken => 0,
            Edge::NotTaken => 1,
        };
        self.edges.get(pc as usize).is_some_and(|e| e[slot])
    }

    /// Number of covered edges outside checker regions.
    #[must_use]
    pub fn covered_edges(&self, program: &Program) -> u32 {
        self.edges
            .iter()
            .enumerate()
            .filter(|&(pc, _)| !program.in_checker_region(pc as u32))
            .map(|(_, e)| u32::from(e[0]) + u32::from(e[1]))
            .sum()
    }

    /// Branch coverage in `[0, 1]`: covered edges / static edges
    /// (checker regions excluded from both). Returns 1.0 for programs with
    /// no branches.
    #[must_use]
    pub fn branch_coverage(&self, program: &Program) -> f64 {
        let total = program.static_edge_count();
        if total == 0 {
            return 1.0;
        }
        f64::from(self.covered_edges(program)) / f64::from(total)
    }

    /// Merges another tracker into this one (union of covered edges).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoverageSizeMismatch`] — leaving `self`
    /// untouched — if the trackers were built for different code sizes.
    pub fn merge(&mut self, other: &Coverage) -> Result<(), SimError> {
        if self.edges.len() != other.edges.len() {
            return Err(SimError::CoverageSizeMismatch {
                left: self.edges.len(),
                right: other.edges.len(),
            });
        }
        for (a, b) in self.edges.iter_mut().zip(&other.edges) {
            a[0] |= b[0];
            a[1] |= b[1];
        }
        Ok(())
    }

    /// Number of covered edges outside checker regions that are also in
    /// `feasible` — the numerator of [`Coverage::branch_coverage_feasible`].
    ///
    /// `feasible[pc]` is the `[taken, not_taken]` mask from static analysis
    /// (px-analyze `feasible_edges`); indexes beyond its length count as
    /// infeasible. The intersection matters because NT-path spawns *force*
    /// execution down statically-refuted edges, so covered ⊄ feasible.
    #[must_use]
    pub fn covered_feasible_edges(&self, program: &Program, feasible: &[[bool; 2]]) -> u32 {
        self.edges
            .iter()
            .enumerate()
            .filter(|&(pc, _)| !program.in_checker_region(pc as u32))
            .map(|(pc, e)| {
                let f = feasible.get(pc).copied().unwrap_or([false; 2]);
                u32::from(e[0] && f[0]) + u32::from(e[1] && f[1])
            })
            .sum()
    }

    /// Branch coverage over the *feasible* denominator: covered∩feasible
    /// edges divided by feasible edges (checker regions excluded from
    /// both). This is the honest version of [`Coverage::branch_coverage`]
    /// — edges no input can ever take no longer depress the ratio. Returns
    /// 1.0 when no feasible edges exist.
    #[must_use]
    pub fn branch_coverage_feasible(&self, program: &Program, feasible: &[[bool; 2]]) -> f64 {
        let total: u32 = feasible
            .iter()
            .enumerate()
            .filter(|&(pc, _)| pc < self.edges.len() && !program.in_checker_region(pc as u32))
            .map(|(_, f)| u32::from(f[0]) + u32::from(f[1]))
            .sum();
        if total == 0 {
            return 1.0;
        }
        f64::from(self.covered_feasible_edges(program, feasible)) / f64::from(total)
    }

    /// Renders a branch-coverage-annotated disassembly: each conditional
    /// branch is prefixed with the state of its two edges —
    /// `T` covered by the taken path (present in `taken`), `N` covered only
    /// by NT-paths (present in `total` but not `taken`), `.` uncovered.
    /// The first mark is the branch's taken edge, the second its
    /// fall-through edge.
    #[must_use]
    pub fn annotated_listing(program: &Program, taken: &Coverage, total: &Coverage) -> String {
        Coverage::annotated_listing_feasible(program, taken, total, None)
    }

    /// Like [`Coverage::annotated_listing`], but when a static feasibility
    /// mask is supplied, an uncovered edge that analysis proved infeasible
    /// is marked `-` instead of `.` — "not covered, and no input ever
    /// will". Covered-but-infeasible edges keep their `T`/`N` mark: an `N`
    /// on an infeasible edge is an NT-path doing exactly what the paper
    /// built it for.
    #[must_use]
    pub fn annotated_listing_feasible(
        program: &Program,
        taken: &Coverage,
        total: &Coverage,
        feasible: Option<&[[bool; 2]]>,
    ) -> String {
        use core::fmt::Write as _;
        let mark = |pc: u32, edge: Edge| -> char {
            if taken.covered(pc, edge) {
                'T'
            } else if total.covered(pc, edge) {
                'N'
            } else if feasible.is_some_and(|f| {
                let slot = match edge {
                    Edge::Taken => 0,
                    Edge::NotTaken => 1,
                };
                !f.get(pc as usize).is_some_and(|e| e[slot])
            }) {
                '-'
            } else {
                '.'
            }
        };
        let mut out = String::new();
        for (pc, insn) in program.code.iter().enumerate() {
            let pc = pc as u32;
            let prefix = if matches!(insn, px_isa::Instruction::Branch { .. }) {
                format!("[{}{}]", mark(pc, Edge::Taken), mark(pc, Edge::NotTaken))
            } else {
                "    ".to_owned()
            };
            let _ = writeln!(out, "{prefix} {pc:>6}: {insn}");
        }
        out
    }

    /// FNV-1a-64 digest of the covered-edge bitmap (checker regions
    /// excluded, so instrumentation differences between tools do not leak
    /// into otherwise-identical coverage). Chainable: pass a previous
    /// digest as `seed`, or 0 to start fresh.
    #[must_use]
    pub fn digest(&self, program: &Program, seed: u64) -> u64 {
        let mut h = seed;
        for (pc, e) in self.edges.iter().enumerate() {
            if program.in_checker_region(pc as u32) {
                continue;
            }
            let bits = u8::from(e[0]) | (u8::from(e[1]) << 1);
            h = px_util::fnv1a64(h, &[bits]);
        }
        h
    }

    /// Packs the edge bitmap into bytes — 2 bits per instruction (bit 0 =
    /// taken seen, bit 1 = not-taken seen), four instructions per byte,
    /// low bits first. The campaign journal stores coverage shards in this
    /// form so a resumed run can rebuild and [`Coverage::merge`] them
    /// exactly; [`Coverage::unpack_bits`] is the inverse.
    #[must_use]
    pub fn pack_bits(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.edges.len().div_ceil(4)];
        for (pc, e) in self.edges.iter().enumerate() {
            let bits = u8::from(e[0]) | (u8::from(e[1]) << 1);
            out[pc / 4] |= bits << ((pc % 4) * 2);
        }
        out
    }

    /// Rebuilds a tracker from [`Coverage::pack_bits`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoverageSizeMismatch`] when `bytes` is not the
    /// packed size for `code_len` (a corrupt or foreign shard).
    pub fn unpack_bits(code_len: usize, bytes: &[u8]) -> Result<Coverage, SimError> {
        if bytes.len() != code_len.div_ceil(4) {
            return Err(SimError::CoverageSizeMismatch {
                left: code_len,
                right: bytes.len() * 4,
            });
        }
        let mut cov = Coverage::new(code_len);
        for (pc, e) in cov.edges.iter_mut().enumerate() {
            let bits = bytes[pc / 4] >> ((pc % 4) * 2);
            e[0] = bits & 1 != 0;
            e[1] = bits & 2 != 0;
        }
        Ok(cov)
    }

    /// Edges covered in `self` but not in `other` (what NT-paths added).
    #[must_use]
    pub fn newly_covered(&self, other: &Coverage, program: &Program) -> u32 {
        self.edges
            .iter()
            .zip(&other.edges)
            .enumerate()
            .filter(|&(pc, _)| !program.in_checker_region(pc as u32))
            .map(|(_, (a, b))| u32::from(a[0] && !b[0]) + u32::from(a[1] && !b[1]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn two_branch_program() -> Program {
        assemble(
            r"
            .code
            main:
                beq r1, zero, a
            a:  bne r2, zero, b
            b:  exit
            ",
        )
        .unwrap()
    }

    #[test]
    fn coverage_counts_edges() {
        let p = two_branch_program();
        assert_eq!(p.static_edge_count(), 4);
        let mut c = Coverage::for_program(&p);
        assert_eq!(c.branch_coverage(&p), 0.0);
        c.record(0, Edge::Taken);
        assert!((c.branch_coverage(&p) - 0.25).abs() < 1e-12);
        c.record(0, Edge::Taken); // idempotent
        assert!((c.branch_coverage(&p) - 0.25).abs() < 1e-12);
        c.record(1, Edge::NotTaken);
        assert_eq!(c.covered_edges(&p), 2);
        assert!(c.covered(0, Edge::Taken));
        assert!(!c.covered(0, Edge::NotTaken));
    }

    #[test]
    fn merge_and_newly_covered() {
        let p = two_branch_program();
        let mut taken = Coverage::for_program(&p);
        taken.record(0, Edge::Taken);
        let mut nt = Coverage::for_program(&p);
        nt.record(0, Edge::Taken);
        nt.record(0, Edge::NotTaken);
        nt.record(1, Edge::Taken);
        assert_eq!(nt.newly_covered(&taken, &p), 2);
        let mut merged = taken.clone();
        merged.merge(&nt).unwrap();
        assert_eq!(merged.covered_edges(&p), 3);
    }

    #[test]
    fn merge_size_mismatch_is_a_typed_error() {
        let mut a = Coverage::new(3);
        let b = Coverage::new(5);
        let before = a.clone();
        assert_eq!(
            a.merge(&b),
            Err(crate::fault::SimError::CoverageSizeMismatch { left: 3, right: 5 })
        );
        assert_eq!(a, before, "failed merge must not mutate");
    }

    #[test]
    fn feasible_coverage_uses_the_honest_denominator() {
        let p = two_branch_program();
        // Static analysis says branch 0's taken edge is infeasible:
        // 3 feasible edges out of 4 static ones.
        let feasible = vec![[false, true], [true, true], [false, false]];
        let mut c = Coverage::for_program(&p);
        c.record(0, Edge::NotTaken);
        c.record(1, Edge::Taken);
        // Plain coverage: 2/4. Feasible coverage: 2/3.
        assert!((c.branch_coverage(&p) - 0.5).abs() < 1e-12);
        assert!((c.branch_coverage_feasible(&p, &feasible) - 2.0 / 3.0).abs() < 1e-12);
        // An NT-forced cover of the infeasible edge raises the plain
        // numerator but not the feasible one.
        c.record(0, Edge::Taken);
        assert_eq!(c.covered_edges(&p), 3);
        assert_eq!(c.covered_feasible_edges(&p, &feasible), 2);
        assert!((c.branch_coverage_feasible(&p, &feasible) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_marks_uncoverable_edges_in_the_listing() {
        let p = two_branch_program();
        let taken = Coverage::for_program(&p);
        let mut total = taken.clone();
        total.record(0, Edge::Taken);
        let feasible = vec![[true, false], [false, true], [false, false]];
        let listing = Coverage::annotated_listing_feasible(&p, &taken, &total, Some(&feasible));
        let lines: Vec<&str> = listing.lines().collect();
        // Branch 0: taken edge covered by NT, not-taken uncovered+infeasible.
        assert!(lines[0].starts_with("[N-]"), "got {}", lines[0]);
        // Branch 1: taken uncovered+infeasible, not-taken uncovered+feasible.
        assert!(lines[1].starts_with("[-.]"), "got {}", lines[1]);
    }

    #[test]
    fn annotated_listing_marks_edges() {
        let p = two_branch_program();
        let mut taken = Coverage::for_program(&p);
        taken.record(0, Edge::Taken);
        let mut total = taken.clone();
        total.record(0, Edge::NotTaken);
        total.record(1, Edge::Taken);
        let listing = Coverage::annotated_listing(&p, &taken, &total);
        let lines: Vec<&str> = listing.lines().collect();
        assert!(
            lines[0].starts_with("[TN]"),
            "taken + NT edges: {}",
            lines[0]
        );
        assert!(lines[1].starts_with("[N.]"), "NT + uncovered: {}", lines[1]);
        assert!(
            lines[2].starts_with("    "),
            "non-branch unmarked: {}",
            lines[2]
        );
    }

    #[test]
    fn pack_bits_round_trips_and_rejects_bad_sizes() {
        for code_len in [0usize, 1, 3, 4, 5, 9, 257] {
            let mut c = Coverage::new(code_len);
            // A deterministic sprinkle across both slots.
            for pc in 0..code_len {
                if pc % 3 == 0 {
                    c.record(pc as u32, Edge::Taken);
                }
                if pc % 5 == 0 {
                    c.record(pc as u32, Edge::NotTaken);
                }
            }
            let packed = c.pack_bits();
            assert_eq!(packed.len(), code_len.div_ceil(4));
            let back = Coverage::unpack_bits(code_len, &packed).unwrap();
            assert_eq!(back, c, "code_len {code_len} round-trips");
        }
        assert!(matches!(
            Coverage::unpack_bits(8, &[0u8; 3]),
            Err(crate::fault::SimError::CoverageSizeMismatch { .. })
        ));
    }

    #[test]
    fn packed_shards_merge_like_live_trackers() {
        let p = two_branch_program();
        let mut a = Coverage::for_program(&p);
        a.record(0, Edge::Taken);
        let mut b = Coverage::for_program(&p);
        b.record(1, Edge::NotTaken);
        // Ship both through the packed form, then merge the shards.
        let mut merged = Coverage::unpack_bits(p.code.len(), &a.pack_bits()).unwrap();
        merged
            .merge(&Coverage::unpack_bits(p.code.len(), &b.pack_bits()).unwrap())
            .unwrap();
        let mut live = a.clone();
        live.merge(&b).unwrap();
        assert_eq!(merged, live);
    }

    #[test]
    fn no_branch_program_is_fully_covered() {
        let p = assemble(".code\nmain: exit\n").unwrap();
        let c = Coverage::for_program(&p);
        assert_eq!(c.branch_coverage(&p), 1.0);
    }
}
