//! Branch-edge coverage tracking — the paper's evaluation metric (§2, §6.3).

use px_isa::Program;

use crate::btb::Edge;

/// Tracks which static branch edges have been executed.
///
/// One instance typically tracks the taken path, another the NT-paths; their
/// union ([`Coverage::merge`]) is "PathExpander coverage". Cumulative
/// coverage over a test suite is the merge across inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// `edges[pc][0]` = taken edge seen, `edges[pc][1]` = not-taken edge seen.
    edges: Vec<[bool; 2]>,
}

impl Coverage {
    /// Creates a tracker for a program with `code_len` instructions.
    #[must_use]
    pub fn new(code_len: usize) -> Coverage {
        Coverage {
            edges: vec![[false; 2]; code_len],
        }
    }

    /// Creates a tracker sized for `program`.
    #[must_use]
    pub fn for_program(program: &Program) -> Coverage {
        Coverage::new(program.code.len())
    }

    /// Records execution of one edge of the branch at `pc`.
    pub fn record(&mut self, pc: u32, edge: Edge) {
        let slot = match edge {
            Edge::Taken => 0,
            Edge::NotTaken => 1,
        };
        if let Some(e) = self.edges.get_mut(pc as usize) {
            e[slot] = true;
        }
    }

    /// Whether a specific edge has been covered.
    #[must_use]
    pub fn covered(&self, pc: u32, edge: Edge) -> bool {
        let slot = match edge {
            Edge::Taken => 0,
            Edge::NotTaken => 1,
        };
        self.edges.get(pc as usize).is_some_and(|e| e[slot])
    }

    /// Number of covered edges outside checker regions.
    #[must_use]
    pub fn covered_edges(&self, program: &Program) -> u32 {
        self.edges
            .iter()
            .enumerate()
            .filter(|&(pc, _)| !program.in_checker_region(pc as u32))
            .map(|(_, e)| u32::from(e[0]) + u32::from(e[1]))
            .sum()
    }

    /// Branch coverage in `[0, 1]`: covered edges / static edges
    /// (checker regions excluded from both). Returns 1.0 for programs with
    /// no branches.
    #[must_use]
    pub fn branch_coverage(&self, program: &Program) -> f64 {
        let total = program.static_edge_count();
        if total == 0 {
            return 1.0;
        }
        f64::from(self.covered_edges(program)) / f64::from(total)
    }

    /// Merges another tracker into this one (union of covered edges).
    ///
    /// # Panics
    ///
    /// Panics if the trackers were built for different code sizes.
    pub fn merge(&mut self, other: &Coverage) {
        assert_eq!(
            self.edges.len(),
            other.edges.len(),
            "coverage size mismatch"
        );
        for (a, b) in self.edges.iter_mut().zip(&other.edges) {
            a[0] |= b[0];
            a[1] |= b[1];
        }
    }

    /// Renders a branch-coverage-annotated disassembly: each conditional
    /// branch is prefixed with the state of its two edges —
    /// `T` covered by the taken path (present in `taken`), `N` covered only
    /// by NT-paths (present in `total` but not `taken`), `.` uncovered.
    /// The first mark is the branch's taken edge, the second its
    /// fall-through edge.
    #[must_use]
    pub fn annotated_listing(program: &Program, taken: &Coverage, total: &Coverage) -> String {
        use core::fmt::Write as _;
        let mark = |pc: u32, edge: Edge| -> char {
            if taken.covered(pc, edge) {
                'T'
            } else if total.covered(pc, edge) {
                'N'
            } else {
                '.'
            }
        };
        let mut out = String::new();
        for (pc, insn) in program.code.iter().enumerate() {
            let pc = pc as u32;
            let prefix = if matches!(insn, px_isa::Instruction::Branch { .. }) {
                format!("[{}{}]", mark(pc, Edge::Taken), mark(pc, Edge::NotTaken))
            } else {
                "    ".to_owned()
            };
            let _ = writeln!(out, "{prefix} {pc:>6}: {insn}");
        }
        out
    }

    /// Edges covered in `self` but not in `other` (what NT-paths added).
    #[must_use]
    pub fn newly_covered(&self, other: &Coverage, program: &Program) -> u32 {
        self.edges
            .iter()
            .zip(&other.edges)
            .enumerate()
            .filter(|&(pc, _)| !program.in_checker_region(pc as u32))
            .map(|(_, (a, b))| u32::from(a[0] && !b[0]) + u32::from(a[1] && !b[1]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn two_branch_program() -> Program {
        assemble(
            r"
            .code
            main:
                beq r1, zero, a
            a:  bne r2, zero, b
            b:  exit
            ",
        )
        .unwrap()
    }

    #[test]
    fn coverage_counts_edges() {
        let p = two_branch_program();
        assert_eq!(p.static_edge_count(), 4);
        let mut c = Coverage::for_program(&p);
        assert_eq!(c.branch_coverage(&p), 0.0);
        c.record(0, Edge::Taken);
        assert!((c.branch_coverage(&p) - 0.25).abs() < 1e-12);
        c.record(0, Edge::Taken); // idempotent
        assert!((c.branch_coverage(&p) - 0.25).abs() < 1e-12);
        c.record(1, Edge::NotTaken);
        assert_eq!(c.covered_edges(&p), 2);
        assert!(c.covered(0, Edge::Taken));
        assert!(!c.covered(0, Edge::NotTaken));
    }

    #[test]
    fn merge_and_newly_covered() {
        let p = two_branch_program();
        let mut taken = Coverage::for_program(&p);
        taken.record(0, Edge::Taken);
        let mut nt = Coverage::for_program(&p);
        nt.record(0, Edge::Taken);
        nt.record(0, Edge::NotTaken);
        nt.record(1, Edge::Taken);
        assert_eq!(nt.newly_covered(&taken, &p), 2);
        let mut merged = taken.clone();
        merged.merge(&nt);
        assert_eq!(merged.covered_edges(&p), 3);
    }

    #[test]
    fn annotated_listing_marks_edges() {
        let p = two_branch_program();
        let mut taken = Coverage::for_program(&p);
        taken.record(0, Edge::Taken);
        let mut total = taken.clone();
        total.record(0, Edge::NotTaken);
        total.record(1, Edge::Taken);
        let listing = Coverage::annotated_listing(&p, &taken, &total);
        let lines: Vec<&str> = listing.lines().collect();
        assert!(
            lines[0].starts_with("[TN]"),
            "taken + NT edges: {}",
            lines[0]
        );
        assert!(lines[1].starts_with("[N.]"), "NT + uncovered: {}", lines[1]);
        assert!(
            lines[2].starts_with("    "),
            "non-branch unmarked: {}",
            lines[2]
        );
    }

    #[test]
    fn no_branch_program_is_fully_covered() {
        let p = assemble(".code\nmain: exit\n").unwrap();
        let c = Coverage::for_program(&p);
        assert_eq!(c.branch_coverage(&p), 1.0);
    }
}
