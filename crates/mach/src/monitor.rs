//! The monitor memory area (paper §4.1): a special region, exempt from the
//! sandbox, where dynamic-checker results are stored so they survive NT-path
//! squashes. We model it as a typed record buffer rather than raw bytes — the
//! contents are exactly what a checker would serialize there.

use px_isa::CheckKind;

/// Where a record was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// The ordinary (taken) execution path.
    Taken,
    /// A non-taken path; `spawn_pc` is the branch it was spawned from.
    NtPath { spawn_pc: u32 },
}

impl PathKind {
    /// Whether the record came from an NT-path.
    #[must_use]
    pub fn is_nt(&self) -> bool {
        matches!(self, PathKind::NtPath { .. })
    }
}

/// The payload of a monitor record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// A failed `check` probe (assertion / CCured check).
    Check(CheckKind),
    /// A watchpoint hit (iWatcher).
    Watch { tag: u32, addr: u32, is_write: bool },
}

/// One entry in the monitor memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MonitorRecord {
    /// The checker event.
    pub kind: RecordKind,
    /// Static site identifier: the `check` site for checks, the watch tag for
    /// watch hits.
    pub site: u32,
    /// Instruction index where the event occurred.
    pub pc: u32,
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Taken path or NT-path provenance.
    pub path: PathKind,
}

/// The monitor memory area itself.
#[derive(Debug, Clone, Default)]
pub struct MonitorArea {
    records: Vec<MonitorRecord>,
}

impl MonitorArea {
    /// Creates an empty area.
    #[must_use]
    pub fn new() -> MonitorArea {
        MonitorArea::default()
    }

    /// Appends a record. Records are never rolled back — that is the point
    /// of the monitor memory area.
    pub fn push(&mut self, record: MonitorRecord) {
        self.records.push(record);
    }

    /// All records, in program order.
    #[must_use]
    pub fn records(&self) -> &[MonitorRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the area is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records produced on NT-paths only.
    pub fn nt_records(&self) -> impl Iterator<Item = &MonitorRecord> {
        self.records.iter().filter(|r| r.path.is_nt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_survive_and_filter_by_path() {
        let mut area = MonitorArea::new();
        area.push(MonitorRecord {
            kind: RecordKind::Check(CheckKind::Assertion),
            site: 1,
            pc: 10,
            cycle: 100,
            path: PathKind::Taken,
        });
        area.push(MonitorRecord {
            kind: RecordKind::Watch {
                tag: 5,
                addr: 0x2000,
                is_write: true,
            },
            site: 5,
            pc: 20,
            cycle: 200,
            path: PathKind::NtPath { spawn_pc: 7 },
        });
        assert_eq!(area.len(), 2);
        assert_eq!(area.nt_records().count(), 1);
        assert!(area.records()[1].path.is_nt());
        assert!(!area.is_empty());
    }
}
