//! Property tests on the machine substrate: the sandbox is an exact overlay,
//! gang invalidation removes exactly the volatile lines, the BTB counters
//! never exceed saturation, coverage merging is a lattice join, and the
//! watch table's rollback is an inverse.
//!
//! Runs on the in-tree `px_util` property harness (`px_prop!`).

use px_isa::{Width, DATA_BASE};
use px_mach::{
    Btb, Cache, CacheConfig, Coverage, Edge, Hierarchy, MachConfig, MemView, Memory, Sandbox,
    SandboxView, WatchTable, COMMITTED,
};
use px_util::prop::{any_bool, any_i32, vec_of, Strategy};
use px_util::px_prop;

const MEM_SIZE: u32 = DATA_BASE + 4096;

fn arb_addr() -> impl Strategy<Value = u32> + Clone + 'static {
    DATA_BASE..(MEM_SIZE - 4)
}

px_prop! {
    fn sandbox_reads_equal_writes_and_rollback_restores(
        committed_writes in vec_of((arb_addr(), any_i32()), 0..20),
        nt_writes in vec_of((arb_addr(), any_i32()), 0..20),
        probes in vec_of(arb_addr(), 1..16),
    ) {
        use std::collections::HashMap;
        let mut mem = Memory::new(MEM_SIZE);
        for &(a, v) in &committed_writes {
            mem.store(a, v, Width::Word).unwrap();
        }
        let snapshot = mem.clone();

        // Byte-level oracle of the NT overlay.
        let mut oracle: HashMap<u32, u8> = HashMap::new();
        let mut sb = Sandbox::new();
        {
            let mut view = SandboxView::new(&mem, &mut sb);
            for &(a, v) in &nt_writes {
                view.store(a, v, Width::Word).unwrap();
                for (i, byte) in v.to_le_bytes().into_iter().enumerate() {
                    oracle.insert(a + i as u32, byte);
                }
            }
            for &p in &probes {
                let expected = oracle.get(&p).copied().unwrap_or_else(|| snapshot.byte(p));
                assert_eq!(
                    view.load(p, Width::Byte).unwrap(),
                    i32::from(expected),
                    "probe at {p:#x}"
                );
            }
        }
        // Rollback: committed memory is untouched by any NT write.
        sb.clear();
        assert_eq!(mem, snapshot);
        assert_eq!(sb.written_bytes(), 0);
    }

    fn snapshot_preserves_spawn_time_view(
        addr in arb_addr(),
        before in any_i32(),
        after in any_i32(),
    ) {
        let mut mem = Memory::new(MEM_SIZE);
        mem.store(addr, before, Width::Word).unwrap();
        let mut sb = Sandbox::new();
        // Taken path overwrites after the NT-path spawned.
        for i in 0..4 {
            sb.preserve(addr + i, mem.byte(addr + i));
        }
        mem.store(addr, after, Width::Word).unwrap();
        let mut view = SandboxView::new(&mem, &mut sb);
        assert_eq!(view.load(addr, Width::Word).unwrap(), before);
    }

    fn gang_invalidate_removes_exactly_the_tagged_lines(
        ops in vec_of((0u32..1u32 << 16, any_bool(), 0u8..4), 1..200),
        victim_tag in 1u8..4,
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 2048,
            assoc: 4,
            line_bytes: 32,
            hit_cycles: 1,
        });
        for &(addr, write, tag) in &ops {
            let _ = cache.access(addr, write, tag);
        }
        let before = cache.volatile_lines();
        let dropped = cache.gang_invalidate(victim_tag);
        let after = cache.volatile_lines();
        assert_eq!(before - after, dropped);
        // A second invalidation finds nothing.
        assert_eq!(cache.gang_invalidate(victim_tag), 0);
    }

    // The L1 Vtag squash invariant (paper §4.2(2)/§6.2): squashing an
    // NT-path gang-invalidates *every* line carrying its volatile tag,
    // while committed lines — in particular the monitor memory area, which
    // checker stores always write with the committed tag — survive and
    // still hit.
    fn squash_invalidates_all_volatile_lines_and_monitor_lines_survive(
        monitor_lines in vec_of(0u32..8, 1..8),
        nt_ops in vec_of((0u32..8, 1u8..4), 0..24),
    ) {
        let cfg = CacheConfig { size_bytes: 4096, assoc: 4, line_bytes: 32, hit_cycles: 1 };
        let line = cfg.line_bytes;
        let mut cache = Cache::new(cfg);
        // The "monitor area": committed writes, one distinct cache set per
        // index (sets 0..8) so capacity eviction cannot disturb the
        // invariant under test.
        for &i in &monitor_lines {
            cache.access(i * line, true, COMMITTED);
        }
        // NT-path writes land in disjoint sets (8..16), so they never evict
        // the monitor lines.
        for &(i, tag) in &nt_ops {
            cache.access((i + 8) * line, true, tag);
        }
        // Squash every live path: afterwards no volatile line may remain.
        for tag in 1u8..4 {
            cache.gang_invalidate(tag);
        }
        assert_eq!(cache.volatile_lines(), 0, "squash must drop every volatile line");
        // Monitor-area lines survived the squash and still hit.
        for &i in &monitor_lines {
            assert_eq!(
                cache.access(i * line, false, COMMITTED),
                px_mach::Lookup::Hit,
                "monitor line {i} was lost by an NT-path squash"
            );
        }
    }

    fn btb_counters_saturate_and_reset(
        pcs in vec_of((0u32..512, any_bool()), 0..400),
    ) {
        let mut btb = Btb::new(256, 2);
        for &(pc, taken) in &pcs {
            btb.exercise(pc, Edge::from_taken(taken));
        }
        for &(pc, taken) in &pcs {
            assert!(btb.edge_count(pc, Edge::from_taken(taken)) <= px_mach::COUNTER_MAX);
        }
        btb.reset_counters();
        for &(pc, taken) in &pcs {
            assert_eq!(btb.edge_count(pc, Edge::from_taken(taken)), 0);
        }
    }

    fn coverage_merge_is_monotone_and_idempotent(
        a in vec_of((0u32..64, any_bool()), 0..64),
        b in vec_of((0u32..64, any_bool()), 0..64),
    ) {
        let mut ca = Coverage::new(64);
        for &(pc, t) in &a {
            ca.record(pc, Edge::from_taken(t));
        }
        let mut cb = Coverage::new(64);
        for &(pc, t) in &b {
            cb.record(pc, Edge::from_taken(t));
        }
        let mut merged = ca.clone();
        merged.merge(&cb).unwrap();
        // Everything in either input is in the merge.
        for &(pc, t) in a.iter().chain(&b) {
            assert!(merged.covered(pc, Edge::from_taken(t)));
        }
        // Idempotent.
        let mut twice = merged.clone();
        twice.merge(&cb).unwrap();
        twice.merge(&ca).unwrap();
        assert_eq!(&twice, &merged);
    }

    fn watch_rollback_is_an_exact_inverse(
        initial in vec_of((0u32..4096, 1u32..64, 1u32..8), 0..10),
        nt_ops in vec_of((any_bool(), 0u32..4096, 1u32..64, 1u32..8), 0..20),
        probe in 0u32..4096,
    ) {
        let mut w = WatchTable::new();
        for &(lo, len, tag) in &initial {
            w.set(lo, len, tag);
        }
        let hits_before: Vec<Option<u32>> =
            (0..8).map(|i| w.hit(probe + i * 97, 4)).collect();
        w.begin_log();
        for &(add, lo, len, tag) in &nt_ops {
            if add {
                w.set(lo, len, tag);
            } else {
                w.clear(tag);
            }
        }
        w.rollback();
        let hits_after: Vec<Option<u32>> =
            (0..8).map(|i| w.hit(probe + i * 97, 4)).collect();
        assert_eq!(hits_before, hits_after);
        assert_eq!(w.len(), initial.iter().filter(|(_, len, _)| *len > 0).count());
    }

    fn hierarchy_latency_is_within_physical_bounds(
        ops in vec_of((0u32..1u32 << 20, any_bool()), 1..300),
    ) {
        let cfg = MachConfig::default();
        let mut h = Hierarchy::new(&cfg);
        let min = cfg.l1.hit_cycles;
        let max = cfg.l1.hit_cycles + cfg.l2.hit_cycles * 2 + cfg.mem_cycles;
        for &(addr, write) in &ops {
            let a = h.access(0, addr, write, COMMITTED);
            assert!(a.cycles >= min && a.cycles <= max, "latency {} out of [{min},{max}]", a.cycles);
        }
        let s = h.stats;
        assert_eq!(s.l1_hits + s.l1_misses, ops.len() as u64);
    }
}
