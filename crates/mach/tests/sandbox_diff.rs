//! Differential property suite for the paged sandbox: the generation-stamped
//! shadow-page implementation in `px_mach::Sandbox` must behave exactly like
//! the obvious `HashMap`-based model it replaced, under arbitrary interleaved
//! traces of stores (both widths, any alignment), loads, copy-on-write
//! `preserve` calls and `clear`s — including reuse across clears, which is
//! where a stale-generation bug would hide.

use std::collections::HashMap;

use px_isa::{Width, DATA_BASE};
use px_mach::{MemView, Memory, Sandbox, SandboxView};
use px_util::prop::{any_i32, vec_of, Strategy};
use px_util::px_prop;

const MEM_SIZE: u32 = DATA_BASE + 3 * 4096;

/// The reference model: exactly the pre-rewrite representation — a byte map
/// of NT writes over a byte map of spawn-time snapshots, latest write wins,
/// first `preserve` wins.
#[derive(Default)]
struct RefSandbox {
    writes: HashMap<u32, u8>,
    snap: HashMap<u32, u8>,
}

impl RefSandbox {
    fn store(&mut self, addr: u32, value: i32, width: Width) {
        for (i, b) in value.to_le_bytes()[..width.bytes() as usize]
            .iter()
            .enumerate()
        {
            self.writes.insert(addr + i as u32, *b);
        }
    }

    fn load(&self, mem: &Memory, addr: u32, width: Width) -> i32 {
        let mut bytes = [0u8; 4];
        for (i, slot) in bytes[..width.bytes() as usize].iter_mut().enumerate() {
            let a = addr + i as u32;
            *slot = self
                .writes
                .get(&a)
                .or_else(|| self.snap.get(&a))
                .copied()
                .unwrap_or_else(|| mem.byte(a));
        }
        match width {
            Width::Byte => i32::from(bytes[0]),
            Width::Word => i32::from_le_bytes(bytes),
        }
    }

    fn preserve(&mut self, addr: u32, old: u8) {
        self.snap.entry(addr).or_insert(old);
    }

    fn clear(&mut self) {
        self.writes.clear();
        self.snap.clear();
    }
}

/// One step of a random trace.
#[derive(Debug, Clone)]
enum Op {
    Store { addr: u32, value: i32, word: bool },
    Load { addr: u32, word: bool },
    Preserve { addr: u32 },
    Clear,
}

fn arb_addr() -> impl Strategy<Value = u32> + Clone + 'static {
    // Deliberately unaligned and spanning page boundaries: the span store
    // fast path and the word load fast path both have a "crosses a 64-bit
    // mask word / page edge" slow branch that must agree with the model.
    DATA_BASE..(MEM_SIZE - 4)
}

fn arb_op() -> impl Strategy<Value = Op> + 'static {
    (arb_addr(), any_i32(), 0u8..8).prop_map(|(addr, value, kind)| match kind {
        0..=2 => Op::Store {
            addr,
            value,
            word: true,
        },
        3 => Op::Store {
            addr,
            value,
            word: false,
        },
        4 | 5 => Op::Load {
            addr,
            word: kind == 4,
        },
        6 => Op::Preserve { addr },
        _ => Op::Clear,
    })
}

fn width(word: bool) -> Width {
    if word {
        Width::Word
    } else {
        Width::Byte
    }
}

px_prop! {
    fn paged_sandbox_matches_hashmap_reference(
        seed_writes in vec_of((arb_addr(), any_i32()), 0..8),
        trace in vec_of(arb_op(), 1..120),
    ) {
        let mut mem = Memory::new(MEM_SIZE);
        for &(a, v) in &seed_writes {
            mem.store(a, v, Width::Word).unwrap();
        }
        let mut sb = Sandbox::new();
        let mut model = RefSandbox::default();

        for op in &trace {
            match *op {
                Op::Store { addr, value, word } => {
                    let w = width(word);
                    SandboxView::new(&mem, &mut sb).store(addr, value, w).unwrap();
                    model.store(addr, value, w);
                }
                Op::Load { addr, word } => {
                    let w = width(word);
                    let got = SandboxView::new(&mem, &mut sb).load(addr, w).unwrap();
                    assert_eq!(got, model.load(&mem, addr, w), "load {addr:#x} {w:?}");
                }
                Op::Preserve { addr } => {
                    let old = mem.byte(addr);
                    sb.preserve(addr, old);
                    model.preserve(addr, old);
                }
                Op::Clear => {
                    sb.clear();
                    model.clear();
                }
            }
            assert_eq!(sb.written_bytes(), model.writes.len(), "written_bytes after {op:?}");
        }

        // Sweep every byte both ways at the end of the trace: per-byte
        // queries and word loads at all four alignments must agree.
        for a in DATA_BASE..(MEM_SIZE - 4) {
            assert_eq!(sb.written_byte(a), model.writes.get(&a).copied(), "written {a:#x}");
            assert_eq!(sb.snapshot_byte(a), model.snap.get(&a).copied(), "snap {a:#x}");
            let got = SandboxView::new(&mem, &mut sb).load(a, Width::Word).unwrap();
            assert_eq!(got, model.load(&mem, a, Width::Word), "final word {a:#x}");
        }
    }

    fn clear_is_generation_fresh_even_with_reused_pages(
        addr in arb_addr(),
        rounds in vec_of((any_i32(), any_i32()), 1..10),
    ) {
        // Reusing a page across clears must never leak a previous round's
        // writes or snapshots: the generation stamp makes old state stale
        // without zeroing, and this is the property that pins it.
        let mut mem = Memory::new(MEM_SIZE);
        let mut sb = Sandbox::new();
        for &(v, old) in &rounds {
            sb.preserve(addr, old as u8);
            SandboxView::new(&mem, &mut sb).store(addr, v, Width::Word).unwrap();
            assert_eq!(
                SandboxView::new(&mem, &mut sb).load(addr, Width::Word).unwrap(),
                v
            );
            sb.clear();
            assert_eq!(sb.written_bytes(), 0);
            assert_eq!(sb.written_byte(addr), None);
            assert_eq!(sb.snapshot_byte(addr), None);
            assert_eq!(
                SandboxView::new(&mem, &mut sb).load(addr, Width::Word).unwrap(),
                mem.load(addr, Width::Word).unwrap()
            );
        }
    }
}
