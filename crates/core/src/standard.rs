//! The PathExpander **standard configuration** (paper §4.2, Figure 4(a)).
//!
//! One core runs the program. When a branch resolves and the *non-taken*
//! edge's exercise counter is below `NTPathCounterThreshold`, the engine:
//!
//! 1. bumps the non-taken edge's counter (counters are updated "during
//!    taken-path execution and at the entry of an NT-Path", §4.2(1)),
//! 2. checkpoints the registers and program counter,
//! 3. sets the NT-entry predicate (so the compiler's variable-fixing
//!    instructions at the edge head execute) and redirects the PC to the
//!    non-taken target,
//! 4. runs the NT-path with memory writes sandboxed in L1 (volatile tag) and
//!    system calls suppressed,
//! 5. on termination — `MaxNTPathLength`, crash, unsafe event, program end,
//!    or sandbox overflow — gang-invalidates the volatile lines, restores the
//!    checkpoint and resumes the taken path.
//!
//! Checker records produced on the NT-path go to the monitor memory area and
//! survive the squash.

use px_isa::{Program, SyscallCode};
use px_mach::{
    Btb, Checkpoint, CoreState, Coverage, Edge, FaultHook, Hierarchy, IoState, MachConfig, Memory,
    MonitorArea, MonitorRecord, PathKind, RecordKind, RunExit, Sandbox, SandboxView, SimError,
    StepEnv, StepEvent, WatchTable, COMMITTED, MAX_MEM_BYTES,
};

use crate::config::PxConfig;
use crate::inject::{apply_deferred, CountingHook};
use crate::stats::{NtPathRecord, NtStop, PxRunResult, PxStats};

/// Volatile tag used for NT-path lines in the standard configuration — the
/// paper's single-bit Vtag.
const NT_VTAG: u8 = 1;

struct NtContext {
    spawn_pc: u32,
    executed: u32,
    checkpoint: Checkpoint,
    /// §3.2 OS-sandbox extension: a disposable I/O snapshot the NT-path's
    /// system calls run against (discarded at squash).
    scratch_io: Option<IoState>,
}

/// Runs `program` under the standard PathExpander configuration.
///
/// `cfg.mode` is ignored — this function *is* the standard engine; the
/// [`crate::cmp`] module implements the CMP optimization.
#[must_use]
pub fn run_standard(
    program: &Program,
    mach: &MachConfig,
    px: &PxConfig,
    io: IoState,
) -> PxRunResult {
    run_standard_with(program, mach, px, io, None)
}

/// [`run_standard`] with an optional fault injector.
///
/// The hook is consulted only while an NT-path is stepping, so every
/// injected fault lands inside the sandbox: the committed memory, register
/// file and I/O must still match a plain baseline run (the containment
/// property [`crate::contain::check_containment`] verifies). Bad
/// configurations and malformed programs surface as
/// [`RunExit::EngineFault`] instead of panicking.
#[must_use]
pub fn run_standard_with(
    program: &Program,
    mach: &MachConfig,
    px: &PxConfig,
    io: IoState,
    fault: Option<&mut dyn FaultHook>,
) -> PxRunResult {
    let fail = |e: SimError, io: IoState| PxRunResult {
        exit: RunExit::EngineFault(e),
        cycles: 0,
        taken_coverage: Coverage::for_program(program),
        total_coverage: Coverage::for_program(program),
        monitor: MonitorArea::new(),
        io,
        memory: Memory::new(0),
        core: CoreState::default(),
        stats: PxStats::default(),
    };
    if let Err(e) = mach.validate() {
        return fail(e, io);
    }
    if program.mem_size > MAX_MEM_BYTES {
        return fail(
            SimError::ProgramTooLarge {
                mem_size: program.mem_size,
            },
            io,
        );
    }
    let mut memory = Memory::new(mach.mem_size.max(program.mem_size));
    for item in &program.data {
        if let Err(e) = memory.try_load_blob(item.addr, &item.bytes) {
            return fail(e, io);
        }
    }
    let mut fault = fault.map(|inner| CountingHook { inner, fired: 0 });
    let mut core = CoreState::at_entry(program.entry, memory.size());
    let mut caches = Hierarchy::new(mach);
    let mut btb = Btb::new(mach.btb_entries, mach.btb_assoc);
    let mut watches = WatchTable::new();
    let mut taken_cov = Coverage::for_program(program);
    let mut nt_cov = Coverage::for_program(program);
    let mut monitor = MonitorArea::new();
    let mut stats = PxStats::default();
    let mut io = io;
    let mut sandbox = Sandbox::new();

    let mut cycles: u64 = 0;
    let mut instructions: u64 = 0;
    let mut taken_since_reset: u64 = 0;
    // Deterministic source for the §7.1(2) random spawn factor.
    let mut spawn_rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ (program.code.len() as u64 + 1);
    // Static NT-spawn veto mask, precomputed once per run (the analysis is
    // pure; `None` keeps the paper's dynamic-only selection untouched).
    let static_veto = px
        .static_nt_filter
        .map(|k| px_analyze::Analysis::of(program).veto_mask(program, k));
    let vetoed = |mask: &Option<Vec<[bool; 2]>>, pc: u32, edge: Edge| -> bool {
        mask.as_ref().is_some_and(|m| {
            m.get(pc as usize)
                .is_some_and(|e| e[usize::from(edge == Edge::NotTaken)])
        })
    };

    // The run alternates between two modal inner loops — taken-path and
    // NT-path — instead of re-deciding the mode on every instruction. Each
    // inner loop hoists everything its mode never needs (the taken loop has
    // no sandbox, overflow or watchdog checks; the NT loop builds its
    // sandbox view once per path and skips the counter-reset check), which
    // is worth a double-digit percentage of the simulation's wall time.
    //
    // How an NT segment ended: either a normal stop (squash, resume taken
    // path) or the instruction budget ran out mid-path (squash as cut
    // short, then end the whole run).
    enum SegEnd {
        Stop(NtStop),
        Budget,
    }

    let exit = 'run: loop {
        // ---- Taken-path mode (no NT-path live). ----
        let spawned = 'taken: loop {
            if instructions >= px.max_instructions {
                break 'run RunExit::BudgetExhausted;
            }
            instructions += 1;

            // Periodic exercise-counter reset (per CounterResetInterval
            // taken-path instructions, §4.2(1)).
            if taken_since_reset >= px.counter_reset_interval {
                btb.reset_counters();
                stats.counter_resets += 1;
                taken_since_reset = 0;
            }

            let s = {
                let mut env = StepEnv {
                    io: &mut io,
                    watches: &mut watches,
                    suppress_syscalls: false,
                    now_cycles: cycles,
                    costs: &mach.costs,
                    // Faults are injected only into NT-paths: the taken path
                    // is the reference the containment checker diffs against.
                    fault: None,
                };
                px_mach::step(program, &mut core, &mut memory, &mut env)
            };

            cycles += u64::from(s.base_cost);
            if let Some(action) = s.deferred {
                apply_deferred(
                    action,
                    &mut caches,
                    0,
                    NT_VTAG,
                    &mut monitor,
                    cycles,
                    PathKind::Taken,
                    core.pc,
                );
            }
            if let Some(access) = s.access {
                let a = caches.access(0, access.addr, access.write, COMMITTED);
                cycles += u64::from(a.cycles);
            }

            stats.taken_instructions += 1;
            taken_since_reset += 1;

            match s.event {
                StepEvent::Branch {
                    pc,
                    taken,
                    taken_target,
                    not_taken_target,
                    ..
                } => {
                    stats.dyn_branches += 1;
                    let edge = Edge::from_taken(taken);
                    btb.exercise(pc, edge);
                    taken_cov.record(pc, edge);
                    // NT-path spawn decision.
                    let nt_edge = edge.other();
                    let hot = btb.edge_count(pc, nt_edge) >= px.counter_threshold;
                    let random_admit = hot
                        && px.random_factor.is_some_and(|n| {
                            spawn_rng ^= spawn_rng << 13;
                            spawn_rng ^= spawn_rng >> 7;
                            spawn_rng ^= spawn_rng << 17;
                            spawn_rng.is_multiple_of(u64::from(n))
                        });
                    if program.in_checker_region(pc) {
                        stats.skipped_checker += 1;
                    } else if vetoed(&static_veto, pc, nt_edge) {
                        stats.skipped_static += 1;
                    } else if hot && !random_admit {
                        stats.skipped_hot += 1;
                    } else {
                        if random_admit {
                            stats.random_spawns += 1;
                        }
                        // Spawn: counter bump at NT entry, checkpoint,
                        // redirect.
                        btb.exercise(pc, nt_edge);
                        nt_cov.record(pc, nt_edge);
                        stats.spawns += 1;
                        cycles += u64::from(mach.spawn_cycles);
                        let checkpoint = Checkpoint::take(&core);
                        core.pc = if taken {
                            not_taken_target
                        } else {
                            taken_target
                        };
                        core.pred = px.apply_fixes;
                        watches.begin_log();
                        debug_assert_eq!(sandbox.written_bytes(), 0);
                        let scratch_io = px.os_sandbox_unsafe.then(|| io.clone());
                        break 'taken NtContext {
                            spawn_pc: pc,
                            executed: 0,
                            checkpoint,
                            scratch_io,
                        };
                    }
                }
                StepEvent::CheckFailed { kind, site, pc } => monitor.push(MonitorRecord {
                    kind: RecordKind::Check(kind),
                    site,
                    pc,
                    cycle: cycles,
                    path: PathKind::Taken,
                }),
                StepEvent::WatchHit {
                    tag,
                    addr,
                    is_write,
                    pc,
                } => monitor.push(MonitorRecord {
                    kind: RecordKind::Watch {
                        tag,
                        addr,
                        is_write,
                    },
                    site: tag,
                    pc,
                    cycle: cycles,
                    path: PathKind::Taken,
                }),
                StepEvent::UnsafeEvent { .. } => {
                    break 'run RunExit::EngineFault(SimError::Invariant(
                        "unsafe events only occur in NT-paths",
                    ));
                }
                StepEvent::Crash { kind, .. } => break 'run RunExit::Crashed(kind),
                StepEvent::Exit { code } => break 'run RunExit::Exited(code),
                StepEvent::Syscall { .. } | StepEvent::None => {}
            }
        };
        let mut ctx = spawned;

        // ---- NT-path mode: one segment per spawned path. ----
        let path = PathKind::NtPath {
            spawn_pc: ctx.spawn_pc,
        };
        // Resolve the path's I/O once per segment, not once per
        // instruction: the OS-sandbox scratch snapshot (when enabled) or
        // the real I/O (which an NT-path can then only reach through
        // suppressed system calls).
        let mut scratch_io = ctx.scratch_io.take();
        let end = 'nt: {
            let mut view = SandboxView::new(&memory, &mut sandbox);
            let io_ref: &mut IoState = match scratch_io.as_mut() {
                Some(scratch) => scratch,
                None => &mut io,
            };
            loop {
                if instructions >= px.max_instructions {
                    // A budget hit mid-NT-path must not leave speculative
                    // state behind: squash so the committed state is the
                    // same one a shorter, NT-free run would have reached.
                    break 'nt SegEnd::Budget;
                }
                instructions += 1;

                let s = {
                    let mut env = StepEnv {
                        io: &mut *io_ref,
                        watches: &mut watches,
                        suppress_syscalls: !px.os_sandbox_unsafe,
                        now_cycles: cycles,
                        costs: &mach.costs,
                        fault: fault.as_mut().map(|h| h as &mut dyn FaultHook),
                    };
                    px_mach::step(program, &mut core, &mut view, &mut env)
                };

                cycles += u64::from(s.base_cost);
                if let Some(action) = s.deferred {
                    apply_deferred(
                        action,
                        &mut caches,
                        0,
                        NT_VTAG,
                        &mut monitor,
                        cycles,
                        path,
                        core.pc,
                    );
                }
                let mut overflow = false;
                if let Some(access) = s.access {
                    let vtag = if access.write {
                        stats.nt_writes += 1;
                        NT_VTAG
                    } else {
                        COMMITTED
                    };
                    let a = caches.access(0, access.addr, access.write, vtag);
                    cycles += u64::from(a.cycles);
                    if a.volatile_evicted == Some(NT_VTAG) {
                        overflow = true;
                    }
                }

                stats.nt_instructions += 1;

                match s.event {
                    StepEvent::Branch {
                        pc,
                        taken,
                        taken_target,
                        not_taken_target,
                        ..
                    } => {
                        stats.dyn_branches += 1;
                        let edge = Edge::from_taken(taken);
                        nt_cov.record(pc, edge);
                        // Ablation D2: force the non-taken edge from inside
                        // an NT-path when it has never been exercised.
                        if px.explore_nt_from_nt {
                            let other = edge.other();
                            if btb.edge_count(pc, other) < px.counter_threshold
                                && !program.in_checker_region(pc)
                                && !vetoed(&static_veto, pc, other)
                            {
                                btb.exercise(pc, other);
                                nt_cov.record(pc, other);
                                core.pc = if taken {
                                    not_taken_target
                                } else {
                                    taken_target
                                };
                            }
                        }
                    }
                    StepEvent::CheckFailed { kind, site, pc } => monitor.push(MonitorRecord {
                        kind: RecordKind::Check(kind),
                        site,
                        pc,
                        cycle: cycles,
                        path,
                    }),
                    StepEvent::WatchHit {
                        tag,
                        addr,
                        is_write,
                        pc,
                    } => monitor.push(MonitorRecord {
                        kind: RecordKind::Watch {
                            tag,
                            addr,
                            is_write,
                        },
                        site: tag,
                        pc,
                        cycle: cycles,
                        path,
                    }),
                    StepEvent::UnsafeEvent { code } => {
                        break 'nt SegEnd::Stop(if code == SyscallCode::Exit {
                            NtStop::ProgramEnd
                        } else {
                            NtStop::Unsafe(code)
                        });
                    }
                    StepEvent::Crash { kind, .. } => {
                        break 'nt SegEnd::Stop(NtStop::Crash(kind));
                    }
                    StepEvent::Exit { .. } => {
                        // Only reachable under the OS-sandbox extension: the
                        // NT-path reached the end of the program.
                        break 'nt SegEnd::Stop(NtStop::ProgramEnd);
                    }
                    StepEvent::Syscall { .. } => {
                        if px.os_sandbox_unsafe {
                            stats.nt_syscalls_sandboxed += 1;
                        }
                    }
                    StepEvent::None => {}
                }

                // NT-path bookkeeping: length limit, sandbox overflow and
                // the watchdog (which outranks MaxLength when configured
                // tighter — redirect faults can stretch a path's wall time,
                // and the watchdog guarantees the taken path always regains
                // the core).
                ctx.executed += 1;
                if overflow {
                    break 'nt SegEnd::Stop(NtStop::SandboxOverflow);
                } else if u64::from(ctx.executed) >= px.nt_watchdog {
                    break 'nt SegEnd::Stop(NtStop::Watchdog);
                } else if ctx.executed >= px.max_nt_path_len {
                    break 'nt SegEnd::Stop(NtStop::MaxLength);
                }
            }
        };
        let stop = match end {
            SegEnd::Stop(stop) => stop,
            SegEnd::Budget => NtStop::RunCutShort,
        };
        squash(
            ctx,
            stop,
            &mut core,
            &mut caches,
            &mut watches,
            &mut sandbox,
            &mut stats,
            &mut cycles,
            mach,
        );
        if matches!(end, SegEnd::Budget) {
            break 'run RunExit::BudgetExhausted;
        }
    };

    if let Some(h) = &fault {
        stats.faults_injected = h.fired;
    }
    let mut total_coverage = taken_cov.clone();
    let exit = match total_coverage.merge(&nt_cov) {
        Ok(()) => exit,
        Err(e) => RunExit::EngineFault(e),
    };
    PxRunResult {
        exit,
        cycles,
        taken_coverage: taken_cov,
        total_coverage,
        monitor,
        io,
        memory,
        core,
        stats,
    }
}

#[allow(clippy::too_many_arguments)]
fn squash(
    ctx: NtContext,
    stop: NtStop,
    core: &mut CoreState,
    caches: &mut Hierarchy,
    watches: &mut WatchTable,
    sandbox: &mut Sandbox,
    stats: &mut PxStats,
    cycles: &mut u64,
    mach: &MachConfig,
) {
    *cycles += u64::from(mach.squash_cycles);
    caches.squash_path(0, NT_VTAG);
    sandbox.clear();
    watches.rollback();
    ctx.checkpoint.restore(core);
    stats.paths.push(NtPathRecord {
        spawn_pc: ctx.spawn_pc,
        executed: ctx.executed,
        stop,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;
    use px_mach::CrashKind;

    fn run(src: &str, px: &PxConfig) -> PxRunResult {
        let program = assemble(src).unwrap();
        run_standard(&program, &MachConfig::single_core(), px, IoState::default())
    }

    /// A branch with one direction never exercised by the input, plus a loop
    /// whose exit edge spawns a few NT-paths.
    const HIDDEN_BUG: &str = r"
        .code
        main:
            li r1, 1          ; condition variable: always 1
            beq r1, zero, ok  ; never taken with this input
            jmp ok
            nop
        ok:
            li r4, 5
        loop:
            subi r4, r4, 1
            bgt r4, zero, loop
            li r2, 0
            exit
        ";

    #[test]
    fn spawns_nt_paths_and_terminates_cleanly() {
        let px = PxConfig::default().with_max_nt_path_len(50);
        let r = run(HIDDEN_BUG, &px);
        assert_eq!(r.exit, RunExit::Exited(0));
        assert!(r.stats.spawns >= 1, "at least the beq edge spawns");
        assert_eq!(r.stats.paths.len(), r.stats.spawns as usize);
        // Taken path and total coverage differ.
        let p = assemble(HIDDEN_BUG).unwrap();
        assert!(
            r.total_coverage.covered_edges(&p) > r.taken_coverage.covered_edges(&p),
            "NT-paths added coverage"
        );
    }

    #[test]
    fn nt_path_detects_bug_on_non_taken_edge() {
        // Bug: assertion failure reachable only when the branch goes the
        // never-taken way.
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok   ; always taken; fall-through is buggy
                li r3, 0
                assert r3, #77     ; the hidden bug
                jmp ok
            ok:
                li r2, 0
                exit
            ";
        let base = run(src, &PxConfig::default());
        assert_eq!(base.monitor.nt_records().count(), 1, "bug found on NT-path");
        let rec = base.monitor.nt_records().next().unwrap();
        assert_eq!(rec.site, 77);
        assert_eq!(rec.path, PathKind::NtPath { spawn_pc: 1 });
        // And the taken path itself never reports it.
        assert_eq!(
            base.monitor
                .records()
                .iter()
                .filter(|r| !r.path.is_nt())
                .count(),
            0
        );
    }

    #[test]
    fn nt_crash_is_contained() {
        // The non-taken edge dereferences null: the NT-path crashes, the
        // program still exits 0.
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
                lw r5, 0(zero)     ; NT-path crashes here
                jmp ok
            ok:
                li r2, 0
                exit
            ";
        let r = run(src, &PxConfig::default());
        assert_eq!(r.exit, RunExit::Exited(0));
        assert_eq!(r.stats.stops_of("crash"), 1);
    }

    #[test]
    fn nt_unsafe_event_stops_the_path_without_side_effects() {
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
                li r2, 88          ; 'X'
                putc               ; unsafe in NT-path
                jmp ok
            ok:
                li r2, 0
                exit
            ";
        let r = run(src, &PxConfig::default());
        assert_eq!(r.exit, RunExit::Exited(0));
        assert_eq!(r.stats.stops_of("unsafe"), 1);
        assert!(r.io.output().is_empty(), "the putc never happened");
    }

    #[test]
    fn nt_writes_roll_back() {
        let src = r"
            .data
            g: .word 7
            .code
            main:
                li r1, 1
                bne r1, zero, ok
                la r5, g
                li r6, 999
                sw r6, 0(r5)       ; sandboxed write
                jmp ok
            ok:
                la r5, g
                lw r2, 0(r5)
                printi             ; prints committed value
                li r2, 0
                exit
            ";
        let r = run(src, &PxConfig::default());
        assert_eq!(r.io.output_string(), "7", "NT store must not leak");
    }

    #[test]
    fn max_length_bounds_nt_paths() {
        // Non-taken edge leads into an infinite loop.
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
            spin:
                jmp spin
            ok:
                li r2, 0
                exit
            ";
        let px = PxConfig::default().with_max_nt_path_len(30);
        let r = run(src, &px);
        assert_eq!(r.exit, RunExit::Exited(0));
        assert_eq!(r.stats.stops_of("max-length"), 1);
        let path = &r.stats.paths[0];
        assert_eq!(path.executed, 30);
    }

    #[test]
    fn counter_threshold_limits_spawns_per_edge() {
        // The loop branch's exit edge is non-taken for 9 iterations; with
        // threshold 5 only 5 NT-paths spawn from it.
        let src = r"
            .code
            main:
                li r4, 10
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            ";
        let px = PxConfig::default().with_counter_threshold(5);
        let r = run(src, &px);
        // Spawns: 5 from the loop-exit edge (plus 1 from the final
        // not-taken iteration whose other edge is `taken`... that edge was
        // exercised 9 times, so it is hot). Exactly 5.
        assert_eq!(r.stats.spawns, 5);
        assert!(r.stats.skipped_hot >= 4);
    }

    #[test]
    fn static_nt_filter_vetoes_doomed_spawns_without_perturbing_the_run() {
        // The non-taken edge of the guard branch funnels straight into an
        // exit syscall: every NT-path spawned there dies within 2
        // instructions. The static filter (threshold 10) proves that and
        // vetoes the spawn; everything the taken path does is unchanged.
        let src = r"
            .code
            main:
                li r4, 6
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop ; non-taken edge falls into the exit
                li r2, 0
                exit
            ";
        let base = run(src, &PxConfig::default());
        let filtered = run(src, &PxConfig::default().with_static_nt_filter(Some(10)));
        assert!(base.stats.spawns > 0, "baseline must spawn NT-paths");
        assert_eq!(filtered.stats.spawns, 0, "every spawn here is doomed");
        assert_eq!(filtered.stats.skipped_static, base.stats.spawns);
        assert_eq!(base.stats.skipped_static, 0, "off by default");
        // The taken path is untouched by the veto.
        assert_eq!(filtered.exit, base.exit);
        assert_eq!(filtered.io.output_string(), base.io.output_string());
        assert_eq!(
            filtered.taken_coverage, base.taken_coverage,
            "taken-path coverage identical with and without the filter"
        );
    }

    #[test]
    fn fixes_execute_only_with_apply_fixes() {
        // The non-taken edge asserts on the condition variable; the
        // predicated fix at the edge head repairs it.
        let src = r"
            .code
            main:
                li r1, 5
                bne r1, zero, ok   ; non-taken edge semantically needs r1 == 0
                pli r1, 0          ; compiler's fix: set r1 = 0 (boundary)
                seq r3, r1, zero   ; r3 = (r1 == 0)
                assert r3, #50     ; false positive unless fixed
                jmp ok
            ok:
                li r2, 0
                exit
            ";
        let fixed = run(src, &PxConfig::default().with_fixes(true));
        assert_eq!(fixed.monitor.len(), 0, "fix removes the false positive");
        let unfixed = run(src, &PxConfig::default().with_fixes(false));
        assert_eq!(unfixed.monitor.len(), 1, "without fixing the check fires");
    }

    #[test]
    fn taken_path_crash_still_faults() {
        let src = ".code\nmain:\n  lw r1, 0(zero)\n";
        let r = run(src, &PxConfig::default());
        assert!(matches!(
            r.exit,
            RunExit::Crashed(CrashKind::NullDeref { .. })
        ));
    }

    #[test]
    fn counter_reset_reenables_spawning() {
        // Two passes over the same branch; with a tiny reset interval the
        // edge counter clears between them.
        let src = r"
            .code
            main:
                li r7, 2           ; outer passes
            outer:
                li r4, 8
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                subi r7, r7, 1
                bgt r7, zero, outer
                li r2, 0
                exit
            ";
        let no_reset = run(
            src,
            &PxConfig::default()
                .with_counter_threshold(1)
                .with_counter_reset_interval(u64::MAX),
        );
        let with_reset = run(
            src,
            &PxConfig::default()
                .with_counter_threshold(1)
                .with_counter_reset_interval(20),
        );
        assert!(with_reset.stats.counter_resets > 0);
        assert!(
            with_reset.stats.spawns > no_reset.stats.spawns,
            "resets re-enable exploration: {} vs {}",
            with_reset.stats.spawns,
            no_reset.stats.spawns
        );
    }

    #[test]
    fn os_sandbox_extension_lets_nt_paths_run_past_syscalls() {
        // §3.2 future work: with OS support, the putc is executed against a
        // disposable I/O snapshot instead of stopping the path, and the
        // output still never leaks.
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
                li r2, 88
                putc                ; sandboxed under the extension
                li r3, 0
                assert r3, #66      ; bug past the unsafe event
                jmp ok
            ok:
                li r2, 0
                exit
            ";
        let plain = run(src, &PxConfig::default());
        assert_eq!(plain.stats.stops_of("unsafe"), 1);
        assert_eq!(plain.monitor.len(), 0, "bug unreachable without OS support");

        let os = run(src, &PxConfig::default().with_os_sandbox(true));
        assert_eq!(os.stats.stops_of("unsafe"), 0);
        assert_eq!(os.stats.nt_syscalls_sandboxed, 1);
        assert_eq!(os.monitor.len(), 1, "the path now reaches the bug");
        assert!(os.io.output().is_empty(), "sandboxed putc must not leak");
        assert_eq!(os.exit, RunExit::Exited(0));
    }

    #[test]
    fn random_factor_spawns_from_hot_edges() {
        // A loop branch whose exit edge saturates the threshold: with the
        // §7.1(2) random factor, occasional extra spawns still happen.
        let src = r"
            .code
            main:
                li r4, 400
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            ";
        let plain = run(src, &PxConfig::default().with_counter_threshold(1));
        let random = run(
            src,
            &PxConfig::default()
                .with_counter_threshold(1)
                .with_random_factor(Some(16)),
        );
        assert_eq!(plain.stats.random_spawns, 0);
        assert!(random.stats.random_spawns > 0, "hot edges re-explored");
        assert!(random.stats.spawns > plain.stats.spawns);
        // Determinism.
        let again = run(
            src,
            &PxConfig::default()
                .with_counter_threshold(1)
                .with_random_factor(Some(16)),
        );
        assert_eq!(again.stats.random_spawns, random.stats.random_spawns);
    }

    #[test]
    fn watchdog_outranks_max_length() {
        // Non-taken edge leads into an infinite loop; the watchdog is set
        // tighter than MaxNTPathLength and must cut the cascade first.
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
            spin:
                jmp spin
            ok:
                li r2, 0
                exit
            ";
        let px = PxConfig::default()
            .with_max_nt_path_len(10_000)
            .with_nt_watchdog(25);
        let r = run(src, &px);
        assert_eq!(r.exit, RunExit::Exited(0));
        assert_eq!(r.stats.stops_of("watchdog"), 1);
        assert_eq!(r.stats.paths[0].executed, 25);
    }

    #[test]
    fn budget_hit_mid_nt_path_squashes_cleanly() {
        // The budget lands while an NT-path is live: the path must be cut
        // short and the committed io/registers must reflect only taken work.
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
            spin:
                jmp spin
            ok:
                li r2, 0
                exit
            ";
        let px = PxConfig::default()
            .with_max_nt_path_len(100_000)
            .with_nt_watchdog(1_000_000)
            .with_max_instructions(20);
        let r = run(src, &px);
        assert_eq!(r.exit, RunExit::BudgetExhausted);
        assert_eq!(r.stats.stops_of("cut-short"), 1);
        assert!(r.io.output().is_empty());
    }

    #[test]
    fn bad_config_and_malformed_program_are_engine_faults() {
        let program = assemble(HIDDEN_BUG).unwrap();
        let mut mach = MachConfig::single_core();
        mach.l1.assoc = 0;
        let r = run_standard(&program, &mach, &PxConfig::default(), IoState::default());
        assert_eq!(r.exit.class(), "engine-fault");

        let mut garbage = assemble(HIDDEN_BUG).unwrap();
        garbage.data.push(px_isa::DataItem {
            addr: u32::MAX - 1,
            bytes: vec![0xAA; 8],
        });
        let r = run_standard(
            &garbage,
            &MachConfig::single_core(),
            &PxConfig::default(),
            IoState::default(),
        );
        assert!(matches!(
            r.exit,
            RunExit::EngineFault(SimError::BlobOutOfBounds { .. })
        ));

        let mut huge = assemble(HIDDEN_BUG).unwrap();
        huge.mem_size = u32::MAX;
        let r = run_standard(
            &huge,
            &MachConfig::single_core(),
            &PxConfig::default(),
            IoState::default(),
        );
        assert!(matches!(
            r.exit,
            RunExit::EngineFault(SimError::ProgramTooLarge { .. })
        ));
    }

    #[test]
    fn injected_faults_are_counted_and_contained() {
        use px_mach::{FaultMix, FaultPlan};
        let clean = run(HIDDEN_BUG, &PxConfig::default());
        for seed in [1u64, 7, 42] {
            let program = assemble(HIDDEN_BUG).unwrap();
            let mut plan = FaultPlan::new(seed, FaultMix::uniform(), 2);
            let r = run_standard_with(
                &program,
                &MachConfig::single_core(),
                &PxConfig::default(),
                IoState::default(),
                Some(&mut plan),
            );
            assert_eq!(r.exit, clean.exit, "taken path unaffected (seed {seed})");
            assert_eq!(r.io.output(), clean.io.output());
            if r.stats.nt_instructions > 0 {
                assert_eq!(r.stats.faults_injected, plan.stats.total());
            }
        }
    }

    #[test]
    fn explore_nt_from_nt_widens_coverage() {
        // Inside the NT region there is a second branch whose non-taken edge
        // is otherwise never explored (NT-paths follow actual conditions).
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok   ; spawn point
                ; --- NT region ---
                li r5, 1
                bne r5, zero, sub_ok  ; inner branch: always taken inside NT
                nop                   ; inner non-taken edge
            sub_ok:
                jmp ok
            ok:
                li r2, 0
                exit
            ";
        let p = assemble(src).unwrap();
        let plain = run(src, &PxConfig::default());
        let ablate = run(src, &PxConfig::default().with_explore_nt_from_nt(true));
        assert!(ablate.total_coverage.covered_edges(&p) > plain.total_coverage.covered_edges(&p));
    }
}
