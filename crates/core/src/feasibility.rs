//! The paper's §3.2 feasibility analysis: Crash-Latency and Unsafe-Latency
//! measurement (Figure 3).
//!
//! "In each experiment, we spawn an NT-Path at every non-taken branch edge
//! with zero exercise count and execute it until it either (1) crashes,
//! (2) reaches an unsafe event, (3) reaches the end of the program, or
//! (4) has executed a maximum threshold of instructions (1000). NT-Paths are
//! executed without applying any variable-fixing techniques."

use px_isa::Program;
use px_mach::{FaultHook, IoState, MachConfig};

use crate::config::PxConfig;
use crate::standard::{run_standard, run_standard_with};
use crate::stats::{NtStop, PxStats};

/// Result of the feasibility measurement for one application.
#[derive(Debug, Clone)]
pub struct LatencyProfile {
    /// NT-paths spawned.
    pub spawned: usize,
    /// (instructions executed, stop reason) per NT-path.
    pub latencies: Vec<(u32, NtStop)>,
    /// The maximum-length threshold used.
    pub threshold: u32,
}

impl LatencyProfile {
    /// Fraction of NT-paths that *crashed* before executing `n` instructions
    /// — a point on the paper's Crash-Latency CDF.
    #[must_use]
    pub fn crash_cdf(&self, n: u32) -> f64 {
        self.cdf(n, |s| matches!(s, NtStop::Crash(_)))
    }

    /// Fraction of NT-paths that hit an *unsafe event* before `n`
    /// instructions — a point on the Unsafe-Latency CDF.
    #[must_use]
    pub fn unsafe_cdf(&self, n: u32) -> f64 {
        self.cdf(n, |s| matches!(s, NtStop::Unsafe(_)))
    }

    /// Fraction of NT-paths stopped by *either* cause before `n`
    /// instructions (the "Stopped NT-Path Ratio" axis of Figure 3).
    #[must_use]
    pub fn stopped_cdf(&self, n: u32) -> f64 {
        self.cdf(n, |s| matches!(s, NtStop::Crash(_) | NtStop::Unsafe(_)))
    }

    /// Fraction of NT-paths that survived to the full threshold (executed at
    /// least `threshold` instructions or reached the end of the program) —
    /// the paper's "65–99% of the NT-Paths can execute at least 1000
    /// instructions" headline.
    #[must_use]
    pub fn survived_ratio(&self) -> f64 {
        if self.latencies.is_empty() {
            return 1.0;
        }
        let survived = self
            .latencies
            .iter()
            .filter(|(n, stop)| *n >= self.threshold || matches!(stop, NtStop::ProgramEnd))
            .count();
        survived as f64 / self.latencies.len() as f64
    }

    fn cdf(&self, n: u32, pred: impl Fn(&NtStop) -> bool) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let stopped = self
            .latencies
            .iter()
            .filter(|(executed, stop)| *executed < n && pred(stop))
            .count();
        stopped as f64 / self.latencies.len() as f64
    }
}

/// Runs the Figure 3 feasibility experiment: spawn at every zero-count
/// non-taken edge, no variable fixing, `threshold`-instruction NT-paths.
#[must_use]
pub fn measure_latency(
    program: &Program,
    mach: &MachConfig,
    io: IoState,
    threshold: u32,
    max_instructions: u64,
) -> LatencyProfile {
    let px = PxConfig::default()
        .with_counter_threshold(1)
        .with_max_nt_path_len(threshold)
        .with_fixes(false)
        .with_counter_reset_interval(u64::MAX)
        .with_max_instructions(max_instructions);
    let result = run_standard(program, mach, &px, io);
    profile_from_stats(&result.stats, threshold)
}

/// [`measure_latency`] with a fault injector: how the Figure 3 latency
/// shapes shift when NT-paths are bombarded with injected faults (they must
/// shift toward *earlier* stops, never corrupt the profile).
#[must_use]
pub fn measure_latency_with(
    program: &Program,
    mach: &MachConfig,
    io: IoState,
    threshold: u32,
    max_instructions: u64,
    fault: Option<&mut dyn FaultHook>,
) -> LatencyProfile {
    let px = PxConfig::default()
        .with_counter_threshold(1)
        .with_max_nt_path_len(threshold)
        .with_fixes(false)
        .with_counter_reset_interval(u64::MAX)
        .with_max_instructions(max_instructions);
    let result = run_standard_with(program, mach, &px, io, fault);
    profile_from_stats(&result.stats, threshold)
}

/// Builds a [`LatencyProfile`] from any run's statistics.
#[must_use]
pub fn profile_from_stats(stats: &PxStats, threshold: u32) -> LatencyProfile {
    LatencyProfile {
        spawned: stats.paths.len(),
        latencies: stats.paths.iter().map(|p| (p.executed, p.stop)).collect(),
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;
    use px_mach::CrashKind;

    #[test]
    fn cdf_shapes_are_monotone_and_bounded() {
        let profile = LatencyProfile {
            spawned: 4,
            latencies: vec![
                (10, NtStop::Crash(CrashKind::DivByZero)),
                (100, NtStop::Unsafe(px_isa::SyscallCode::PutChar)),
                (1000, NtStop::MaxLength),
                (1000, NtStop::MaxLength),
            ],
            threshold: 1000,
        };
        assert_eq!(profile.crash_cdf(5), 0.0);
        assert_eq!(profile.crash_cdf(11), 0.25);
        assert_eq!(profile.unsafe_cdf(101), 0.25);
        assert_eq!(profile.stopped_cdf(2000), 0.5);
        assert!(profile.crash_cdf(500) <= profile.crash_cdf(1000));
        assert_eq!(profile.survived_ratio(), 0.5);
    }

    #[test]
    fn compute_heavy_program_mostly_survives() {
        // Pure computation, no I/O inside loops: NT-paths should survive
        // (the paper's go-like shape).
        let src = r"
            .code
            main:
                li r4, 60
                li r5, 0
            loop:
                subi r4, r4, 1
                addi r5, r5, 3
                blt r5, zero, never   ; never taken
                bgt r4, zero, loop
                li r2, 0
                exit
            never:
                addi r6, r6, 1
                jmp loop
            ";
        let program = assemble(src).unwrap();
        let p = measure_latency(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            50,
            1_000_000,
        );
        assert!(p.spawned > 0);
        assert!(
            p.survived_ratio() > 0.6,
            "compute-only NT-paths should survive: {:?}",
            p.survived_ratio()
        );
    }

    #[test]
    fn io_heavy_program_stops_on_unsafe_events() {
        // putc inside the non-taken region: NT-paths die on unsafe events
        // (the paper's gzip-like shape).
        let src = r"
            .code
            main:
                li r4, 30
            loop:
                subi r4, r4, 1
                beq r4, r9, never   ; r9 = 0 only at the end... taken once
                bgt r4, zero, loop
                li r2, 0
                exit
            never:
                li r2, 65
                putc
                jmp loop
            ";
        let program = assemble(src).unwrap();
        let p = measure_latency(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            1000,
            1_000_000,
        );
        assert!(p.spawned > 0);
        assert!(p.unsafe_cdf(1000) > 0.0, "some NT-paths must hit putc");
    }
}
