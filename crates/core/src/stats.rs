//! Run statistics and results shared by the standard and CMP engines.

use px_isa::{Program, SyscallCode};
use px_mach::{CoreState, Coverage, CrashKind, IoState, Memory, MonitorArea, RunExit};

/// Why an NT-path terminated (paper §4.2(3), plus the implicit sandbox
/// capacity limit of buffering in L1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NtStop {
    /// Executed `MaxNTPathLength` instructions.
    MaxLength,
    /// Crashed (exception swallowed, not delivered to the OS).
    Crash(CrashKind),
    /// Reached an unsafe event — a system call the sandbox cannot contain.
    Unsafe(SyscallCode),
    /// Reached the program's `exit` call.
    ProgramEnd,
    /// A volatile line was displaced from L1: the sandbox overflowed.
    SandboxOverflow,
    /// CMP option only: squashed early because its sibling taken-path
    /// segment was forced to commit (dirty-line displacement, paper §4.3).
    ForcedCommit,
    /// Still running when the program (or its budget) finished.
    RunCutShort,
    /// Squashed by the per-cascade watchdog (`nt_watchdog`): the path's
    /// spawn cascade exceeded its wall-instruction budget. A belt-and-braces
    /// bound on runaway NT work (fault injection makes this reachable).
    Watchdog,
}

impl NtStop {
    /// Coarse class used in histograms.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            NtStop::MaxLength => "max-length",
            NtStop::Crash(_) => "crash",
            NtStop::Unsafe(_) => "unsafe",
            NtStop::ProgramEnd => "program-end",
            NtStop::SandboxOverflow => "sandbox-overflow",
            NtStop::ForcedCommit => "forced-commit",
            NtStop::RunCutShort => "cut-short",
            NtStop::Watchdog => "watchdog",
        }
    }
}

/// One completed NT-path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtPathRecord {
    /// The branch the path was spawned from.
    pub spawn_pc: u32,
    /// Instructions the path executed before stopping.
    pub executed: u32,
    /// Why it stopped.
    pub stop: NtStop,
}

/// Aggregate statistics of a PathExpander run.
#[derive(Debug, Clone, Default)]
pub struct PxStats {
    /// NT-paths spawned.
    pub spawns: u64,
    /// Spawns skipped because the edge's exercise counter was at or above the
    /// threshold.
    pub skipped_hot: u64,
    /// Spawns skipped because the branch lies in tagged checker code.
    pub skipped_checker: u64,
    /// Spawns skipped because `MaxNumNTPaths` NT-paths were outstanding
    /// (CMP option).
    pub skipped_outstanding: u64,
    /// Spawns vetoed by the static NT-safety filter
    /// (`PxConfig::static_nt_filter`): the edge is guaranteed to hit an
    /// unsafe event within the threshold.
    pub skipped_static: u64,
    /// Instructions retired on the taken path.
    pub taken_instructions: u64,
    /// Instructions retired on NT-paths.
    pub nt_instructions: u64,
    /// Dynamic conditional branches, taken path and NT-paths combined (the
    /// software implementation instruments every one of these).
    pub dyn_branches: u64,
    /// Memory writes performed inside NT-paths (the software implementation
    /// logs the old value of each for its restore-log).
    pub nt_writes: u64,
    /// Exercise-counter reset events.
    pub counter_resets: u64,
    /// Spawns admitted by the random factor despite a hot exercise counter
    /// (the §7.1(2) extension).
    pub random_spawns: u64,
    /// System calls executed inside NT-paths under the §3.2 OS-sandbox
    /// extension (they would otherwise have been unsafe-event stops).
    pub nt_syscalls_sandboxed: u64,
    /// Faults delivered by an injector during this run (zero without one).
    pub faults_injected: u64,
    /// Every completed NT-path, in completion order.
    pub paths: Vec<NtPathRecord>,
}

impl PxStats {
    /// Number of completed NT-paths that stopped for the given class.
    #[must_use]
    pub fn stops_of(&self, class: &str) -> usize {
        self.paths
            .iter()
            .filter(|p| p.stop.class() == class)
            .count()
    }

    /// Fraction of NT-paths that stopped before executing `n` instructions
    /// for a reason in `classes` — the paper's Figure 3 CDF.
    #[must_use]
    pub fn stopped_before(&self, n: u32, classes: &[&str]) -> f64 {
        if self.paths.is_empty() {
            return 0.0;
        }
        let stopped = self
            .paths
            .iter()
            .filter(|p| p.executed < n && classes.contains(&p.stop.class()))
            .count();
        stopped as f64 / self.paths.len() as f64
    }
}

/// Result of a PathExpander-monitored run.
#[derive(Debug, Clone)]
pub struct PxRunResult {
    /// How the taken path ended.
    pub exit: RunExit,
    /// Cycles on the primary core — the run's wall-clock in simulated time.
    pub cycles: u64,
    /// Taken-path-only branch coverage (= what the baseline would cover).
    pub taken_coverage: Coverage,
    /// Combined taken + NT-path coverage (PathExpander's coverage).
    pub total_coverage: Coverage,
    /// Checker records from both taken and NT-paths (the monitor memory
    /// area).
    pub monitor: MonitorArea,
    /// Final I/O of the taken path.
    pub io: IoState,
    /// Final committed data memory of the taken path — what the containment
    /// checker diffs against a plain baseline run.
    pub memory: Memory,
    /// Final committed register file of the taken path.
    pub core: CoreState,
    /// Aggregate statistics.
    pub stats: PxStats,
}

impl PxRunResult {
    /// FNV-1a-64 digest of the run's *taken-path* architectural results:
    /// exact exit status, committed program output, and the taken-coverage
    /// bitmap. Cycles and NT-path bookkeeping are deliberately excluded —
    /// NT scheduling (standard vs CMP vs software, spawn vetoes) changes
    /// timing and exploration, never the committed path, so two engines
    /// that agree architecturally produce the same digest.
    #[must_use]
    pub fn taken_path_digest(&self, program: &Program) -> u64 {
        let mut h = px_util::fnv1a64(0, format!("{:?}", self.exit).as_bytes());
        h = px_util::fnv1a64(h, self.io.output());
        self.taken_coverage.digest(program, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(executed: u32, stop: NtStop) -> NtPathRecord {
        NtPathRecord {
            spawn_pc: 0,
            executed,
            stop,
        }
    }

    #[test]
    fn cdf_counts_only_selected_classes() {
        let s = PxStats {
            paths: vec![
                rec(10, NtStop::Crash(CrashKind::DivByZero)),
                rec(500, NtStop::Unsafe(SyscallCode::PutChar)),
                rec(1000, NtStop::MaxLength),
                rec(999, NtStop::MaxLength),
            ],
            ..PxStats::default()
        };
        assert_eq!(s.stopped_before(1000, &["crash"]), 0.25);
        assert_eq!(s.stopped_before(1000, &["crash", "unsafe"]), 0.5);
        assert_eq!(s.stopped_before(11, &["crash"]), 0.25);
        assert_eq!(s.stopped_before(10, &["crash"]), 0.0);
        assert_eq!(s.stops_of("max-length"), 2);
    }

    #[test]
    fn empty_stats_cdf_is_zero() {
        let s = PxStats::default();
        assert_eq!(s.stopped_before(1000, &["crash"]), 0.0);
    }
}
