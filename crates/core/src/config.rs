//! PathExpander configuration — the paper's §6.3 parameters with a builder.

/// Which PathExpander implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Standard configuration (paper Figure 4(a)): one core, checkpoint at
    /// the branch, run the NT-path inline, roll back, resume the taken path.
    Standard,
    /// CMP optimization (paper Figure 4(b)): NT-paths execute on idle cores
    /// concurrently with the taken path.
    Cmp,
}

/// PathExpander's tunable parameters. `PxConfig::default()` reproduces the
/// paper's defaults for large applications (§6.3); use
/// [`PxConfig::siemens_defaults`] for the small Siemens benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PxConfig {
    /// Standard configuration or CMP optimization.
    pub mode: Mode,
    /// Maximum instructions an NT-path may execute before termination
    /// (`MaxNTPathLength`: 1000 for large applications, 100 for Siemens).
    pub max_nt_path_len: u32,
    /// Spawn an NT-path only when the non-taken edge's exercise counter is
    /// below this (`NTPathCounterThreshold`, default 5).
    pub counter_threshold: u8,
    /// Reset all exercise counters every this many taken-path instructions
    /// (`CounterResetInterval`).
    pub counter_reset_interval: u64,
    /// Maximum outstanding NT-paths in the CMP option (`MaxNumNTPaths`,
    /// default 32). Ignored by the standard configuration, which runs one
    /// NT-path at a time by construction.
    pub max_outstanding: u32,
    /// Execute the compiler's predicated variable-fixing instructions at
    /// NT-path entry (paper §4.4). Disabled for the "before fixing" columns
    /// of Table 5 and for the Figure 3 feasibility measurements.
    pub apply_fixes: bool,
    /// Ablation (paper §4.2(3)): also force non-taken edges at branches
    /// encountered *inside* an NT-path. The paper measured +2% coverage but a
    /// 5%→16% early-crash ratio on gzip and rejected the idea.
    pub explore_nt_from_nt: bool,
    /// Extension (paper §3.2 future work): OS support for sandboxing unsafe
    /// events. When enabled, NT-paths execute system calls against a
    /// disposable I/O snapshot taken at spawn instead of stopping — the
    /// paper projected "more than 90% of NT-Paths may potentially execute up
    /// to 1000 instructions" with this support.
    pub os_sandbox_unsafe: bool,
    /// Extension (paper §7.1(2) remedy): a random factor in NT-path
    /// selection. `Some(n)` spawns from a hot edge (counter at or above the
    /// threshold) anyway roughly one time in `n`, deterministically seeded —
    /// this is what exposes hot-entry escapes like bc's second bug.
    pub random_factor: Option<u32>,
    /// Extension (static-analysis assist): veto NT-path spawns whose edge
    /// is *guaranteed* by px-analyze's NT-safety classification to hit an
    /// unsafe event within fewer than this many instructions. `Some(k)`
    /// consults the precomputed per-edge must-reach distances — a doomed
    /// spawn buys no coverage the taken path cannot, so skipping it saves
    /// the spawn/squash cycles outright. `None` (the default) preserves the
    /// paper's purely dynamic selection bit-for-bit.
    pub static_nt_filter: Option<u32>,
    /// Safety valve: stop the whole run after this many retired instructions
    /// (taken + NT).
    pub max_instructions: u64,
    /// Watchdog: squash any single NT-path spawn cascade after this many
    /// retired instructions regardless of `max_nt_path_len`. A
    /// belt-and-braces bound — with fault injection, redirect faults can
    /// turn a short path into a runaway loop; the watchdog guarantees the
    /// taken path always regains the core.
    pub nt_watchdog: u64,
}

impl Default for PxConfig {
    fn default() -> PxConfig {
        PxConfig {
            mode: Mode::Standard,
            max_nt_path_len: 1000,
            counter_threshold: 5,
            counter_reset_interval: 1_000_000,
            max_outstanding: 32,
            apply_fixes: true,
            explore_nt_from_nt: false,
            os_sandbox_unsafe: false,
            random_factor: None,
            static_nt_filter: None,
            max_instructions: 500_000_000,
            nt_watchdog: 1_000_000,
        }
    }
}

impl PxConfig {
    /// The paper's defaults for the small Siemens benchmarks
    /// (`MaxNTPathLength` = 100, §6.3).
    #[must_use]
    pub fn siemens_defaults() -> PxConfig {
        PxConfig {
            max_nt_path_len: 100,
            ..PxConfig::default()
        }
    }

    /// Switches to the CMP optimization.
    #[must_use]
    pub fn cmp(mut self) -> PxConfig {
        self.mode = Mode::Cmp;
        self
    }

    /// Sets `MaxNTPathLength`.
    #[must_use]
    pub fn with_max_nt_path_len(mut self, len: u32) -> PxConfig {
        self.max_nt_path_len = len;
        self
    }

    /// Sets `NTPathCounterThreshold`.
    #[must_use]
    pub fn with_counter_threshold(mut self, t: u8) -> PxConfig {
        self.counter_threshold = t;
        self
    }

    /// Sets `CounterResetInterval`.
    #[must_use]
    pub fn with_counter_reset_interval(mut self, interval: u64) -> PxConfig {
        self.counter_reset_interval = interval;
        self
    }

    /// Sets `MaxNumNTPaths` (CMP option).
    #[must_use]
    pub fn with_max_outstanding(mut self, n: u32) -> PxConfig {
        self.max_outstanding = n.max(1);
        self
    }

    /// Enables or disables the §4.4 variable fixing.
    #[must_use]
    pub fn with_fixes(mut self, apply: bool) -> PxConfig {
        self.apply_fixes = apply;
        self
    }

    /// Enables the §4.2(3) explore-from-NT ablation.
    #[must_use]
    pub fn with_explore_nt_from_nt(mut self, enable: bool) -> PxConfig {
        self.explore_nt_from_nt = enable;
        self
    }

    /// Enables the §3.2 OS-sandbox extension for unsafe events.
    #[must_use]
    pub fn with_os_sandbox(mut self, enable: bool) -> PxConfig {
        self.os_sandbox_unsafe = enable;
        self
    }

    /// Enables the §7.1(2) random spawn factor (roughly 1-in-`n` spawns from
    /// hot edges).
    #[must_use]
    pub fn with_random_factor(mut self, one_in: Option<u32>) -> PxConfig {
        self.random_factor = one_in.filter(|&n| n > 0);
        self
    }

    /// Sets the static NT-spawn veto threshold (see
    /// [`PxConfig::static_nt_filter`]). `Some(0)` never vetoes anything and
    /// is normalised to `None`.
    #[must_use]
    pub fn with_static_nt_filter(mut self, threshold: Option<u32>) -> PxConfig {
        self.static_nt_filter = threshold.filter(|&k| k > 0);
        self
    }

    /// Sets the total instruction budget.
    #[must_use]
    pub fn with_max_instructions(mut self, n: u64) -> PxConfig {
        self.max_instructions = n;
        self
    }

    /// Sets the per-cascade NT watchdog (clamped to at least 1).
    #[must_use]
    pub fn with_nt_watchdog(mut self, n: u64) -> PxConfig {
        self.nt_watchdog = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_6_3() {
        let c = PxConfig::default();
        assert_eq!(c.max_nt_path_len, 1000);
        assert_eq!(c.counter_threshold, 5);
        assert_eq!(c.max_outstanding, 32);
        assert!(c.apply_fixes);
        assert!(!c.explore_nt_from_nt);
        assert_eq!(c.static_nt_filter, None, "paper mode: no static veto");
        assert_eq!(PxConfig::siemens_defaults().max_nt_path_len, 100);
    }

    #[test]
    fn builder_chains() {
        let c = PxConfig::default()
            .cmp()
            .with_max_nt_path_len(10)
            .with_counter_threshold(1)
            .with_max_outstanding(0)
            .with_fixes(false)
            .with_explore_nt_from_nt(true)
            .with_counter_reset_interval(5)
            .with_static_nt_filter(Some(8))
            .with_max_instructions(99);
        assert_eq!(c.mode, Mode::Cmp);
        assert_eq!(c.max_nt_path_len, 10);
        assert_eq!(c.counter_threshold, 1);
        assert_eq!(c.max_outstanding, 1, "clamped to at least one");
        assert!(!c.apply_fixes);
        assert!(c.explore_nt_from_nt);
        assert_eq!(c.counter_reset_interval, 5);
        assert_eq!(c.static_nt_filter, Some(8));
        assert_eq!(
            PxConfig::default()
                .with_static_nt_filter(Some(0))
                .static_nt_filter,
            None,
            "zero threshold normalises to off"
        );
        assert_eq!(c.max_instructions, 99);
    }
}
