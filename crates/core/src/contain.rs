//! The **differential containment checker** — the proof obligation behind
//! the paper's sandbox design (§4.2(2), §4.3).
//!
//! PathExpander's whole value proposition rests on one invariant: NT-path
//! execution is *invisible* to the committed run. Whatever happens inside an
//! NT-path — crashes, wild stores, injected bit flips, runaway loops — the
//! taken path must finish with exactly the state a plain monitored run
//! (no PathExpander) would have produced, while checker records made before
//! any squash survive in the monitor area.
//!
//! [`check_containment`] diffs a PathExpander run against a baseline run of
//! the same program and input:
//!
//! * exit status, program output, committed data memory and the final
//!   register file must be identical (skipped when either run was truncated
//!   by the instruction budget — the two budgets measure different work);
//! * the PathExpander run's *taken-path* monitor records must reproduce the
//!   baseline's records (NT records are extra signal, never replacement);
//! * taken-path coverage must equal baseline coverage — squashed NT-paths
//!   must never leak edges into the taken-path count — and total coverage
//!   must be a superset of it.

use px_isa::Program;
use px_mach::{
    run_baseline, FaultHook, IoState, MachConfig, MonitorRecord, RecordKind, RunExit, RunResult,
};

use crate::config::{Mode, PxConfig};
use crate::stats::PxRunResult;

/// One way a PathExpander run diverged from its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The runs ended differently.
    ExitDiffers { base: RunExit, px: RunExit },
    /// Program output differs (NT-path I/O leaked, or taken output lost).
    OutputDiffers { base_len: usize, px_len: usize },
    /// A committed memory byte differs.
    MemoryDiffers { addr: u32, base: u8, px: u8 },
    /// The committed memory images have different sizes.
    MemorySizeDiffers { base: u32, px: u32 },
    /// The final architectural register file differs.
    RegistersDiffer,
    /// A baseline taken-path monitor record is missing or altered in the
    /// PathExpander run (index into the baseline's record list).
    MonitorRecordLost { index: usize },
    /// Taken-path coverage differs from the baseline's coverage: a squashed
    /// NT-path leaked (or dropped) a taken edge.
    TakenCoverageDiffers,
    /// Total coverage is not a superset of taken coverage.
    CoverageNotSuperset,
}

impl Violation {
    /// Short class name for histograms.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            Violation::ExitDiffers { .. } => "exit",
            Violation::OutputDiffers { .. } => "output",
            Violation::MemoryDiffers { .. } => "memory",
            Violation::MemorySizeDiffers { .. } => "memory-size",
            Violation::RegistersDiffer => "registers",
            Violation::MonitorRecordLost { .. } => "monitor",
            Violation::TakenCoverageDiffers => "taken-coverage",
            Violation::CoverageNotSuperset => "coverage-superset",
        }
    }
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::ExitDiffers { base, px } => {
                write!(f, "exit differs: baseline {base:?}, pathexpander {px:?}")
            }
            Violation::OutputDiffers { base_len, px_len } => write!(
                f,
                "program output differs: baseline {base_len} bytes, pathexpander {px_len} bytes"
            ),
            Violation::MemoryDiffers { addr, base, px } => write!(
                f,
                "committed memory differs at {addr:#x}: baseline {base:#04x}, pathexpander {px:#04x}"
            ),
            Violation::MemorySizeDiffers { base, px } => {
                write!(f, "memory size differs: baseline {base}, pathexpander {px}")
            }
            Violation::RegistersDiffer => write!(f, "final register file differs"),
            Violation::MonitorRecordLost { index } => {
                write!(f, "baseline monitor record #{index} lost or altered")
            }
            Violation::TakenCoverageDiffers => {
                write!(f, "taken-path coverage differs from baseline coverage")
            }
            Violation::CoverageNotSuperset => {
                write!(f, "total coverage is not a superset of taken coverage")
            }
        }
    }
}

/// Outcome of one containment comparison.
#[derive(Debug, Clone, Default)]
pub struct ContainmentReport {
    /// Everything that diverged; empty means the sandbox contained the run.
    pub violations: Vec<Violation>,
    /// Whether state comparisons were skipped because a run hit its
    /// instruction budget (the budgets count different work, so the runs
    /// legitimately stop at different architectural points).
    pub budget_truncated: bool,
}

impl ContainmentReport {
    /// Whether the sandbox contained everything.
    #[must_use]
    pub fn is_contained(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The projection of a monitor record the checker compares: timing (`cycle`)
/// legitimately differs between the runs, identity must not.
fn record_key(r: &MonitorRecord) -> (RecordKind, u32, u32) {
    (r.kind, r.site, r.pc)
}

/// Diffs a PathExpander run against the baseline run it must be
/// indistinguishable from.
#[must_use]
pub fn check_containment(
    program: &Program,
    base: &RunResult,
    px: &PxRunResult,
) -> ContainmentReport {
    let mut report = ContainmentReport::default();
    let truncated = base.exit == RunExit::BudgetExhausted || px.exit == RunExit::BudgetExhausted;
    report.budget_truncated = truncated;

    if !truncated {
        if base.exit != px.exit {
            report.violations.push(Violation::ExitDiffers {
                base: base.exit,
                px: px.exit,
            });
        }
        if base.io.output() != px.io.output() {
            report.violations.push(Violation::OutputDiffers {
                base_len: base.io.output().len(),
                px_len: px.io.output().len(),
            });
        }
        if base.memory.size() != px.memory.size() {
            report.violations.push(Violation::MemorySizeDiffers {
                base: base.memory.size(),
                px: px.memory.size(),
            });
        } else if let Some(addr) =
            (0..base.memory.size()).find(|&a| base.memory.byte(a) != px.memory.byte(a))
        {
            report.violations.push(Violation::MemoryDiffers {
                addr,
                base: base.memory.byte(addr),
                px: px.memory.byte(addr),
            });
        }
        if base.core != px.core {
            report.violations.push(Violation::RegistersDiffer);
        }
        if base.coverage != px.taken_coverage {
            report.violations.push(Violation::TakenCoverageDiffers);
        }
    }

    // Taken-path monitor records: the PathExpander run's must reproduce the
    // baseline's in order. Under truncation the PathExpander run may have
    // stopped earlier, so a *prefix* suffices; otherwise they must match
    // exactly.
    let base_taken: Vec<_> = base.monitor.records().iter().map(record_key).collect();
    let px_taken: Vec<_> = px
        .monitor
        .records()
        .iter()
        .filter(|r| !r.path.is_nt())
        .map(record_key)
        .collect();
    if truncated {
        if px_taken.len() > base_taken.len() || px_taken[..] != base_taken[..px_taken.len()] {
            let index = base_taken
                .iter()
                .zip(&px_taken)
                .position(|(a, b)| a != b)
                .unwrap_or(base_taken.len().min(px_taken.len()));
            report
                .violations
                .push(Violation::MonitorRecordLost { index });
        }
    } else if base_taken != px_taken {
        let index = base_taken
            .iter()
            .zip(&px_taken)
            .position(|(a, b)| a != b)
            .unwrap_or(base_taken.len().min(px_taken.len()));
        report
            .violations
            .push(Violation::MonitorRecordLost { index });
    }

    // Total coverage must contain everything the taken path covered.
    let superset = (0..program.code.len() as u32).all(|pc| {
        [px_mach::Edge::Taken, px_mach::Edge::NotTaken]
            .into_iter()
            .all(|e| !px.taken_coverage.covered(pc, e) || px.total_coverage.covered(pc, e))
    });
    if !superset {
        report.violations.push(Violation::CoverageNotSuperset);
    }

    report
}

/// Runs `program` under PathExpander (dispatching on `px.mode`) with an
/// optional fault injector, re-runs it as a plain baseline *without* the
/// injector, and diffs the two: the sandbox must hide even injected faults
/// from the committed state.
#[must_use]
pub fn differential_run(
    program: &Program,
    mach: &MachConfig,
    px: &PxConfig,
    io: IoState,
    fault: Option<&mut dyn FaultHook>,
) -> (PxRunResult, ContainmentReport) {
    let result = match px.mode {
        Mode::Standard => crate::standard::run_standard_with(program, mach, px, io.clone(), fault),
        Mode::Cmp => crate::cmp::run_cmp_with(program, mach, px, io.clone(), fault),
    };
    // An engine-level rejection (bad config / malformed program) has no
    // architectural state to compare; it is contained by definition as long
    // as the baseline rejects it too. `NeedsTwoCores` is a CMP-only
    // precondition the baseline does not share, so it is exempt.
    if let RunExit::EngineFault(e) = result.exit {
        let mut report = ContainmentReport::default();
        if e != px_mach::SimError::NeedsTwoCores {
            let base = run_baseline(program, mach, io, px.max_instructions);
            if !matches!(base.exit, RunExit::EngineFault(_)) {
                report.violations.push(Violation::ExitDiffers {
                    base: base.exit,
                    px: result.exit,
                });
            }
        }
        return (result, report);
    }
    let base = run_baseline(program, mach, io, px.max_instructions);
    let report = check_containment(program, &base, &result);
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;
    use px_mach::{FaultMix, FaultPlan};

    const NT_HEAVY: &str = r"
        .data
        g: .word 7
        .code
        main:
            li r1, 1
            bne r1, zero, ok
            la r5, g
            li r6, 999
            sw r6, 0(r5)
            li r3, 0
            assert r3, #9
            jmp ok
        ok:
            li r4, 40
        loop:
            subi r4, r4, 1
            bgt r4, zero, loop
            la r5, g
            lw r2, 0(r5)
            printi
            li r2, 0
            exit
        ";

    #[test]
    fn clean_run_is_contained() {
        let program = assemble(NT_HEAVY).unwrap();
        let (result, report) = differential_run(
            &program,
            &MachConfig::single_core(),
            &PxConfig::default(),
            IoState::default(),
            None,
        );
        assert!(result.exit.is_success());
        assert!(report.is_contained(), "violations: {:?}", report.violations);
        assert!(result.stats.spawns > 0, "the NT edge must actually spawn");
    }

    #[test]
    fn faulted_runs_stay_contained_in_both_engines() {
        let program = assemble(NT_HEAVY).unwrap();
        for seed in 0..10u64 {
            let mut plan = FaultPlan::new(seed, FaultMix::uniform(), 3);
            let (result, report) = differential_run(
                &program,
                &MachConfig::single_core(),
                &PxConfig::default(),
                IoState::default(),
                Some(&mut plan),
            );
            assert!(
                report.is_contained(),
                "standard seed {seed}: {:?} (injected {})",
                report.violations,
                result.stats.faults_injected
            );
            let mut plan = FaultPlan::new(seed, FaultMix::uniform(), 3);
            let (_, report) = differential_run(
                &program,
                &MachConfig::default(),
                &PxConfig::default().cmp(),
                IoState::default(),
                Some(&mut plan),
            );
            assert!(
                report.is_contained(),
                "cmp seed {seed}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn a_leak_is_detected() {
        // Sanity-check the checker itself: tamper with a contained result
        // and every comparison must fire.
        let program = assemble(NT_HEAVY).unwrap();
        let base = run_baseline(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            1_000_000,
        );
        let mut px = crate::standard::run_standard(
            &program,
            &MachConfig::single_core(),
            &PxConfig::default(),
            IoState::default(),
        );
        px.memory.set_byte(0x2000, 0xAB);
        px.io.put_char(b'!');
        px.core.regs.set(px_isa::Reg::A1, -123);
        let report = check_containment(&program, &base, &px);
        let classes: Vec<_> = report.violations.iter().map(Violation::class).collect();
        assert!(classes.contains(&"memory"), "{classes:?}");
        assert!(classes.contains(&"output"), "{classes:?}");
        assert!(classes.contains(&"registers"), "{classes:?}");
    }

    #[test]
    fn lost_monitor_record_is_detected() {
        let src = r"
            .code
            main:
                li r1, 0
                assert r1, #4
                li r2, 0
                exit
            ";
        let program = assemble(src).unwrap();
        let base = run_baseline(
            &program,
            &MachConfig::single_core(),
            IoState::default(),
            1_000,
        );
        assert_eq!(base.monitor.len(), 1);
        let mut px = crate::standard::run_standard(
            &program,
            &MachConfig::single_core(),
            &PxConfig::default(),
            IoState::default(),
        );
        // Pretend the record vanished by replacing the area with an empty one.
        px.monitor = px_mach::MonitorArea::new();
        let report = check_containment(&program, &base, &px);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MonitorRecordLost { index: 0 })));
    }
}
