//! # pathexpander — architectural support for increasing the path coverage
//! of dynamic bug detection
//!
//! A full reimplementation of **PathExpander** (Lu, Zhou, Liu, Zhou,
//! Torrellas — MICRO 2006) over the `px-mach` machine model. PathExpander
//! lets dynamic bug-detection tools observe *non-taken paths*: as the
//! monitored program runs, selected non-taken branch edges are executed in a
//! hardware sandbox, so bugs on paths the test input never reaches are still
//! exposed to the checker.
//!
//! Two engines implement the paper's two options:
//!
//! * [`run_standard`] — the standard configuration (Figure 4(a)):
//!   checkpoint, run the NT-path inline on the same core, roll back.
//! * [`run_cmp`] — the CMP optimization (Figure 4(b)): NT-paths run
//!   concurrently on idle cores with TLS-style tree data dependences and
//!   commit/squash tokens, hiding nearly all of the overhead.
//!
//! [`run`] dispatches on [`Mode`]. The [`feasibility`] module reproduces the
//! §3.2 Crash-/Unsafe-Latency analysis (Figure 3).
//!
//! ## Example
//!
//! A bug on a never-taken edge is invisible to a plain monitored run but is
//! caught by PathExpander:
//!
//! ```
//! use pathexpander::{run_standard, PxConfig};
//! use px_isa::asm::assemble;
//! use px_mach::{IoState, MachConfig};
//!
//! let program = assemble(
//!     r"
//!     .code
//!     main:
//!         li r1, 1
//!         bne r1, zero, ok   ; with this input, never falls through
//!         li r3, 0
//!         assert r3, #7      ; the hidden bug
//!         jmp ok
//!     ok:
//!         li r2, 0
//!         exit
//!     ",
//! )?;
//! // Baseline monitored run: the assertion never executes.
//! let base = px_mach::run_baseline(&program, &MachConfig::single_core(),
//!                                  IoState::default(), 10_000);
//! assert!(base.monitor.is_empty());
//! // PathExpander: the NT-path exposes it.
//! let px = run_standard(&program, &MachConfig::single_core(),
//!                       &PxConfig::default(), IoState::default());
//! assert_eq!(px.monitor.nt_records().count(), 1);
//! # Ok::<(), px_isa::asm::AsmError>(())
//! ```

pub mod cmp;
pub mod config;
pub mod contain;
pub mod feasibility;
mod inject;
pub mod standard;
pub mod stats;

pub use cmp::{run_cmp, run_cmp_with};
pub use config::{Mode, PxConfig};
pub use contain::{check_containment, differential_run, ContainmentReport, Violation};
pub use feasibility::{measure_latency, measure_latency_with, profile_from_stats, LatencyProfile};
pub use inject::FAULT_WATCH_TAG;
pub use standard::{run_standard, run_standard_with};
pub use stats::{NtPathRecord, NtStop, PxRunResult, PxStats};

use px_isa::Program;
use px_mach::{FaultHook, IoState, MachConfig};

/// Runs `program` under PathExpander, dispatching on `px.mode`.
#[must_use]
pub fn run(program: &Program, mach: &MachConfig, px: &PxConfig, io: IoState) -> PxRunResult {
    run_with(program, mach, px, io, None)
}

/// [`run`] with an optional fault injector (see [`run_standard_with`] /
/// [`run_cmp_with`]).
#[must_use]
pub fn run_with(
    program: &Program,
    mach: &MachConfig,
    px: &PxConfig,
    io: IoState,
    fault: Option<&mut dyn FaultHook>,
) -> PxRunResult {
    match px.mode {
        Mode::Standard => run_standard_with(program, mach, px, io, fault),
        Mode::Cmp => run_cmp_with(program, mach, px, io, fault),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    #[test]
    fn run_dispatches_on_mode() {
        let program = assemble(
            r"
            .code
            main:
                li r4, 10
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            ",
        )
        .unwrap();
        let std_r = run(
            &program,
            &MachConfig::single_core(),
            &PxConfig::default(),
            IoState::default(),
        );
        let cmp_r = run(
            &program,
            &MachConfig::default(),
            &PxConfig::default().cmp(),
            IoState::default(),
        );
        assert!(std_r.exit.is_success());
        assert!(cmp_r.exit.is_success());
        assert_eq!(std_r.stats.spawns, cmp_r.stats.spawns);
    }
}
