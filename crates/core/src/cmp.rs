//! The PathExpander **CMP optimization** (paper §4.3, Figure 4(b)).
//!
//! The taken path runs on the primary core; each spawned NT-path is copied
//! (register context) onto an idle core and executes concurrently, sandboxed
//! in that core's L1 under its own 8-bit path ID. When no core is idle the
//! NT-path is queued in a free thread context; spawning stops entirely at
//! `MaxNumNTPaths` outstanding paths.
//!
//! Data dependences follow the tree of Figure 6(c): an NT-path reads the
//! memory image from its spawn point — realized with a copy-on-write
//! snapshot fed by the primary core's later stores — and its own writes stay
//! in its sandbox.
//!
//! Commit/squash tokens are modeled through the cache version tags: primary
//! stores issued while any NT-path is live are tagged with a speculative
//! *segment* tag; if such a line is displaced from the primary L1 the segment
//! is forced to commit, which squashes the oldest live NT-path (its
//! squash-token is claimed early, paper §4.3), and the segment's lines are
//! lazily retagged as committed.
//!
//! The run's cost is the primary core's finish time: NT-path work overlaps
//! with it, so the overhead the paper reports (< 9.9%) is spawn costs plus
//! cache interference.

use px_isa::{Program, SyscallCode, Width};
use px_mach::{
    Btb, Checkpoint, CoreState, Coverage, Edge, FaultHook, Hierarchy, IoState, MachConfig, MemView,
    Memory, MonitorArea, MonitorRecord, PathKind, RecordKind, RunExit, Sandbox, SandboxView,
    SimError, StepEnv, StepEvent, WatchTable, COMMITTED, MAX_MEM_BYTES,
};

use crate::config::PxConfig;
use crate::inject::{apply_deferred, CountingHook};
use crate::stats::{NtPathRecord, NtStop, PxRunResult, PxStats};

/// Version tag for the primary core's speculative taken-path segment lines.
const SEGMENT_VTAG: u8 = 255;

/// A live or queued NT-path.
struct NtPath {
    id: u8,
    spawn_pc: u32,
    executed: u32,
    core: Option<usize>,
    state: CoreState,
    sandbox: Sandbox,
    /// §3.2 OS-sandbox extension: the NT-path's disposable I/O snapshot.
    scratch_io: IoState,
    /// The path's disposable view of the watch table, cloned at spawn:
    /// watch hits must fire on NT-paths exactly as on the taken path
    /// (iWatcher's whole mechanism), but registrations made inside the
    /// path must not leak into committed state.
    scratch_watches: WatchTable,
    /// Monotonic spawn order, used to pick the "oldest" for forced commits.
    seq: u64,
}

/// A [`MemView`] for the primary core that preserves overwritten bytes into
/// every live NT-path's snapshot before committing the store (the
/// copy-on-write realization of the tree data dependence).
struct PrimaryView<'a> {
    memory: &'a mut Memory,
    live: Vec<&'a mut Sandbox>,
}

impl MemView for PrimaryView<'_> {
    fn load(&mut self, addr: u32, width: Width) -> Result<i32, px_mach::CrashKind> {
        self.memory.load(addr, width)
    }

    fn store(&mut self, addr: u32, value: i32, width: Width) -> Result<(), px_mach::CrashKind> {
        self.memory.check(addr, width.bytes())?;
        for i in 0..width.bytes() {
            let a = addr + i;
            let old = self.memory.byte(a);
            for sb in &mut self.live {
                sb.preserve(a, old);
            }
        }
        self.memory.store(addr, value, width)
    }
}

/// Runs `program` under the CMP-optimized PathExpander.
///
/// A machine with fewer than 2 cores (the CMP option needs at least one idle
/// core), a bad geometry, or a malformed program surfaces as
/// [`RunExit::EngineFault`].
#[must_use]
pub fn run_cmp(program: &Program, mach: &MachConfig, px: &PxConfig, io: IoState) -> PxRunResult {
    run_cmp_with(program, mach, px, io, None)
}

/// [`run_cmp`] with an optional fault injector; the hook is consulted only
/// for NT-path steps, so every fault lands in some path's sandbox and the
/// primary core's committed state stays bit-identical to a plain baseline.
#[must_use]
pub fn run_cmp_with(
    program: &Program,
    mach: &MachConfig,
    px: &PxConfig,
    io: IoState,
    fault: Option<&mut dyn FaultHook>,
) -> PxRunResult {
    let fail = |e: SimError, io: IoState| PxRunResult {
        exit: RunExit::EngineFault(e),
        cycles: 0,
        taken_coverage: Coverage::for_program(program),
        total_coverage: Coverage::for_program(program),
        monitor: MonitorArea::new(),
        io,
        memory: Memory::new(0),
        core: CoreState::default(),
        stats: PxStats::default(),
    };
    if mach.cores < 2 {
        return fail(SimError::NeedsTwoCores, io);
    }
    if let Err(e) = mach.validate() {
        return fail(e, io);
    }
    if program.mem_size > MAX_MEM_BYTES {
        return fail(
            SimError::ProgramTooLarge {
                mem_size: program.mem_size,
            },
            io,
        );
    }
    let mut memory = Memory::new(mach.mem_size.max(program.mem_size));
    for item in &program.data {
        if let Err(e) = memory.try_load_blob(item.addr, &item.bytes) {
            return fail(e, io);
        }
    }
    let mut fault = fault.map(|inner| CountingHook { inner, fired: 0 });
    let mut primary = CoreState::at_entry(program.entry, memory.size());
    let mut caches = Hierarchy::new(mach);
    let mut btb = Btb::new(mach.btb_entries, mach.btb_assoc);
    let mut taken_cov = Coverage::for_program(program);
    let mut nt_cov = Coverage::for_program(program);
    let mut monitor = MonitorArea::new();
    let mut stats = PxStats::default();
    let mut io = io;
    // NT-paths must not mutate the real watch table; they get a disposable
    // clone at spawn. The primary's table is authoritative.
    let mut watches = WatchTable::new();

    let mut paths: Vec<NtPath> = Vec::new();
    let mut core_busy: Vec<bool> = vec![false; mach.cores]; // index 0 = primary
    core_busy[0] = true;
    let mut next_seq: u64 = 0;
    let mut next_id: u8 = 1;

    // Per-core ready times (discrete event clock).
    let mut ready: Vec<u64> = vec![0; mach.cores];
    let mut primary_done: Option<RunExit> = None;
    let mut instructions: u64 = 0;
    let mut taken_since_reset: u64 = 0;
    let mut spawn_rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ (program.code.len() as u64 + 1);
    // Static NT-spawn veto mask (see `standard.rs`; `None` = paper mode).
    let static_veto = px
        .static_nt_filter
        .map(|k| px_analyze::Analysis::of(program).veto_mask(program, k));
    let vetoed = |mask: &Option<Vec<[bool; 2]>>, pc: u32, edge: Edge| -> bool {
        mask.as_ref().is_some_and(|m| {
            m.get(pc as usize)
                .is_some_and(|e| e[usize::from(edge == Edge::NotTaken)])
        })
    };

    'event_loop: loop {
        if instructions >= px.max_instructions && primary_done.is_none() {
            primary_done = Some(RunExit::BudgetExhausted);
        }
        if primary_done.is_some() {
            // Program over: cut the surviving NT-paths short.
            for mut p in paths.drain(..) {
                finish_path(&mut p, NtStop::RunCutShort, &mut caches, &mut stats);
            }
            break 'event_loop;
        }

        // Pick the lowest-ready-time active core (primary is always active).
        let mut who: usize = 0;
        let mut best = ready[0];
        for p in &paths {
            if let Some(c) = p.core {
                if ready[c] < best {
                    best = ready[c];
                    who = c;
                }
            }
        }

        instructions += 1;
        if who == 0 {
            // ---- Primary core step ----
            if taken_since_reset >= px.counter_reset_interval {
                btb.reset_counters();
                stats.counter_resets += 1;
                taken_since_reset = 0;
            }
            let mut env = StepEnv {
                io: &mut io,
                watches: &mut watches,
                suppress_syscalls: false,
                now_cycles: ready[0],
                costs: &mach.costs,
                // The primary core is the containment reference: never
                // inject into it.
                fault: None,
            };
            let s = {
                let live: Vec<&mut Sandbox> = paths.iter_mut().map(|p| &mut p.sandbox).collect();
                let mut view = PrimaryView {
                    memory: &mut memory,
                    live,
                };
                px_mach::step(program, &mut primary, &mut view, &mut env)
            };
            ready[0] += u64::from(s.base_cost);
            stats.taken_instructions += 1;
            taken_since_reset += 1;

            if let Some(access) = s.access {
                // Primary stores made while NT-paths are live are speculative
                // segment data (they still need their sibling's squash token).
                let vtag = if access.write && !paths.is_empty() {
                    SEGMENT_VTAG
                } else {
                    COMMITTED
                };
                let a = caches.access(0, access.addr, access.write, vtag);
                ready[0] += u64::from(a.cycles);
                if a.volatile_evicted == Some(SEGMENT_VTAG) {
                    // Forced commit: squash the oldest live NT-path, commit
                    // the segment's lines.
                    if let Some(idx) = oldest_live(&paths) {
                        let mut victim = paths.swap_remove(idx);
                        finish_path(&mut victim, NtStop::ForcedCommit, &mut caches, &mut stats);
                        if let Some(c) = victim.core {
                            core_busy[c] = false;
                            start_queued(&mut paths, &mut core_busy, &mut ready, c, mach);
                        }
                    }
                    caches.commit_path(0, SEGMENT_VTAG);
                }
            }

            match s.event {
                StepEvent::Branch {
                    pc,
                    taken,
                    taken_target,
                    not_taken_target,
                    ..
                } => {
                    stats.dyn_branches += 1;
                    let edge = Edge::from_taken(taken);
                    btb.exercise(pc, edge);
                    taken_cov.record(pc, edge);
                    let nt_edge = edge.other();
                    let hot = btb.edge_count(pc, nt_edge) >= px.counter_threshold;
                    let random_admit = hot
                        && px.random_factor.is_some_and(|n| {
                            spawn_rng ^= spawn_rng << 13;
                            spawn_rng ^= spawn_rng >> 7;
                            spawn_rng ^= spawn_rng << 17;
                            spawn_rng.is_multiple_of(u64::from(n))
                        });
                    if program.in_checker_region(pc) {
                        stats.skipped_checker += 1;
                    } else if vetoed(&static_veto, pc, nt_edge) {
                        stats.skipped_static += 1;
                    } else if hot && !random_admit {
                        stats.skipped_hot += 1;
                    } else if paths.len() as u32 >= px.max_outstanding {
                        stats.skipped_outstanding += 1;
                    } else {
                        if random_admit {
                            stats.random_spawns += 1;
                        }
                        btb.exercise(pc, nt_edge);
                        nt_cov.record(pc, nt_edge);
                        stats.spawns += 1;
                        ready[0] += u64::from(mach.spawn_cycles);
                        let mut state = Checkpoint::take(&primary).state();
                        state.pc = if taken {
                            not_taken_target
                        } else {
                            taken_target
                        };
                        state.pred = px.apply_fixes;
                        let id = next_id;
                        next_id = if next_id >= SEGMENT_VTAG - 1 {
                            1
                        } else {
                            next_id + 1
                        };
                        let scratch_io = if px.os_sandbox_unsafe {
                            io.clone()
                        } else {
                            IoState::default()
                        };
                        let mut path = NtPath {
                            id,
                            spawn_pc: pc,
                            executed: 0,
                            core: None,
                            state,
                            sandbox: Sandbox::new(),
                            scratch_io,
                            scratch_watches: watches.clone(),
                            seq: next_seq,
                        };
                        next_seq += 1;
                        if let Some(c) = (1..mach.cores).find(|&c| !core_busy[c]) {
                            core_busy[c] = true;
                            path.core = Some(c);
                            // The register copy lands when the primary issued
                            // it; the idle core can start then.
                            ready[c] = ready[c].max(ready[0]);
                        }
                        paths.push(path);
                    }
                }
                StepEvent::CheckFailed { kind, site, pc } => monitor.push(MonitorRecord {
                    kind: RecordKind::Check(kind),
                    site,
                    pc,
                    cycle: ready[0],
                    path: PathKind::Taken,
                }),
                StepEvent::WatchHit {
                    tag,
                    addr,
                    is_write,
                    pc,
                } => monitor.push(MonitorRecord {
                    kind: RecordKind::Watch {
                        tag,
                        addr,
                        is_write,
                    },
                    site: tag,
                    pc,
                    cycle: ready[0],
                    path: PathKind::Taken,
                }),
                StepEvent::Exit { code } => primary_done = Some(RunExit::Exited(code)),
                StepEvent::Crash { kind, .. } => primary_done = Some(RunExit::Crashed(kind)),
                StepEvent::UnsafeEvent { .. } => {
                    primary_done = Some(RunExit::EngineFault(SimError::Invariant(
                        "primary never suppresses system calls",
                    )));
                }
                StepEvent::Syscall { .. } | StepEvent::None => {}
            }

            // When the last NT-path died earlier, the segment lines are no
            // longer speculative.
            if paths.is_empty() {
                caches.commit_path(0, SEGMENT_VTAG);
            }
        } else {
            // ---- NT-path step on core `who` ----
            let Some(idx) = paths.iter().position(|p| p.core == Some(who)) else {
                primary_done = Some(RunExit::EngineFault(SimError::Invariant(
                    "busy core must host a path",
                )));
                continue 'event_loop;
            };
            let (stop, cost) = step_nt_path(
                program,
                &mut paths[idx],
                who,
                &memory,
                &mut caches,
                &mut monitor,
                &mut btb,
                &mut nt_cov,
                &mut stats,
                px,
                mach,
                ready[who],
                fault.as_mut().map(|h| h as &mut dyn FaultHook),
                static_veto.as_deref(),
            );
            ready[who] += u64::from(cost);
            stats.nt_instructions += 1;
            if let Some(stop) = stop {
                let mut victim = paths.swap_remove(idx);
                finish_path(&mut victim, stop, &mut caches, &mut stats);
                core_busy[who] = false;
                start_queued(&mut paths, &mut core_busy, &mut ready, who, mach);
            }
        }
    }

    let exit = primary_done.unwrap_or(RunExit::EngineFault(SimError::Invariant(
        "loop exits only when done",
    )));
    if let Some(h) = &fault {
        stats.faults_injected = h.fired;
    }
    let mut total_coverage = taken_cov.clone();
    let exit = match total_coverage.merge(&nt_cov) {
        Ok(()) => exit,
        Err(e) => RunExit::EngineFault(e),
    };
    PxRunResult {
        exit,
        cycles: ready[0],
        taken_coverage: taken_cov,
        total_coverage,
        monitor,
        io,
        memory,
        core: primary,
        stats,
    }
}

fn oldest_live(paths: &[NtPath]) -> Option<usize> {
    paths
        .iter()
        .enumerate()
        .filter(|(_, p)| p.core.is_some())
        .min_by_key(|(_, p)| p.seq)
        .map(|(i, _)| i)
}

fn start_queued(
    paths: &mut [NtPath],
    core_busy: &mut [bool],
    ready: &mut [u64],
    freed_core: usize,
    mach: &MachConfig,
) {
    if let Some(p) = paths
        .iter_mut()
        .filter(|p| p.core.is_none())
        .min_by_key(|p| p.seq)
    {
        p.core = Some(freed_core);
        core_busy[freed_core] = true;
        // Register copy onto the freed core.
        ready[freed_core] += u64::from(mach.spawn_cycles);
    }
}

fn finish_path(path: &mut NtPath, stop: NtStop, caches: &mut Hierarchy, stats: &mut PxStats) {
    if let Some(c) = path.core {
        caches.squash_path(c, path.id);
    }
    // No sandbox.clear() here: the NtPath is removed from the live set right
    // after finish_path returns, so its sandbox is dropped, never reused.
    stats.paths.push(NtPathRecord {
        spawn_pc: path.spawn_pc,
        executed: path.executed,
        stop,
    });
}

#[allow(clippy::too_many_arguments)]
fn step_nt_path(
    program: &Program,
    path: &mut NtPath,
    core: usize,
    memory: &Memory,
    caches: &mut Hierarchy,
    monitor: &mut MonitorArea,
    btb: &mut Btb,
    nt_cov: &mut Coverage,
    stats: &mut PxStats,
    px: &PxConfig,
    mach: &MachConfig,
    now: u64,
    fault: Option<&mut dyn FaultHook>,
    static_veto: Option<&[[bool; 2]]>,
) -> (Option<NtStop>, u32) {
    // NT-paths run against their spawn-time clone of the watch table
    // (mutations must not leak; hits must still fire); under the OS-sandbox
    // extension their system calls run against the path's I/O snapshot
    // instead of stopping the path.
    let mut env = StepEnv {
        io: &mut path.scratch_io,
        watches: &mut path.scratch_watches,
        suppress_syscalls: !px.os_sandbox_unsafe,
        now_cycles: now,
        costs: &mach.costs,
        fault,
    };
    let s = {
        let mut view = SandboxView::new(memory, &mut path.sandbox);
        px_mach::step(program, &mut path.state, &mut view, &mut env)
    };
    let mut cost = s.base_cost;
    if let Some(action) = s.deferred {
        apply_deferred(
            action,
            caches,
            core,
            path.id,
            monitor,
            now,
            PathKind::NtPath {
                spawn_pc: path.spawn_pc,
            },
            path.state.pc,
        );
    }
    let mut overflow = false;
    if let Some(access) = s.access {
        if access.write {
            stats.nt_writes += 1;
        }
        let vtag = if access.write { path.id } else { COMMITTED };
        let a = caches.access(core, access.addr, access.write, vtag);
        cost += a.cycles;
        if a.volatile_evicted == Some(path.id) {
            overflow = true;
        }
    }
    path.executed += 1;

    let stop = match s.event {
        StepEvent::Branch {
            pc,
            taken,
            taken_target,
            not_taken_target,
            ..
        } => {
            stats.dyn_branches += 1;
            let edge = Edge::from_taken(taken);
            nt_cov.record(pc, edge);
            if px.explore_nt_from_nt {
                let other = edge.other();
                if btb.edge_count(pc, other) < px.counter_threshold
                    && !program.in_checker_region(pc)
                    && !static_veto.is_some_and(|m| {
                        m.get(pc as usize)
                            .is_some_and(|e| e[usize::from(other == Edge::NotTaken)])
                    })
                {
                    btb.exercise(pc, other);
                    nt_cov.record(pc, other);
                    path.state.pc = if taken {
                        not_taken_target
                    } else {
                        taken_target
                    };
                }
            }
            None
        }
        StepEvent::CheckFailed { kind, site, pc } => {
            monitor.push(MonitorRecord {
                kind: RecordKind::Check(kind),
                site,
                pc,
                cycle: now,
                path: PathKind::NtPath {
                    spawn_pc: path.spawn_pc,
                },
            });
            None
        }
        StepEvent::WatchHit {
            tag,
            addr,
            is_write,
            pc,
        } => {
            monitor.push(MonitorRecord {
                kind: RecordKind::Watch {
                    tag,
                    addr,
                    is_write,
                },
                site: tag,
                pc,
                cycle: now,
                path: PathKind::NtPath {
                    spawn_pc: path.spawn_pc,
                },
            });
            None
        }
        StepEvent::UnsafeEvent { code } => Some(if code == SyscallCode::Exit {
            NtStop::ProgramEnd
        } else {
            NtStop::Unsafe(code)
        }),
        StepEvent::Crash { kind, .. } => Some(NtStop::Crash(kind)),
        StepEvent::Exit { .. } => Some(NtStop::ProgramEnd),
        StepEvent::Syscall { .. } => {
            stats.nt_syscalls_sandboxed += 1;
            None
        }
        StepEvent::None => None,
    };
    let stop = stop.or({
        if overflow {
            Some(NtStop::SandboxOverflow)
        } else if u64::from(path.executed) >= px.nt_watchdog {
            Some(NtStop::Watchdog)
        } else if path.executed >= px.max_nt_path_len {
            Some(NtStop::MaxLength)
        } else {
            None
        }
    });
    if stop.is_some() {
        cost += mach.squash_cycles;
    }
    (stop, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn run(src: &str, px: &PxConfig) -> PxRunResult {
        let program = assemble(src).unwrap();
        run_cmp(&program, &MachConfig::default(), px, IoState::default())
    }

    const HIDDEN_BUG: &str = r"
        .code
        main:
            li r1, 1
            bne r1, zero, ok
            li r3, 0
            assert r3, #77
            li r6, 500
        ntspin:
            subi r6, r6, 1
            bgt r6, zero, ntspin
            jmp ok
        ok:
            li r4, 200
        loop:
            subi r4, r4, 1
            bgt r4, zero, loop
            li r2, 0
            exit
        ";

    #[test]
    fn cmp_detects_nt_bug_concurrently() {
        let r = run(HIDDEN_BUG, &PxConfig::default().cmp());
        assert_eq!(r.exit, RunExit::Exited(0));
        assert!(r.monitor.nt_records().any(|rec| rec.site == 77));
    }

    #[test]
    fn cmp_overhead_is_small_compared_to_standard() {
        let program = assemble(HIDDEN_BUG).unwrap();
        let base = px_mach::run_baseline(
            &program,
            &MachConfig::default(),
            IoState::default(),
            1_000_000,
        );
        let std_r = crate::standard::run_standard(
            &program,
            &MachConfig::single_core(),
            &PxConfig::default(),
            IoState::default(),
        );
        let cmp_r = run(HIDDEN_BUG, &PxConfig::default().cmp());
        // NT work overlaps in CMP: primary finish time must beat the
        // standard configuration's serial execution.
        assert!(cmp_r.cycles < std_r.cycles);
        // And it should be close to baseline (well under 2x here).
        assert!(cmp_r.cycles < base.cycles * 2);
    }

    #[test]
    fn cmp_sandboxes_roll_back() {
        let src = r"
            .data
            g: .word 7
            .code
            main:
                li r1, 1
                bne r1, zero, ok
                la r5, g
                li r6, 999
                sw r6, 0(r5)
                jmp ok
            ok:
                li r4, 50
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                la r5, g
                lw r2, 0(r5)
                printi
                li r2, 0
                exit
            ";
        let r = run(src, &PxConfig::default().cmp());
        assert_eq!(r.io.output_string(), "7");
    }

    #[test]
    fn nt_path_reads_spawn_time_memory_not_later_taken_path_writes() {
        // The NT-path spins a little, then reads `g`. Meanwhile the taken
        // path overwrites `g`. The NT-path must still see the spawn-time
        // value (tree data dependence) and reports it via an assert site.
        let src = r"
            .data
            g: .word 7
            .code
            main:
                li r1, 1
                bne r1, zero, ok
                ; --- NT path: delay, then check g is still 7 ---
                li r6, 30
            ntspin:
                subi r6, r6, 1
                bgt r6, zero, ntspin
                la r5, g
                lw r7, 0(r5)
                seq r8, r7, zero    ; r8 = (g == 0)?  we assert g != 0 stayed 7
                li r9, 7
                seq r8, r7, r9      ; r8 = (g == 7)
                assert r8, #55      ; fails if NT saw the taken path's write
                jmp ok
            ok:
                la r5, g
                sw zero, 0(r5)      ; taken path clobbers g immediately
                li r4, 400
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            ";
        let r = run(src, &PxConfig::default().cmp());
        assert_eq!(r.exit, RunExit::Exited(0));
        let nt_failures: Vec<_> = r.monitor.nt_records().collect();
        assert!(
            nt_failures.is_empty(),
            "NT-path must see spawn-time memory, got {nt_failures:?}"
        );
    }

    #[test]
    fn max_outstanding_limits_concurrency() {
        // A loop whose never-taken edge leads into a long spin: spawned
        // NT-paths occupy idle cores for MaxNTPathLength instructions.
        let src = r"
            .code
            main:
                li r4, 40
                li r9, -1000
            loop:
                subi r4, r4, 1
                blt r4, r9, spin    ; never taken: NT-paths go spin
                bgt r4, zero, loop
                li r2, 0
                exit
            spin:
                addi r8, r8, 1
                jmp spin
            ";
        let px = PxConfig::default()
            .cmp()
            .with_counter_threshold(15)
            .with_max_outstanding(2)
            .with_max_nt_path_len(10_000);
        let r = run(src, &px);
        assert!(r.stats.skipped_outstanding > 0, "outstanding cap must bite");
        assert!(r.stats.spawns >= 2);
    }

    #[test]
    fn forced_commit_squashes_the_oldest_path() {
        // A tiny primary L1 (2 lines) forces dirty-line displacement while
        // NT-paths are live, exercising the commit-token path of §4.3.
        let src = r"
            .code
            main:
                li r1, 1
                li r9, 0x2000
                li r10, 0x3000
                li r4, 120
            loop:
                bne r1, zero, work   ; spawn edge: NT spins below
                jmp work
            work:
                sw r4, 0(r9)         ; primary dirty lines in two sets
                sw r4, 0(r10)
                addi r9, r9, 32
                addi r10, r10, 32
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            ";
        let program = px_isa::asm::assemble(src).unwrap();
        let mach = MachConfig {
            l1: px_mach::CacheConfig {
                size_bytes: 64,
                assoc: 2,
                line_bytes: 32,
                hit_cycles: 3,
            },
            ..MachConfig::default()
        };
        let px = PxConfig::default()
            .with_max_nt_path_len(5_000)
            .with_counter_threshold(15);
        let r = run_cmp(&program, &mach, &px, IoState::default());
        assert!(r.exit.is_success());
        assert!(
            r.stats.stops_of("forced-commit") > 0,
            "dirty displacement must force commits: {:?}",
            r.stats.paths.iter().map(|p| p.stop).collect::<Vec<_>>()
        );
    }

    #[test]
    fn queued_paths_start_when_cores_free() {
        // More simultaneous spawn demand than idle cores: queued NT-paths
        // must still execute (spawns == completed paths).
        let src = r"
            .code
            main:
                li r4, 30
                li r9, -1
            loop:
                subi r4, r4, 1
                blt r4, r9, s1      ; never taken: spawn long NT
                blt r4, r9, s2      ; never taken: spawn long NT
                blt r4, r9, s3      ; never taken: spawn long NT
                bgt r4, zero, loop
                li r2, 0
                exit
            s1: jmp s1
            s2: jmp s2
            s3: jmp s3
            ";
        let program = px_isa::asm::assemble(src).unwrap();
        let px = PxConfig::default()
            .with_max_nt_path_len(400)
            .with_counter_threshold(3)
            .with_max_outstanding(8);
        let r = run_cmp(&program, &MachConfig::default(), &px, IoState::default());
        assert!(r.exit.is_success());
        assert_eq!(
            r.stats.paths.len() as u64,
            r.stats.spawns,
            "every spawned path completes or is cut short"
        );
        assert!(r.stats.spawns >= 6, "all three edges spawn repeatedly");
    }

    #[test]
    fn os_sandbox_works_in_cmp_mode() {
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
                li r2, 88
                putc
                li r3, 0
                assert r3, #12
                jmp ok
            ok:
                li r4, 300
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            ";
        let program = px_isa::asm::assemble(src).unwrap();
        let plain = run_cmp(
            &program,
            &MachConfig::default(),
            &PxConfig::default().cmp(),
            IoState::default(),
        );
        assert_eq!(plain.monitor.len(), 0);
        let os = run_cmp(
            &program,
            &MachConfig::default(),
            &PxConfig::default().cmp().with_os_sandbox(true),
            IoState::default(),
        );
        assert!(
            !os.monitor.is_empty(),
            "the bug past the syscall is reached"
        );
        assert!(os.io.output().is_empty(), "sandboxed putc must not leak");
        assert!(os.stats.nt_syscalls_sandboxed >= 1);
    }

    #[test]
    fn one_core_machine_is_an_engine_fault_not_a_panic() {
        let program = assemble(HIDDEN_BUG).unwrap();
        let r = run_cmp(
            &program,
            &MachConfig::single_core(),
            &PxConfig::default().cmp(),
            IoState::default(),
        );
        assert_eq!(r.exit, RunExit::EngineFault(SimError::NeedsTwoCores));
    }

    #[test]
    fn cmp_watchdog_cuts_runaway_paths() {
        let src = r"
            .code
            main:
                li r1, 1
                bne r1, zero, ok
            spin:
                jmp spin
            ok:
                li r4, 500
            loop:
                subi r4, r4, 1
                bgt r4, zero, loop
                li r2, 0
                exit
            ";
        let px = PxConfig::default()
            .cmp()
            .with_max_nt_path_len(1_000_000)
            .with_nt_watchdog(40);
        let r = run(src, &px);
        assert_eq!(r.exit, RunExit::Exited(0));
        assert!(r.stats.stops_of("watchdog") >= 1);
    }

    #[test]
    fn cmp_injected_faults_never_panic_or_leak() {
        use px_mach::{FaultMix, FaultPlan};
        let program = assemble(HIDDEN_BUG).unwrap();
        let clean = run(HIDDEN_BUG, &PxConfig::default().cmp());
        for seed in 0..8u64 {
            let mut plan = FaultPlan::new(seed, FaultMix::uniform(), 2);
            let r = run_cmp_with(
                &program,
                &MachConfig::default(),
                &PxConfig::default().cmp(),
                IoState::default(),
                Some(&mut plan),
            );
            assert_eq!(r.exit, clean.exit, "seed {seed}");
            assert_eq!(r.io.output(), clean.io.output(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(HIDDEN_BUG, &PxConfig::default().cmp());
        let b = run(HIDDEN_BUG, &PxConfig::default().cmp());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.spawns, b.stats.spawns);
        assert_eq!(a.monitor.len(), b.monitor.len());
    }
}
