//! Shared fault-injection plumbing for the PathExpander engines.
//!
//! Both engines accept an optional [`FaultHook`] and consult it only while an
//! NT-path is stepping — faults land *inside* the sandbox, so the containment
//! checker ([`crate::contain`]) can compare the committed state against a
//! plain, un-faulted baseline run. Core-level faults are applied by
//! [`px_mach::step`] itself; cache-level faults come back via
//! [`Step::deferred`](px_mach::Step) and are applied here.

use px_mach::{
    FaultAction, FaultHook, Hierarchy, MonitorArea, MonitorRecord, PathKind, RecordKind,
};

/// Watch tag used for synthetic monitor-pressure records, far outside the
/// range any real watchpoint uses, so tests and the containment checker can
/// tell injected records from organic ones.
pub const FAULT_WATCH_TAG: u32 = 0xFA01_7FA0;

/// Wraps a caller-provided hook and counts how many faults it delivered, so
/// the engines can report `PxStats::faults_injected` without the hook trait
/// having to expose statistics.
pub(crate) struct CountingHook<'a> {
    pub inner: &'a mut dyn FaultHook,
    pub fired: u64,
}

impl FaultHook for CountingHook<'_> {
    fn before_step(&mut self, pc: u32) -> Option<FaultAction> {
        let action = self.inner.before_step(pc);
        if action.is_some() {
            self.fired += 1;
        }
        action
    }
}

/// Applies a deferred (cache- or monitor-level) fault on behalf of an engine.
///
/// `core` is the core whose L1 hosts the NT-path's sandbox and `vtag` the
/// path's volatile tag, so injected lines are swept up by the path's own
/// gang-invalidation — the injection can degrade the path (early overflow,
/// timing noise, monitor pressure) but never the committed state.
#[allow(clippy::too_many_arguments)] // mirrors the hardware interface: one port per signal
pub(crate) fn apply_deferred(
    action: FaultAction,
    caches: &mut Hierarchy,
    core: usize,
    vtag: u8,
    monitor: &mut MonitorArea,
    cycle: u64,
    path: PathKind,
    pc: u32,
) {
    match action {
        FaultAction::FlipL1Vtag { entropy } => {
            caches.inject_vtag_flip(core, entropy, vtag);
        }
        FaultAction::ExhaustVolatileSet { entropy } => {
            caches.inject_volatile_fill(core, entropy, vtag);
        }
        FaultAction::MonitorPressure { records } => {
            for i in 0..records {
                monitor.push(MonitorRecord {
                    kind: RecordKind::Watch {
                        tag: FAULT_WATCH_TAG,
                        addr: u32::from(i),
                        is_write: true,
                    },
                    site: FAULT_WATCH_TAG,
                    pc,
                    cycle,
                    path,
                });
            }
        }
        // Core-level faults were already applied inside `step`.
        FaultAction::FlipMemBit { .. }
        | FaultAction::ForceCrash { .. }
        | FaultAction::RedirectBack { .. }
        | FaultAction::FailInput => {}
    }
}
