//! Benches of the machine substrate: interpreter throughput,
//! cache-hierarchy accesses and BTB updates — the structures on the
//! simulator's critical path.
//!
//! Self-timed on the in-tree `px_util::bench` harness (warmup +
//! median-of-N, JSON-lines output).

use px_detect::Tool;
use px_mach::{run_baseline, Btb, Edge, Hierarchy, IoState, MachConfig, COMMITTED};
use px_util::bench::{Bench, Throughput};
use px_util::px_bench_main;

fn interpreter_throughput(c: &mut Bench) {
    let w = px_workloads::by_name("164.gzip").expect("gzip");
    let compiled = w.compile_for(Tool::Assertions).expect("compiles");
    let probe = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        IoState::new(w.general_input(1), 1),
        50_000_000,
    );
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10);
    group.throughput(Throughput::Elements(probe.instructions));
    group.bench_function("baseline_gzip", |b| {
        b.iter(|| {
            run_baseline(
                &compiled.program,
                &MachConfig::single_core(),
                IoState::new(w.general_input(1), 1),
                50_000_000,
            )
        });
    });
    group.finish();
}

fn cache_hierarchy(c: &mut Bench) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("hierarchy_10k_accesses", |b| {
        let cfg = MachConfig::default();
        b.iter(|| {
            let mut h = Hierarchy::new(&cfg);
            let mut sum = 0u64;
            for i in 0..10_000u32 {
                let addr = 0x1000 + (i.wrapping_mul(2654435761) % (1 << 18));
                let a = h.access(0, addr, i % 4 == 0, COMMITTED);
                sum += u64::from(a.cycles);
            }
            sum
        });
    });
    group.finish();
}

fn btb_updates(c: &mut Bench) {
    let mut group = c.benchmark_group("btb");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("exercise_10k", |b| {
        b.iter(|| {
            let mut btb = Btb::new(2048, 2);
            for i in 0..10_000u32 {
                btb.exercise(i % 700, Edge::from_taken(i % 3 == 0));
            }
            btb.edge_count(13, Edge::Taken)
        });
    });
    group.finish();
}

px_bench_main!(interpreter_throughput, cache_hierarchy, btb_updates);
