//! Benches of the PXC toolchain: lexing/parsing/compiling the largest
//! workload source, assembling, and binary encode/decode.
//!
//! Self-timed on the in-tree `px_util::bench` harness.

use px_isa::{decode_program, encode_program};
use px_lang::{compile, parse, CompileOptions};
use px_util::bench::{Bench, Throughput};
use px_util::px_bench_main;

fn biggest_source() -> String {
    // print_tokens2 is the largest PXC source in the suite.
    px_workloads::by_name("print_tokens2").expect("pt2").source
}

fn toolchain(c: &mut Bench) {
    let src = &biggest_source();
    let mut group = c.benchmark_group("compiler");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("parse_pt2", |b| b.iter(|| parse(src).expect("parses")));
    group.bench_function("compile_pt2_ccured", |b| {
        b.iter(|| compile(src, &CompileOptions::ccured()).expect("compiles"))
    });
    group.finish();
}

fn encoding(c: &mut Bench) {
    let compiled = compile(&biggest_source(), &CompileOptions::ccured()).expect("compiles");
    let code = compiled.program.code;
    let bytes = encode_program(&code);
    let mut group = c.benchmark_group("encoding");
    group.throughput(Throughput::Elements(code.len() as u64));
    group.bench_function("encode_program", |b| b.iter(|| encode_program(&code)));
    group.bench_function("decode_program", |b| {
        b.iter(|| decode_program(&bytes).expect("round-trips"))
    });
    group.finish();
}

fn assembler(c: &mut Bench) {
    let src = r"
    .data
    buf: .space 256
    .code
    main:
        li r1, 0
        li r2, 100
    loop:
        addi r1, r1, 3
        subi r2, r2, 1
        bgt r2, zero, loop
        mv r2, r1
        printi
        exit
    ";
    c.bench_function("assemble_small", |b| {
        b.iter(|| px_isa::asm::assemble(src).expect("assembles"))
    });
}

px_bench_main!(toolchain, encoding, assembler);
