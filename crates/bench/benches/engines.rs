//! Benches of the PathExpander engines themselves (on the in-tree
//! `px_util::bench` harness): the cost of a
//! monitored run under the standard configuration, the CMP option, the
//! feasibility harness and the software implementation — the code every
//! experiment in the harness spends its time in.

use pathexpander::{measure_latency, run_cmp, run_standard, PxConfig};
use px_detect::Tool;
use px_mach::{IoState, MachConfig};
use px_util::bench::Bench;
use px_util::px_bench_main;

fn io(w: &px_workloads::Workload) -> IoState {
    IoState::new(w.general_input(1), 1)
}

fn engines(c: &mut Bench) {
    let w = px_workloads::by_name("print_tokens2").expect("pt2");
    let compiled = w.compile_for(Tool::Ccured).expect("compiles");
    let px = w.px_config();
    let mut group = c.benchmark_group("engines");
    group.sample_size(20);
    group.bench_function("standard_pt2", |b| {
        b.iter(|| run_standard(&compiled.program, &MachConfig::single_core(), &px, io(&w)));
    });
    let cmp_cfg = px.clone().cmp();
    group.bench_function("cmp_pt2", |b| {
        b.iter(|| run_cmp(&compiled.program, &MachConfig::default(), &cmp_cfg, io(&w)));
    });
    group.bench_function("feasibility_pt2", |b| {
        b.iter(|| {
            measure_latency(
                &compiled.program,
                &MachConfig::single_core(),
                io(&w),
                1000,
                50_000_000,
            )
        });
    });
    group.bench_function("software_pt2", |b| {
        let soft = px_soft::SoftConfig::default();
        b.iter(|| px_soft::run_soft(&compiled.program, &px, &soft, io(&w)));
    });
    group.finish();
}

fn spawn_heavy(c: &mut Bench) {
    // A spawn-heavy configuration stresses checkpoint/rollback.
    let w = px_workloads::by_name("099.go").expect("go");
    let compiled = w.compile_for(Tool::Ccured).expect("compiles");
    let px = PxConfig::default().with_counter_threshold(15);
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.bench_function("standard_go_threshold15", |b| {
        b.iter(|| run_standard(&compiled.program, &MachConfig::single_core(), &px, io(&w)));
    });
    group.finish();
}

px_bench_main!(engines, spawn_heavy);
