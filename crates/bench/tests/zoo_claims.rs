//! Tier-1 gate on the E15 acceptance criteria, at the quick (CI) roster
//! scale: ground truth must hold exactly, NT-only false positives must be
//! zero, and the whole report must be byte-deterministic.

use px_bench::experiments::zoo::zoo_report;
use px_util::ToJson;

#[test]
fn quick_roster_meets_the_acceptance_criteria() {
    let report = zoo_report(true);
    // Quick scale: two structure seeds per shape, full bug mixes.
    assert_eq!(report.families, 8, "quick roster size");
    assert_eq!(report.shapes().len(), 4, "every shape represented");
    assert_eq!(report.classes().len(), 6, "every bug class represented");

    let (expected, detected) = report.detection_totals();
    assert!(expected > 0);
    assert_eq!(
        detected, expected,
        "every expected-detected bug must be found on at least one engine"
    );

    for row in &report.rows {
        assert_eq!(
            row.false_positives, 0,
            "{}/{}: NT-only false positives",
            row.spec, row.tool
        );
        // Bugs marked expect-escape must actually escape: the ground truth
        // is falsifiable in both directions.
        for bug in &row.bugs {
            if !bug.expected {
                assert!(
                    !bug.detected && !bug.detected_cmp,
                    "{}/{}: {} was expected to escape but was detected",
                    row.spec,
                    row.tool,
                    bug.id
                );
            }
        }
        // PathExpander must strictly beat the baseline wherever it detects
        // anything (the baseline never sees the rare opcodes).
        assert_eq!(row.baseline_tp, 0, "{}/{}", row.spec, row.tool);
        assert!(
            row.total_covered >= row.taken_covered,
            "{}/{}: NT coverage can only add edges",
            row.spec,
            row.tool
        );
    }
}

#[test]
fn zoo_report_is_byte_deterministic() {
    let a = zoo_report(true).to_json().dump();
    let b = zoo_report(true).to_json().dump();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two same-process runs must serialize identically");
}
