//! Property tests on the fault-injection campaign: for any seed and mix,
//! every engine survives injection without a panic, the sandbox contains
//! every PathExpander case, and campaigns replay byte-identically.
//!
//! Runs on the in-tree `px_util` property harness (`px_prop!`).

use px_bench::experiments::fault::{run_campaign, run_case, ENGINES};
use px_isa::asm::assemble;
use px_mach::{FaultKind, FaultMix, FaultPlan, IoState, MachConfig, RunExit, FAULT_KINDS};
use px_util::prop::{vec_of, Strategy};
use px_util::{px_prop, ToJson};

fn arb_kind() -> impl Strategy<Value = usize> + Clone + 'static {
    0usize..FAULT_KINDS.len()
}

px_prop! {
    cases = 12;
    fn any_seed_any_mix_is_contained(
        seed in 0u64..1_000_000,
        kind in arb_kind(),
    ) {
        // A focused mix stresses one fault kind at a time; every case of a
        // small campaign must stay contained and panic-free.
        let mix = FaultMix::only(FAULT_KINDS[kind]);
        let summary = run_campaign(seed, 8, &mix);
        assert!(
            summary.all_contained(),
            "seed {seed} kind {:?}: {:?}",
            FAULT_KINDS[kind],
            summary.violating
        );
    }
}

px_prop! {
    cases = 8;
    fn campaigns_replay_byte_identically(seed in 0u64..u64::MAX) {
        let mix = FaultMix::uniform();
        let a = run_campaign(seed, 6, &mix).to_json().dump();
        let b = run_campaign(seed, 6, &mix).to_json().dump();
        assert_eq!(a, b, "campaign for seed {seed} is not replayable");
    }
}

px_prop! {
    cases = 16;
    fn every_case_is_individually_replayable(
        seed in 0u64..u64::MAX,
        id in 0u64..64,
    ) {
        let mix = FaultMix::uniform();
        let a = run_case(seed, id, &mix);
        let b = run_case(seed, id, &mix);
        assert_eq!(a.fault_seed, b.fault_seed);
        assert_eq!(a.exit, b.exit);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.engine, ENGINES[(id % 4) as usize]);
    }
}

px_prop! {
    cases = 24;
    fn garbage_programs_never_panic_any_engine(
        bytes in vec_of(0u32..256, 8..200),
        seed in 0u64..u64::MAX,
    ) {
        // Decode random byte soup into whatever instructions fall out
        // (wild branch targets, loads at unmapped addresses, stray
        // predicated ops) and run it through the baseline interpreter under
        // fault injection: the only acceptable outcomes are a clean exit,
        // an architectural crash, a budget stop, or a typed engine fault —
        // never a panic.
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let mut code = Vec::new();
        for chunk in raw.chunks_exact(px_isa::ENCODED_LEN) {
            let arr: [u8; px_isa::ENCODED_LEN] = chunk.try_into().unwrap();
            if let Ok(insn) = px_isa::decode(&arr) {
                code.push(insn);
            }
        }
        let mut program = assemble(".code\nmain: nop\nexit\n").unwrap();
        program.code.splice(0..0, code);
        let mach = MachConfig::single_core();
        let mut plan = FaultPlan::uniform(seed, 2);
        let io = IoState::new(Vec::new(), seed);
        let r = px_mach::run_baseline_with(&program, &mach, io, 5_000, Some(&mut plan));
        match r.exit {
            RunExit::Exited(_)
            | RunExit::Crashed(_)
            | RunExit::BudgetExhausted
            | RunExit::EngineFault(_) => {}
        }
    }
}

px_prop! {
    cases = 6;
    fn crash_only_mix_still_commits_clean_state(seed in 0u64..u64::MAX) {
        // Forced crashes inside NT-paths are the harshest containment test:
        // the committed run must still match the fault-free baseline.
        let mix = FaultMix::only(FaultKind::Crash);
        let summary = run_campaign(seed, 8, &mix);
        assert!(summary.all_contained(), "{:?}", summary.violating);
    }
}
