//! Golden regression test for the fault-injection campaign: the canonical
//! `fault_campaign --seed 1 --cases 256 --json` output is pinned
//! byte-for-byte. The campaign folds every layer of the simulator — engines,
//! caches, sandboxes, the fault planner and the parallel sweep driver — so
//! this one string catches any accidental behavioural drift from a
//! performance change (the paged sandbox, the flattened cache, the pooled
//! `par_map` all landed under this gate).
//!
//! If this test fails after an *intended* architectural change, regenerate
//! the golden string with:
//!
//! ```text
//! cargo run --release -q -p px-bench --bin fault_campaign -- \
//!     --seed 1 --cases 256 --json
//! ```

use px_bench::experiments::fault::run_campaign;
use px_mach::FaultMix;
use px_util::ToJson;

const GOLDEN_SEED1_CASES256: &str = r#"{"seed":1,"cases":256,"mix":"bitflip=1,crash=1,runaway=1,vtag=1,overflow=1,monitor=1,io=1","faults_injected":2992,"contained":256,"exits":[{"class":"crashed","n":56},{"class":"exited","n":200}],"violating":[]}"#;

#[test]
fn campaign_seed1_cases256_is_byte_identical_to_golden() {
    let summary = run_campaign(1, 256, &FaultMix::uniform());
    assert_eq!(
        summary.to_json().dump(),
        GOLDEN_SEED1_CASES256,
        "fault campaign output drifted from the pinned golden run"
    );
}

#[test]
fn campaign_is_deterministic_across_repeats() {
    let a = run_campaign(7, 32, &FaultMix::uniform()).to_json().dump();
    let b = run_campaign(7, 32, &FaultMix::uniform()).to_json().dump();
    assert_eq!(a, b);
}
