//! Determinism regression: the evaluation harness is a pure function of
//! the px-util seed. Two runs of the `fig_coverage_cumulative` logic with
//! the same seed must produce byte-identical JSON rows, even though the
//! per-application work is farmed out to scoped threads whose scheduling
//! varies run to run.

use px_bench::experiments::coverage::coverage_cumulative;
use px_util::json::to_json_lines;

#[test]
fn cumulative_coverage_rows_are_byte_identical_across_runs() {
    // 5 inputs per application keeps the double run cheap while still
    // exercising the merge loop and the growth-curve sampling.
    let first = to_json_lines(&coverage_cumulative(5));
    let second = to_json_lines(&coverage_cumulative(5));
    assert!(!first.is_empty(), "the experiment must produce rows");
    assert_eq!(
        first, second,
        "same px-util seed must reproduce byte-identical JSON rows"
    );
    // Every row is a well-formed object rooted at the application name, in
    // the fixed workload order (thread scheduling must not reorder rows).
    let mut apps = Vec::new();
    for line in first.lines() {
        assert!(line.starts_with("{\"app\":\""), "row shape: {line}");
        assert!(line.ends_with('}'), "row shape: {line}");
        apps.push(line.split('"').nth(3).expect("app value").to_owned());
    }
    let expected: Vec<String> = px_workloads::buggy()
        .iter()
        .map(|w| w.name.to_owned())
        .collect();
    assert_eq!(apps, expected, "rows keep the canonical workload order");
}
