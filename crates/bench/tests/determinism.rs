//! Determinism regression: the evaluation harness is a pure function of
//! the px-util seed. Two runs of the `fig_coverage_cumulative` logic with
//! the same seed must produce byte-identical JSON rows, even though the
//! per-application work is farmed out to scoped threads whose scheduling
//! varies run to run.

use px_bench::experiments::coverage::{coverage_cumulative, coverage_cumulative_with_budget};
use px_util::json::to_json_lines;

#[test]
fn cumulative_coverage_rows_are_byte_identical_across_runs() {
    // 5 inputs per application keeps the double run cheap while still
    // exercising the merge loop and the growth-curve sampling.
    let first = to_json_lines(&coverage_cumulative(5));
    let second = to_json_lines(&coverage_cumulative(5));
    assert!(!first.is_empty(), "the experiment must produce rows");
    assert_eq!(
        first, second,
        "same px-util seed must reproduce byte-identical JSON rows"
    );
    // Every row is a well-formed object rooted at the application name, in
    // the fixed workload order (thread scheduling must not reorder rows).
    let mut apps = Vec::new();
    for line in first.lines() {
        assert!(line.starts_with("{\"app\":\""), "row shape: {line}");
        assert!(line.ends_with('}'), "row shape: {line}");
        apps.push(line.split('"').nth(3).expect("app value").to_owned());
    }
    let expected: Vec<String> = px_workloads::buggy()
        .iter()
        .map(|w| w.name.to_owned())
        .collect();
    assert_eq!(apps, expected, "rows keep the canonical workload order");
}

/// A tight instruction budget truncates runs mid-flight — often while an
/// NT-path is live, forcing the engine's squash-before-budget-exhausted
/// path — yet the rows must stay byte-identical across runs.
#[test]
fn budget_truncated_rows_are_byte_identical_across_runs() {
    const TIGHT: u64 = 4_000;

    // First prove the tight budget really truncates: at least one workload
    // hits BudgetExhausted, and at least one live NT-path is cut short at
    // the budget boundary (rather than completing naturally).
    let mut exhausted = 0usize;
    let mut cut_short = 0usize;
    for w in &px_workloads::buggy() {
        let tool = w.tools[0];
        let compiled = w.compile_for(tool).expect("workload compiles");
        let px = w.px_config().with_max_instructions(TIGHT);
        let mach = match px.mode {
            pathexpander::Mode::Standard => px_mach::MachConfig::single_core(),
            pathexpander::Mode::Cmp => px_mach::MachConfig::default(),
        };
        let io = px_mach::IoState::new(w.general_input(12345), 12345);
        let r = pathexpander::run(&compiled.program, &mach, &px, io);
        if matches!(r.exit, px_mach::RunExit::BudgetExhausted) {
            exhausted += 1;
            cut_short += r.stats.stops_of("cut-short");
        }
    }
    assert!(exhausted > 0, "a {TIGHT}-instruction budget must truncate");
    assert!(
        cut_short > 0,
        "at least one NT-path must be live at the budget boundary"
    );

    // Truncation mid-NT-path must not introduce any run-to-run divergence.
    let first = to_json_lines(&coverage_cumulative_with_budget(3, TIGHT));
    let second = to_json_lines(&coverage_cumulative_with_budget(3, TIGHT));
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "budget-truncated runs must reproduce byte-identical JSON rows"
    );
}
