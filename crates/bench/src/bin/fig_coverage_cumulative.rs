//! Regenerates the cumulative-coverage experiment over 50 random inputs per
//! application (experiment E7).

use px_bench::experiments::coverage::{coverage_cumulative_with_budget, cumulative_improvement};
use px_bench::fmt::{pct, render_table};
use px_util::json::to_json_lines;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut budget = px_bench::experiments::BUDGET;
    let mut inputs = 50usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => i += 1,
            "--budget" => {
                let value = args.get(i + 1).and_then(|a| a.parse::<u64>().ok());
                let Some(value) = value else {
                    eprintln!("error: --budget expects an instruction count");
                    std::process::exit(2);
                };
                budget = value.max(1);
                i += 2;
            }
            other => {
                if let Ok(n) = other.parse() {
                    inputs = n;
                } else {
                    eprintln!("error: unknown argument {other:?}");
                    eprintln!("usage: fig_coverage_cumulative [INPUTS] [--budget N] [--json]");
                    std::process::exit(2);
                }
                i += 1;
            }
        }
    }
    let rows = coverage_cumulative_with_budget(inputs, budget);
    if json {
        // One row object per line; byte-deterministic for a fixed seed
        // (pinned by the determinism regression test).
        print!("{}", to_json_lines(&rows));
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.inputs.to_string(),
                pct(r.baseline),
                pct(r.pathexpander),
                format!("+{:.1}", (r.pathexpander - r.baseline) * 100.0),
                pct(r.baseline_feasible),
                pct(r.pathexpander_feasible),
            ]
        })
        .collect();
    println!("Cumulative branch coverage over {inputs} random inputs");
    println!("(feasible columns divide by px-analyze's statically feasible edges)\n");
    println!(
        "{}",
        render_table(
            &[
                "Application",
                "Inputs",
                "Baseline",
                "PathExpander",
                "Improvement",
                "Base/feas",
                "PX/feas"
            ],
            &cells
        )
    );
    println!(
        "Average improvement: +{:.1} points (paper: +19%)",
        cumulative_improvement(&rows) * 100.0
    );
    println!("\nGrowth curves (inputs, baseline, pathexpander):");
    for r in &rows {
        let pts: Vec<String> = r
            .curve
            .iter()
            .map(|(k, b, p)| format!("({k}, {:.1}%, {:.1}%)", b * 100.0, p * 100.0))
            .collect();
        println!("{:>14}: {}", r.app, pts.join(" "));
    }
}
