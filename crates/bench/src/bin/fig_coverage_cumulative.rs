//! Regenerates the cumulative-coverage experiment over 50 random inputs per
//! application (experiment E7).

use px_bench::experiments::coverage::{coverage_cumulative, cumulative_improvement};
use px_bench::fmt::{pct, render_table};
use px_util::json::to_json_lines;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let inputs = args.iter().find_map(|a| a.parse().ok()).unwrap_or(50);
    let rows = coverage_cumulative(inputs);
    if json {
        // One row object per line; byte-deterministic for a fixed seed
        // (pinned by the determinism regression test).
        print!("{}", to_json_lines(&rows));
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.inputs.to_string(),
                pct(r.baseline),
                pct(r.pathexpander),
                format!("+{:.1}", (r.pathexpander - r.baseline) * 100.0),
            ]
        })
        .collect();
    println!("Cumulative branch coverage over {inputs} random inputs\n");
    println!(
        "{}",
        render_table(
            &[
                "Application",
                "Inputs",
                "Baseline",
                "PathExpander",
                "Improvement"
            ],
            &cells
        )
    );
    println!(
        "Average improvement: +{:.1} points (paper: +19%)",
        cumulative_improvement(&rows) * 100.0
    );
    println!("\nGrowth curves (inputs, baseline, pathexpander):");
    for r in &rows {
        let pts: Vec<String> = r
            .curve
            .iter()
            .map(|(k, b, p)| format!("({k}, {:.1}%, {:.1}%)", b * 100.0, p * 100.0))
            .collect();
        println!("{:>14}: {}", r.app, pts.join(" "));
    }
}
