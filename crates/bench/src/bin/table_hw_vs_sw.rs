//! Regenerates the hardware-vs-software implementation comparison
//! (experiment E9, the paper's "3-4 orders of magnitude").

use px_bench::experiments::overhead::hw_vs_sw;
use px_bench::fmt::{pct, render_table};

fn main() {
    let rows = hw_vs_sw();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                pct(r.hw_standard),
                pct(r.hw_cmp),
                format!("{:.0}x", r.software + 1.0),
                format!("{:.1}", r.orders_vs_cmp),
            ]
        })
        .collect();
    println!("Hardware vs software PathExpander implementation\n");
    println!(
        "{}",
        render_table(
            &[
                "Application",
                "HW standard",
                "HW CMP",
                "SW slowdown",
                "Orders vs CMP"
            ],
            &cells
        )
    );
    let avg: f64 = rows.iter().map(|r| r.orders_vs_cmp).sum::<f64>() / rows.len() as f64;
    println!("Average separation: {avg:.1} orders of magnitude (paper: 3-4)");
}
