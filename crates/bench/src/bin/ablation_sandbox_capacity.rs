//! Regenerates the sandbox-capacity ablation (design decision D3): why the
//! paper sandboxes NT-path state in the L1 cache rather than a store buffer.

use px_bench::fmt::{pct, render_table};

fn main() {
    let points = px_bench::ablation_sandbox();
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{} B", p.capacity_bytes),
                pct(p.overflow_ratio),
                format!("{:.0}", p.mean_length),
                pct(p.coverage),
            ]
        })
        .collect();
    println!(
        "Ablation: sandbox capacity (store buffer vs L1; 099.go, 10000-instruction NT-paths)\n"
    );
    println!(
        "{}",
        render_table(
            &["Capacity", "Overflow stops", "Mean NT length", "Coverage"],
            &cells
        )
    );
    println!("\nConclusion (paper §4.2(2)): the L1 'can buffer more updates,");
    println!("allowing NT-Paths to execute for longer time to expose bugs'.");
}
