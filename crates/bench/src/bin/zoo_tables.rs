//! E15 — regenerates the Table 4/5 shape over the generated workload zoo:
//! per-family feasible-edge coverage uplift, detection counts on three
//! engines, NT-only false positives and detection latency.
//!
//! ```text
//! zoo_tables [--quick] [--json] [--check]
//! ```
//!
//! `--quick` runs the reduced CI roster (two structure seeds per shape),
//! `--json` emits the deterministic report object, `--check` exits non-zero
//! unless the E15 acceptance criteria hold (≥25 families, ≥4 shapes, ≥6
//! classes at full scale; every expected bug detected on some engine; no
//! NT-only false positives).

use std::process::ExitCode;

use px_bench::experiments::zoo::zoo_report;
use px_bench::fmt::render_table;
use px_util::ToJson;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");

    let report = zoo_report(quick);

    if json {
        println!("{}", report.to_json().dump());
    } else {
        let cells: Vec<Vec<String>> = report
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.spec.clone(),
                    r.tool.clone(),
                    format!("{}/{}", r.taken_covered, r.feasible_edges),
                    format!("{}/{}", r.total_covered, r.feasible_edges),
                    format!("{:+.1}pp", r.uplift_points()),
                    r.tested.to_string(),
                    r.baseline_tp.to_string(),
                    r.standard_tp.to_string(),
                    r.cmp_tp.to_string(),
                    r.false_positives.to_string(),
                    r.first_tp_cycle
                        .map_or_else(|| "-".to_owned(), |c| c.to_string()),
                ]
            })
            .collect();
        println!("E15: zoo-scale bug detection and coverage uplift\n");
        println!(
            "{}",
            render_table(
                &[
                    "Family",
                    "Tool",
                    "Taken/Feas",
                    "Px/Feas",
                    "Uplift",
                    "Tested",
                    "Base",
                    "Std",
                    "CMP",
                    "NT-FP",
                    "1st TP cycle"
                ],
                &cells
            )
        );
        let (expected, detected) = report.detection_totals();
        println!(
            "{} families, {} shapes, {} bug classes; {} of {} expected bugs \
             detected on at least one engine",
            report.families,
            report.shapes().len(),
            report.classes().len(),
            detected,
            expected,
        );
        println!("(paper Table 4, at 4x the program count: 38 bugs over 7 applications)");
    }

    if check {
        let (expected, detected) = report.detection_totals();
        let fp: usize = report.rows.iter().map(|r| r.false_positives).sum();
        let ok_scale = quick
            || (report.families >= 25 && report.shapes().len() >= 4 && report.classes().len() >= 6);
        let ok = ok_scale && detected == expected && fp == 0;
        if !ok {
            eprintln!(
                "zoo_tables --check FAILED: families={} shapes={} classes={} \
                 detected={detected}/{expected} nt_fps={fp}",
                report.families,
                report.shapes().len(),
                report.classes().len(),
            );
            return ExitCode::FAILURE;
        }
        eprintln!("zoo_tables --check OK");
    }
    ExitCode::SUCCESS
}
