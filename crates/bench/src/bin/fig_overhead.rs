//! Regenerates the execution-overhead comparison (experiment E8).

use px_bench::experiments::overhead::{overhead_averages, OverheadRow};
use px_bench::fmt::{pct, render_table};

fn main() {
    let rows: Vec<OverheadRow> = px_bench::overhead();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.baseline_cycles.to_string(),
                pct(r.standard),
                pct(r.cmp),
                r.nt_paths.to_string(),
            ]
        })
        .collect();
    println!("PathExpander execution overhead\n");
    println!(
        "{}",
        render_table(
            &[
                "Application",
                "Baseline cycles",
                "Standard",
                "CMP option",
                "NT-paths"
            ],
            &cells
        )
    );
    let (s, c) = overhead_averages(&rows);
    println!(
        "Average overhead: standard {} | CMP {} (paper: CMP < 9.9%)",
        pct(s),
        pct(c)
    );
}
