//! Regenerates the bug-detection results (paper Table 4).

use px_bench::experiments::tables::{table4, table4_totals};
use px_bench::fmt::render_table;

fn main() {
    let rows = table4();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tool.clone(),
                r.app.clone(),
                r.tested.to_string(),
                r.baseline.to_string(),
                r.pathexpander.to_string(),
            ]
        })
        .collect();
    println!("Table 4: Bug detection results of PathExpander\n");
    println!(
        "{}",
        render_table(
            &[
                "Dynamic Tool",
                "Application",
                "#Bug Tested",
                "Baseline",
                "PathExpander"
            ],
            &cells
        )
    );
    let (tested, base, px) = table4_totals(&rows);
    println!("Totals: {tested} tested, {base} detected by baseline, {px} by PathExpander");
    println!("(paper: 38 tested, 0 baseline, 21 PathExpander)");
}
