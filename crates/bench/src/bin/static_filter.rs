//! Regenerates the static NT-spawn filter experiment (E14): spawn
//! reduction from px-analyze's must-reach-unsafe veto, with taken-path
//! digests proving the committed run is untouched.

use px_bench::experiments::static_filter::{
    static_filter, static_filter_summary, DEFAULT_THRESHOLD,
};
use px_bench::fmt::{pct, render_table};
use px_util::json::to_json_lines;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut threshold = DEFAULT_THRESHOLD;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => i += 1,
            "--threshold" => {
                let value = args.get(i + 1).and_then(|a| a.parse::<u32>().ok());
                let Some(value) = value.filter(|&k| k > 0) else {
                    eprintln!("error: --threshold expects a positive instruction count");
                    std::process::exit(2);
                };
                threshold = value;
                i += 2;
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!("usage: static_filter [--threshold K] [--json]");
                std::process::exit(2);
            }
        }
    }
    let rows = static_filter(threshold);
    if json {
        print!("{}", to_json_lines(&rows));
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.spawns_base.to_string(),
                r.spawns_filtered.to_string(),
                r.vetoed.to_string(),
                format!(
                    "{:.1}%",
                    if r.nt_instructions_base == 0 {
                        0.0
                    } else {
                        (1.0 - r.nt_instructions_filtered as f64 / r.nt_instructions_base as f64)
                            * 100.0
                    }
                ),
                pct(r.coverage_filtered),
                if r.taken_digest_base == r.taken_digest_filtered {
                    "identical".to_owned()
                } else {
                    "DIVERGED".to_owned()
                },
            ]
        })
        .collect();
    println!("Static NT-spawn filter at threshold {threshold} (must-die-within-K veto)\n");
    println!(
        "{}",
        render_table(
            &[
                "Application",
                "Spawns",
                "Filtered",
                "Vetoed",
                "NT-work saved",
                "Feas. coverage",
                "Taken digest"
            ],
            &cells
        )
    );
    let (base, filtered, digests_match) = static_filter_summary(&rows);
    println!(
        "Total spawns: {base} -> {filtered} ({} vetoed); taken-path digests {}",
        base - filtered,
        if digests_match {
            "all identical"
        } else {
            "DIVERGED (bug!)"
        }
    );
}
