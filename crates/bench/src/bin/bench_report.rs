//! Measures simulated instructions/second per engine (experiment E13) and
//! emits `BENCH_throughput.json` — the repo's perf trajectory.
//!
//! ```text
//! bench_report [--quick] [--json] [--out PATH] [--verify PATH]
//! ```
//!
//! `--quick` lowers the timed repetitions (1 instead of 3); the
//! architectural digests are identical in both modes. `--verify PATH`
//! checks that an existing report (the committed `BENCH_throughput.json`)
//! carries the current schema tag and the same architectural digest as a
//! fresh run — the CI gate. Wall-clock numbers are never compared.

use px_bench::experiments::perf::{throughput_report, SCHEMA};
use px_bench::fmt::render_table;
use px_util::ToJson;

fn usage() -> ! {
    eprintln!(
        "usage: bench_report [--quick] [--json] [--out PATH] [--verify PATH]\n\
         \n\
         --quick        one timed repetition per row instead of three\n\
         --json         print the report as JSON to stdout\n\
         --out PATH     write the JSON report to PATH\n\
                        (default BENCH_throughput.json unless --verify)\n\
         --verify PATH  gate: require PATH to carry the current schema and\n\
                        this run's architectural digest (never wall-clock)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut verify: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: --out requires a value");
                    usage();
                };
                out = Some(path.clone());
                i += 2;
            }
            "--verify" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: --verify requires a value");
                    usage();
                };
                verify = Some(path.clone());
                i += 2;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }

    let report = throughput_report(quick);
    let dumped = report.to_json().dump();

    if json {
        println!("{dumped}");
    } else {
        let rows: Vec<Vec<String>> = report
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    r.workload.clone(),
                    r.instructions.to_string(),
                    r.sim_cycles.to_string(),
                    r.nt_paths.to_string(),
                    format!("{:.3}", r.wall_ns as f64 / 1e6),
                    format!("{:.3}", r.mips),
                    r.digest.clone(),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &[
                    "engine",
                    "workload",
                    "sim-instr",
                    "sim-cycles",
                    "nt-paths",
                    "wall-ms",
                    "mips",
                    "digest",
                ],
                &rows,
            )
        );
        println!("arch digest: {}", report.arch_digest);
    }

    // Default output path only when not gating an existing file.
    let out = out.or_else(|| verify.is_none().then(|| "BENCH_throughput.json".to_owned()));
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{dumped}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &verify {
        let committed = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("verify FAILED: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let schema_tag = format!(r#""schema":"{SCHEMA}""#);
        if !committed.contains(&schema_tag) {
            eprintln!("verify FAILED: {path} does not carry schema {SCHEMA:?}");
            std::process::exit(1);
        }
        let digest_tag = format!(r#""arch_digest":"{}""#, report.arch_digest);
        if !committed.contains(&digest_tag) {
            eprintln!(
                "verify FAILED: {path} architectural digest differs from this run \
                 (expected {}) — the simulation's architectural results changed; \
                 regenerate with `bench_report --out {path}` if the change is intended",
                report.arch_digest
            );
            std::process::exit(1);
        }
        println!("verify OK: schema and architectural digest match {path}");
    }
}
