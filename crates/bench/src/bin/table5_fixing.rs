//! Regenerates the consistency-fixing results (paper Table 5). With
//! `--strategies`, also runs the fix-strategy ablation (design decision D4).

use px_bench::experiments::ablations::ablation_fix_strategy;
use px_bench::experiments::tables::{table5, table5_averages};
use px_bench::fmt::render_table;

fn main() {
    let rows = table5();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tool.clone(),
                r.app.clone(),
                r.fp_before.to_string(),
                r.fp_after.to_string(),
                r.bugs_before.to_string(),
                r.bugs_after.to_string(),
            ]
        })
        .collect();
    println!("Table 5: False-positive pruning by key variable value fix\n");
    println!(
        "{}",
        render_table(
            &[
                "Method",
                "Application",
                "FP before",
                "FP after",
                "Bugs before",
                "Bugs after"
            ],
            &cells
        )
    );
    let (before, after) = table5_averages(&rows);
    println!("Average false positives: {before:.1} -> {after:.1} (paper: 13 -> 4)");

    if std::env::args().any(|a| a == "--strategies") {
        println!("\nFix-strategy ablation (bc, CCured):");
        let cells: Vec<Vec<String>> = ablation_fix_strategy()
            .iter()
            .map(|r| {
                vec![
                    r.strategy.clone(),
                    r.false_positives.to_string(),
                    r.bugs.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["Strategy", "NT false positives", "Bugs found"], &cells)
        );
    }
}
