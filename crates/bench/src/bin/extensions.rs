//! Regenerates the forward-looking extension experiments: §3.2 OS-supported
//! sandboxing of unsafe events and the §7.1(2) random NT-selection factor.

use px_bench::experiments::ablations::extensions;

fn main() {
    let r = extensions();
    println!("Extension 1: OS support for sandboxing unsafe events (paper §3.2)\n");
    println!("NT-path survival to 1000 instructions:");
    for ((app, plain), (_, os)) in r.survival_plain.iter().zip(&r.survival_os) {
        println!("  {app:>10}: {:.1}% -> {:.1}%", plain * 100.0, os * 100.0);
    }
    println!("(paper projection: 'more than 90% of NT-Paths may potentially");
    println!(" execute up to 1000 instructions')\n");

    println!("Extension 2: random factor in NT-path selection (paper §7.1(2))\n");
    println!(
        "bc hot-entry bug (bc-2) detected at default threshold: {}",
        r.bc2_plain
    );
    println!(
        "bc hot-entry bug detected with 1-in-8 random admits:   {}",
        r.bc2_random
    );
}
