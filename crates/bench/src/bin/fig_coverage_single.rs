//! Regenerates the single-input branch-coverage comparison (experiment E6).

use px_bench::experiments::coverage::{coverage_averages, CoverageRow};
use px_bench::fmt::{pct, render_table};

fn main() {
    let rows: Vec<CoverageRow> = px_bench::coverage();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.app.clone(), pct(r.baseline), pct(r.pathexpander)])
        .collect();
    println!("Branch coverage of a single monitored run\n");
    println!(
        "{}",
        render_table(&["Application", "Baseline", "PathExpander"], &cells)
    );
    let (b, p) = coverage_averages(&rows);
    println!("Average: {} -> {} (paper: 40% -> 65%)", pct(b), pct(p));
}
