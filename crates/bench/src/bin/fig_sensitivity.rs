//! Regenerates the parameter-sensitivity sweeps (experiment E10).

use px_bench::fmt::{pct, render_table};

fn main() {
    let points = px_bench::sensitivity();
    for param in ["max_nt_path_len", "counter_threshold", "max_outstanding"] {
        println!("Sweep of {param}:\n");
        let cells: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.param == param)
            .map(|p| {
                vec![
                    p.app.clone(),
                    p.value.to_string(),
                    pct(p.coverage),
                    pct(p.overhead),
                    p.spawns.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["Application", "Value", "Coverage", "Overhead", "Spawns"],
                &cells
            )
        );
    }
}
