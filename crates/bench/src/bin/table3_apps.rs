//! Prints the application/bug inventory (paper Table 3).

use px_bench::fmt::render_table;

fn main() {
    let rows = px_bench::table3();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.loc.to_string(),
                r.bugs.to_string(),
                r.tools.clone(),
            ]
        })
        .collect();
    println!("Table 3: Applications and bugs evaluated\n");
    println!(
        "{}",
        render_table(&["Application", "LOC", "#Bugs", "Detection Tool"], &cells)
    );
    let total: usize = rows.iter().map(|r| r.bugs).sum();
    println!("Total tested bugs: {total} (paper: 38)");
}
