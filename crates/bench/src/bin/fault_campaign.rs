//! Runs a deterministic fault-injection campaign (experiment E12) and
//! reports whether the sandbox contained every case.
//!
//! ```text
//! fault_campaign [--seed N] [--cases N] [--fault-mix SPEC] [--case N] [--json]
//!                [--case-timeout N] [--max-quarantine N]
//! ```
//!
//! `--fault-mix` takes a comma-separated weight spec such as
//! `bitflip,crash=3,vtag` (unlisted kinds get weight 0; bare names get
//! weight 1). `--case N` replays a single case of the campaign — use the
//! coordinates printed for a violating case. Exits non-zero if any case
//! violates containment.
//!
//! `--case-timeout N` runs the campaign under the crash-safe runner's
//! per-case instruction watchdog (timed-out cases are quarantined, not
//! fatal) and `--max-quarantine N` aborts once more than N cases are
//! quarantined; either flag switches to the guarded summary format, so the
//! classic (golden-pinned) JSON is untouched when neither is passed.

use px_bench::experiments::fault::{run_campaign, run_campaign_guarded, run_case};
use px_campaign::{CaseOutcome, Watchdog};
use px_mach::FaultMix;
use px_util::ToJson;

fn usage() -> ! {
    eprintln!(
        "usage: fault_campaign [--seed N] [--cases N] [--fault-mix SPEC] [--case N] [--json]\n\
         \t\t      [--case-timeout N] [--max-quarantine N]\n\
         \n\
         --seed N           campaign seed (u64, default 1)\n\
         --cases N          number of cases (1..=65536, default 256)\n\
         --fault-mix SPEC   comma-separated kind weights, e.g. bitflip,crash=3\n\
         --case N           replay a single case of this campaign\n\
         --case-timeout N   per-case instruction watchdog (guarded mode)\n\
         --max-quarantine N abort once more than N cases are quarantined\n\
         --json             print the summary as JSON"
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<&String>) -> u64 {
    let Some(raw) = value else {
        eprintln!("error: {flag} requires a value");
        usage();
    };
    match raw.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects an unsigned integer, got {raw:?}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut cases = 256u64;
    let mut mix = FaultMix::uniform();
    let mut replay: Option<u64> = None;
    let mut case_timeout: Option<u64> = None;
    let mut max_quarantine: Option<u64> = None;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = parse_u64("--seed", args.get(i + 1));
                i += 2;
            }
            "--cases" => {
                cases = parse_u64("--cases", args.get(i + 1));
                if cases == 0 || cases > 65_536 {
                    eprintln!("error: --cases must be in 1..=65536, got {cases}");
                    usage();
                }
                i += 2;
            }
            "--fault-mix" => {
                let Some(spec) = args.get(i + 1) else {
                    eprintln!("error: --fault-mix requires a value");
                    usage();
                };
                mix = match FaultMix::parse(spec) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("error: bad --fault-mix: {e}");
                        usage();
                    }
                };
                i += 2;
            }
            "--case" => {
                replay = Some(parse_u64("--case", args.get(i + 1)));
                i += 2;
            }
            "--case-timeout" => {
                let t = parse_u64("--case-timeout", args.get(i + 1));
                if t == 0 {
                    eprintln!("error: --case-timeout must be positive");
                    usage();
                }
                case_timeout = Some(t);
                i += 2;
            }
            "--max-quarantine" => {
                max_quarantine = Some(parse_u64("--max-quarantine", args.get(i + 1)));
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }

    if let Some(id) = replay {
        let case = run_case(seed, id, &mix);
        println!("{}", case.to_json().dump());
        if !case.violations.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    // Either guard flag switches to the watchdog-guarded runner and its own
    // summary format; the classic path (and its golden-pinned JSON) is only
    // taken when neither is present.
    if case_timeout.is_some() || max_quarantine.is_some() {
        let wd = case_timeout.map_or_else(Watchdog::default_budget, |timeout| Watchdog { timeout });
        let summary = run_campaign_guarded(seed, cases, &mix, &wd, max_quarantine);
        if json {
            println!("{}", summary.to_json().dump());
        } else {
            println!(
                "guarded fault campaign: seed={} cases={} ran={} mix={} timeout={}",
                summary.seed, summary.cases, summary.ran, summary.mix, summary.timeout
            );
            println!(
                "  done {}  timed-out {}  panicked {}  violated {}{}",
                summary.of(CaseOutcome::Done),
                summary.of(CaseOutcome::TimedOut),
                summary.of(CaseOutcome::Panicked),
                summary.of(CaseOutcome::Violated),
                if summary.aborted {
                    "  (aborted: quarantine limit)"
                } else {
                    ""
                }
            );
            for (class, n) in &summary.exits {
                println!("  exit {class}: {n}");
            }
            for case in &summary.quarantined {
                println!(
                    "  QUARANTINED case {} [{}] exit={} (replay: fault_campaign --seed {} \
                     --case {}){}",
                    case.id,
                    case.outcome.name(),
                    case.exit,
                    seed,
                    case.id,
                    if case.detail.is_empty() {
                        String::new()
                    } else {
                        format!(" — {}", case.detail)
                    }
                );
            }
        }
        if summary.of(CaseOutcome::Violated) > 0 || summary.aborted {
            std::process::exit(1);
        }
        return;
    }

    let summary = run_campaign(seed, cases, &mix);
    if json {
        println!("{}", summary.to_json().dump());
    } else {
        println!(
            "fault campaign: seed={} cases={} mix={}",
            summary.seed, summary.cases, summary.mix
        );
        println!(
            "  faults injected: {}  contained: {}/{}",
            summary.faults_injected, summary.contained, summary.cases
        );
        for (class, n) in &summary.exits {
            println!("  exit {class}: {n}");
        }
        for case in &summary.violating {
            println!(
                "  VIOLATION case {} engine={} program={} fault_seed={} (replay: \
                 fault_campaign --seed {} --case {})",
                case.id, case.engine, case.program, case.fault_seed, summary.seed, case.id
            );
            for v in &case.violations {
                println!("    {v}");
            }
        }
        if summary.all_contained() {
            println!("  sandbox contained every case");
        }
    }
    if !summary.all_contained() {
        std::process::exit(1);
    }
}
