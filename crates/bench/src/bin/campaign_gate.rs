//! Runs the E16 campaign crash-safety gate: a ~512-case manifest with
//! injected panicking/runaway cases, killed mid-flight and resumed, which
//! must reproduce the uninterrupted run's aggregate digest byte-for-byte
//! with zero lost cases and a quarantine matching chaos ground truth.
//!
//! ```text
//! campaign_gate [--manifest SPEC] [--kill-after N] [--json] [--check]
//! ```
//!
//! `--check` exits non-zero unless every acceptance criterion holds — the
//! form scripts/verify.sh and CI run.

use px_bench::experiments::campaign::{campaign_gate_with, GATE_KILL_AFTER, GATE_MANIFEST};

fn usage() -> ! {
    eprintln!(
        "usage: campaign_gate [--manifest SPEC] [--kill-after N] [--json] [--check]\n\
         \n\
         --manifest SPEC  campaign manifest (default {GATE_MANIFEST})\n\
         --kill-after N   kill the crash leg after N cases (default {GATE_KILL_AFTER})\n\
         --json           print the gate report as JSON\n\
         --check          exit non-zero unless the gate passes"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut manifest = GATE_MANIFEST.to_owned();
    let mut kill_after = GATE_KILL_AFTER;
    let mut json = false;
    let mut check = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--manifest" => {
                let Some(spec) = args.get(i + 1) else {
                    eprintln!("error: --manifest requires a value");
                    usage();
                };
                manifest = spec.clone();
                i += 2;
            }
            "--kill-after" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("error: --kill-after requires a value");
                    usage();
                };
                kill_after = match raw.parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("error: --kill-after expects a positive integer, got {raw:?}");
                        usage();
                    }
                };
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }

    let report = campaign_gate_with(&manifest, kill_after);
    if json {
        println!("{}", report.to_json().dump());
    } else {
        println!(
            "campaign gate: {} cases over `{}`, killed after {kill_after}",
            report.total, report.manifest
        );
        println!(
            "  digest straight={:016x} resumed={:016x} ({})",
            report.digest_straight,
            report.digest_resumed,
            if report.digest_straight == report.digest_resumed {
                "identical"
            } else {
                "MISMATCH"
            }
        );
        println!(
            "  resume: {} from journal + {} run = {} (lost {})",
            report.resumed_from_journal,
            report.resumed_ran,
            report.resumed_from_journal + report.resumed_ran,
            report
                .total
                .saturating_sub(report.resumed_from_journal + report.resumed_ran)
        );
        println!(
            "  quarantined {} (chaos mismatches {}), violations {}, steals {}, torn tail {}",
            report.quarantined,
            report.chaos_mismatches,
            report.violated,
            report.steals,
            report.torn_tail_seen
        );
        println!("  gate: {}", if report.passed() { "PASS" } else { "FAIL" });
    }
    if check && !report.passed() {
        std::process::exit(1);
    }
}
