//! Regenerates the §4.2(3) ablation: exploring non-taken edges from inside
//! NT-paths (the paper measured +2% coverage but crash ratio 5% -> 16%).

fn main() {
    let r = px_bench::ablation_nt_from_nt();
    println!(
        "Ablation: exploring non-taken edges from NT-paths ({})\n",
        r.app
    );
    println!(
        "coverage:     {:.1}% -> {:.1}% (paper: +2 points)",
        r.coverage_off * 100.0,
        r.coverage_on * 100.0
    );
    println!(
        "crash ratio:  {:.1}% -> {:.1}% (paper: 5% -> 16%)",
        r.crash_ratio_off * 100.0,
        r.crash_ratio_on * 100.0
    );
    println!("\nConclusion (paper §4.2): not worth it — PathExpander follows only");
    println!("taken edges inside NT-paths.");
}
