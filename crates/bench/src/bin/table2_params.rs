//! Prints the simulator parameters (paper Table 2).

fn main() {
    println!("Table 2: Parameters of the simulation\n");
    println!("{}", px_mach::MachConfig::default().table2());
    println!("\nPathExpander defaults (paper §6.3):");
    let px = pathexpander::PxConfig::default();
    println!(
        "MaxNTPathLength        {} (100 for Siemens benchmarks)",
        px.max_nt_path_len
    );
    println!("NTPathCounterThreshold {}", px.counter_threshold);
    println!("MaxNumNTPaths          {}", px.max_outstanding);
    println!(
        "CounterResetInterval   {} instructions",
        px.counter_reset_interval
    );
}
