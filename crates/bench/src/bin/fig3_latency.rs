//! Regenerates the Crash-/Unsafe-Latency CDFs (paper Figure 3).

use px_bench::fig3;
use px_bench::fmt::render_table;

fn main() {
    println!("Figure 3: Crash-Latency and Unsafe-Latency statistics");
    println!("(cumulative fraction of NT-paths stopped before N instructions)\n");
    for panel in fig3() {
        println!("--- {} ({} NT-paths spawned) ---", panel.app, panel.spawned);
        let cells: Vec<Vec<String>> = panel
            .points
            .iter()
            .map(|(n, crash, unsafe_cdf, stopped)| {
                vec![
                    n.to_string(),
                    format!("{crash:.3}"),
                    format!("{unsafe_cdf:.3}"),
                    format!("{stopped:.3}"),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["Instructions", "Crash CDF", "Unsafe CDF", "Stopped CDF"],
                &cells
            )
        );
        println!(
            "Survived to 1000 instructions: {:.1}% (paper: 65-99% across apps)\n",
            panel.survived * 100.0
        );
    }
}
