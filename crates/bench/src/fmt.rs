//! Minimal fixed-width table rendering for the regenerator binaries.

/// Renders rows as an aligned text table with a header row.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..widths[i] {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    let headers: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    line(&headers, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["app", "value"],
            &[
                vec!["go".into(), "1".into()],
                vec!["print_tokens".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("print_tokens  22"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.403), "40.3%");
    }
}
