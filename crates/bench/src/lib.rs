//! # px-bench — the evaluation harness
//!
//! One module (and one binary) per table or figure of the paper's
//! evaluation; see `DESIGN.md` §5 for the experiment index. Each experiment
//! is a plain function returning typed rows, so the same code runs from the
//! regenerator binaries, the integration tests that pin the paper's shape
//! claims, and the self-timing benches (`px_util::bench`).

pub mod experiments;
pub mod fmt;

pub use experiments::{
    ablation_nt_from_nt, ablation_sandbox, coverage,
    fault::{run_campaign, run_case},
    fig3, overhead, sensitivity, table3, table4, table5, throughput_report,
};
