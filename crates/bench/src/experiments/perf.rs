//! Simulation-throughput measurement (experiment E13): how many simulated
//! instructions per second each engine sustains on fixed workloads.
//!
//! This is the repo's perf trajectory. Every row carries two kinds of
//! numbers with very different trust levels:
//!
//! * **architectural** — simulated instruction count, simulated cycles and a
//!   determinism digest of the run's committed results. These are
//!   bit-deterministic and CI gates on them (schema + digest).
//! * **wall-clock** — nanoseconds and MIPS (millions of simulated
//!   instructions per host second). Machine-specific; recorded for the
//!   trajectory, never gated.
//!
//! The workloads are deliberately hot-loop shaped: `nt-heavy` keeps an
//! NT-path live most of the time and hammers the sandbox with loads and
//! stores (the paged-sandbox fast path), `taken-stride` sweeps committed
//! memory with no NT work at all (the `Memory`/`Cache` fast path).

use std::time::Instant;

use pathexpander::{run_cmp, run_standard, PxConfig, PxRunResult};
use px_detect::Tool;
use px_isa::asm::assemble;
use px_isa::Program;
use px_mach::{run_baseline, IoState, MachConfig, RunExit};
use px_soft::{run_soft, SoftConfig};
use px_util::{fnv1a64, Json, ToJson};
use px_workloads::zoo::{self, ZooSpec};

/// Schema tag of `BENCH_throughput.json`. Bump on any shape change.
pub const SCHEMA: &str = "px-bench/throughput-v1";

/// Instruction budget per run — identical in `--quick` and full mode so the
/// determinism digest never depends on the mode.
pub const RUN_BUDGET: u64 = 1_500_000;

/// Pre-rewrite standard-engine MIPS on `nt-heavy`, measured on the machine
/// that authored the paged-sandbox rewrite (PR 3). Machine-specific
/// reference for the recorded speedup; never gated.
///
/// Methodology: the pre-rewrite commit and the rewritten tree were built
/// side by side and timed *interleaved* in the same session (20
/// alternations of best-of-5 runs each, minimum taken) — the only protocol
/// that survives this host's frequency drift. 1.5 M simulated instructions
/// in 23.49 ms before vs 10.92 ms after.
pub const PRE_REWRITE_STANDARD_NT_HEAVY_MIPS: f64 = 63.86;

/// Post-rewrite counterpart of [`PRE_REWRITE_STANDARD_NT_HEAVY_MIPS`],
/// same interleaved protocol: 2.15x.
pub const POST_REWRITE_STANDARD_NT_HEAVY_MIPS: f64 = 137.36;

/// An NT-path-dominated workload: a spawn edge that stays cold (tiny
/// counter-reset interval), whose NT-path runs a long store/load sweep
/// inside the sandbox.
const NT_HEAVY: &str = r"
    .data
    buf: .word 0
    .code
    main:
        li r1, 1
        la r9, buf
        li r4, 200000
    loop:
        bne r1, zero, cont
        ; --- NT-path body: sandboxed store/load sweep ---
        li r6, 96
        mv r10, r9
    ntw:
        sw r6, 0(r10)
        lw r7, 0(r10)
        sb r6, 2(r10)
        addi r10, r10, 4
        subi r6, r6, 1
        bgt r6, zero, ntw
        jmp cont
    cont:
        subi r4, r4, 1
        bgt r4, zero, loop
        li r2, 0
        exit
    ";

/// A taken-path-only workload: a committed-memory stride sweep, no NT
/// spawns (the branch has only one cold edge, exhausted immediately).
const TAKEN_STRIDE: &str = r"
    .data
    buf: .word 0
    .code
    main:
        la r9, buf
        li r4, 150000
        mv r10, r9
        addi r8, r9, 16384
    loop:
        sw r4, 0(r10)
        lw r7, 0(r10)
        addi r10, r10, 4
        blt r10, r8, nowrap
        mv r10, r9
    nowrap:
        subi r4, r4, 1
        bgt r4, zero, loop
        li r2, 0
        exit
    ";

/// The engines measured, in row order.
pub const ENGINES: [&str; 4] = ["baseline", "standard", "cmp", "software"];

/// The workloads measured, in row order.
pub const WORKLOADS: [(&str, &str); 2] = [("nt-heavy", NT_HEAVY), ("taken-stride", TAKEN_STRIDE)];

/// Generated-zoo workloads measured alongside the asm hot loops. Their
/// profile is distinct from both: a dispatch loop with frequent short
/// NT-paths that stop at the next `readint` (unsafe event) — syscall-bounded
/// NT work rather than sandbox-bounded. The op stream is long enough that
/// every engine runs to `RUN_BUDGET`, so instruction counts stay
/// mode-independent.
pub const ZOO_WORKLOADS: [&str; 2] = ["zoo:interpreter:1", "zoo:state-machine:1"];

/// Common-op count of the zoo perf input stream (budget-saturating).
const ZOO_PERF_OPS: u32 = 60_000;

/// One engine × workload measurement.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    pub engine: String,
    pub workload: String,
    /// Simulated instructions executed (taken + NT) — deterministic.
    pub instructions: u64,
    /// Simulated cycles of the run — deterministic.
    pub sim_cycles: u64,
    /// NT-paths completed — deterministic (0 for baseline).
    pub nt_paths: u64,
    /// FNV-1a-64 digest of the run's architectural results — deterministic.
    pub digest: String,
    /// Median wall nanoseconds per run — machine-specific, never gated.
    pub wall_ns: u64,
    /// Millions of simulated instructions per host second at the median.
    pub mips: f64,
}

impl ToJson for ThroughputRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("engine", self.engine.to_json()),
            ("workload", self.workload.to_json()),
            ("instructions", self.instructions.to_json()),
            ("sim_cycles", self.sim_cycles.to_json()),
            ("nt_paths", self.nt_paths.to_json()),
            ("digest", self.digest.to_json()),
            ("wall_ns", self.wall_ns.to_json()),
            ("mips", Json::Float((self.mips * 1000.0).round() / 1000.0)),
        ])
    }
}

/// The full report emitted as `BENCH_throughput.json`.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    pub quick: bool,
    pub rows: Vec<ThroughputRow>,
    /// Digest over every row's architectural digest — the one CI gates on.
    pub arch_digest: String,
}

impl ToJson for ThroughputReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", SCHEMA.to_json()),
            ("quick", self.quick.to_json()),
            ("budget", RUN_BUDGET.to_json()),
            (
                "reference",
                Json::obj([
                    (
                        "note",
                        "MIPS are machine-specific (dev machine of the PR-3 rewrite); \
                         only schema and arch_digest are gated"
                            .to_json(),
                    ),
                    (
                        "pre_rewrite_standard_nt_heavy_mips",
                        Json::Float(PRE_REWRITE_STANDARD_NT_HEAVY_MIPS),
                    ),
                    (
                        "post_rewrite_standard_nt_heavy_mips",
                        Json::Float(POST_REWRITE_STANDARD_NT_HEAVY_MIPS),
                    ),
                    (
                        "speedup",
                        Json::Float(
                            ((POST_REWRITE_STANDARD_NT_HEAVY_MIPS
                                / PRE_REWRITE_STANDARD_NT_HEAVY_MIPS.max(1e-9))
                                * 100.0)
                                .round()
                                / 100.0,
                        ),
                    ),
                ]),
            ),
            (
                "rows",
                Json::Arr(self.rows.iter().map(ToJson::to_json).collect()),
            ),
            ("arch_digest", self.arch_digest.to_json()),
        ])
    }
}

/// Architectural summary of one run — everything the digest covers.
struct ArchResult {
    exit: String,
    instructions: u64,
    sim_cycles: u64,
    nt_paths: u64,
    io_output: Vec<u8>,
    monitor_len: usize,
    spawns: u64,
    covered_edges: u32,
}

impl ArchResult {
    fn digest(&self) -> u64 {
        let mut h = fnv1a64(0, self.exit.as_bytes());
        for n in [
            self.instructions,
            self.sim_cycles,
            self.nt_paths,
            self.monitor_len as u64,
            self.spawns,
            u64::from(self.covered_edges),
        ] {
            h = fnv1a64(h, &n.to_le_bytes());
        }
        fnv1a64(h, &self.io_output)
    }

    fn from_px(program: &Program, r: &PxRunResult) -> ArchResult {
        ArchResult {
            exit: r.exit.class().to_owned(),
            instructions: r.stats.taken_instructions + r.stats.nt_instructions,
            sim_cycles: r.cycles,
            nt_paths: r.stats.paths.len() as u64,
            io_output: r.io.output().to_vec(),
            monitor_len: r.monitor.len(),
            spawns: r.stats.spawns,
            covered_edges: r.total_coverage.covered_edges(program),
        }
    }
}

fn px_config() -> PxConfig {
    PxConfig::default()
        .with_max_instructions(RUN_BUDGET)
        .with_counter_threshold(1)
        .with_counter_reset_interval(64)
        .with_max_nt_path_len(2_000)
}

/// Builds `(program, input stream)` for a zoo throughput workload.
fn zoo_program(spec_str: &str) -> (Program, Vec<u8>) {
    let spec = ZooSpec::parse(spec_str).unwrap_or_else(|e| panic!("perf zoo spec {spec_str}: {e}"));
    let w = zoo::generate(&spec);
    let compiled = w
        .compile_for(Tool::Assertions)
        .unwrap_or_else(|e| panic!("perf zoo workload {spec_str}: {e}"));
    (
        compiled.program,
        zoo::input_bytes_n(&spec, 0xC0FFEE, ZOO_PERF_OPS),
    )
}

fn run_engine(engine: &str, program: &Program, input: &[u8]) -> ArchResult {
    let io = IoState::new(input.to_vec(), 0xC0FFEE);
    match engine {
        "baseline" => {
            let r = run_baseline(program, &MachConfig::single_core(), io, RUN_BUDGET);
            ArchResult {
                exit: match r.exit {
                    RunExit::Exited(_) => "exited".to_owned(),
                    other => other.class().to_owned(),
                },
                instructions: r.instructions,
                sim_cycles: r.cycles,
                nt_paths: 0,
                io_output: r.io.output().to_vec(),
                monitor_len: 0,
                spawns: 0,
                covered_edges: r.coverage.covered_edges(program),
            }
        }
        "standard" => {
            let r = run_standard(program, &MachConfig::single_core(), &px_config(), io);
            ArchResult::from_px(program, &r)
        }
        "cmp" => {
            let r = run_cmp(program, &MachConfig::default(), &px_config().cmp(), io);
            ArchResult::from_px(program, &r)
        }
        "software" => {
            let r = run_soft(program, &px_config(), &SoftConfig::default(), io);
            ArchResult::from_px(program, &r.run)
        }
        other => panic!("unknown engine {other:?}"),
    }
}

/// Measures one engine on one workload: `reps` timed runs, median wall time.
fn measure(
    engine: &str,
    workload: &str,
    program: &Program,
    input: &[u8],
    reps: u32,
) -> ThroughputRow {
    let arch = run_engine(engine, program, input);
    let mut samples: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run_engine(engine, program, input));
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    samples.sort_unstable();
    let wall_ns = samples[samples.len() / 2];
    let mips = if wall_ns == 0 {
        0.0
    } else {
        arch.instructions as f64 * 1e3 / wall_ns as f64
    };
    ThroughputRow {
        engine: engine.to_owned(),
        workload: workload.to_owned(),
        instructions: arch.instructions,
        sim_cycles: arch.sim_cycles,
        nt_paths: arch.nt_paths,
        digest: format!("{:016x}", arch.digest()),
        wall_ns,
        mips,
    }
}

/// Runs the full throughput matrix. `quick` only lowers the number of timed
/// repetitions — budgets and digests are identical in both modes.
#[must_use]
pub fn throughput_report(quick: bool) -> ThroughputReport {
    let reps = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    for (wname, src) in WORKLOADS {
        let program = assemble(src).unwrap_or_else(|e| panic!("perf workload {wname}: {e}"));
        for engine in ENGINES {
            rows.push(measure(engine, wname, &program, &[], reps));
        }
    }
    for spec in ZOO_WORKLOADS {
        let (program, input) = zoo_program(spec);
        for engine in ENGINES {
            rows.push(measure(engine, spec, &program, &input, reps));
        }
    }
    let mut h = 0u64;
    for row in &rows {
        h = fnv1a64(h, row.digest.as_bytes());
    }
    ThroughputReport {
        quick,
        rows,
        arch_digest: format!("{h:016x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic_and_mode_independent() {
        let program = assemble(NT_HEAVY).unwrap();
        let a = run_engine("standard", &program, &[]);
        let b = run_engine("standard", &program, &[]);
        assert_eq!(a.digest(), b.digest());
        assert!(a.instructions > 0);
        assert!(a.nt_paths > 0, "nt-heavy must actually spawn NT-paths");
    }

    #[test]
    fn nt_heavy_spends_most_instructions_in_nt_paths() {
        let program = assemble(NT_HEAVY).unwrap();
        let r = run_standard(
            &program,
            &MachConfig::single_core(),
            &px_config(),
            IoState::new(Vec::new(), 0xC0FFEE),
        );
        assert!(
            r.stats.nt_instructions > r.stats.taken_instructions,
            "NT work must dominate: nt={} taken={}",
            r.stats.nt_instructions,
            r.stats.taken_instructions
        );
        assert!(
            r.stats.nt_writes > 10_000,
            "sandbox sees heavy write traffic"
        );
    }

    #[test]
    fn every_engine_produces_a_row_with_nonzero_work() {
        for (wname, src) in WORKLOADS {
            let program = assemble(src).unwrap();
            for engine in ENGINES {
                let arch = run_engine(engine, &program, &[]);
                assert!(arch.instructions > 0, "{engine}/{wname}");
            }
        }
        for spec in ZOO_WORKLOADS {
            let (program, input) = zoo_program(spec);
            for engine in ENGINES {
                let arch = run_engine(engine, &program, &input);
                assert!(arch.instructions > 0, "{engine}/{spec}");
            }
        }
    }

    #[test]
    fn report_json_has_schema_and_digest() {
        // One quick row set is enough to pin the shape (uses the real
        // budgets, so keep it out of the default loop in debug? — it runs
        // in a few seconds and is the tier-1 guard for the emitter shape).
        let report = throughput_report(true);
        let dumped = report.to_json().dump();
        assert!(
            dumped.starts_with(&format!(r#"{{"schema":"{SCHEMA}""#)),
            "{dumped}"
        );
        assert!(dumped.contains(r#""arch_digest":""#));
        assert_eq!(
            report.rows.len(),
            ENGINES.len() * (WORKLOADS.len() + ZOO_WORKLOADS.len())
        );
    }
}
