//! The experiments, one submodule per paper artifact.

pub mod ablations;
pub mod campaign;
pub mod coverage;
pub mod fig3;
pub mod overhead;
pub mod perf;
pub mod sensitivity;
pub mod static_filter;
pub mod tables;
pub mod zoo;

// The fault-injection machinery (E12) moved to `px_campaign::fault` so the
// crash-safe campaign runner, `pxc campaign` and these binaries share one
// implementation; the re-export keeps every historical import path working.
pub use px_campaign::fault;

pub use ablations::{ablation_nt_from_nt, ablation_sandbox};
pub use campaign::{campaign_gate, CampaignGateReport, GATE_MANIFEST};
pub use coverage::coverage;
pub use fig3::fig3;
pub use overhead::overhead;
pub use perf::{throughput_report, ThroughputReport, ThroughputRow};
pub use px_campaign::fault::{run_campaign, run_case, CampaignSummary, FaultCase};
pub use sensitivity::sensitivity;
pub use static_filter::{static_filter, static_filter_summary, StaticFilterRow};
pub use tables::{table3, table4, table5};
pub use zoo::{zoo_report, ZooReport, ZooRow};

use pathexpander::{PxConfig, PxRunResult};
use px_detect::Tool;
use px_lang::CompiledProgram;
use px_mach::{IoState, MachConfig};
use px_workloads::Workload;

/// The fixed seed used throughout the evaluation (all experiments are
/// deterministic).
pub const SEED: u64 = 12345;

/// Instruction safety valve for every run.
pub const BUDGET: u64 = 50_000_000;

pub(crate) fn io_for(w: &Workload, seed: u64) -> IoState {
    IoState::new(w.general_input(seed), seed)
}

pub(crate) fn compile(w: &Workload, tool: Tool) -> CompiledProgram {
    w.compile_for(tool)
        .unwrap_or_else(|e| panic!("{} ({}): {e}", w.name, tool.name()))
}

/// Runs a workload under the standard configuration with its paper config.
pub(crate) fn run_px(
    w: &Workload,
    compiled: &CompiledProgram,
    seed: u64,
    tweak: impl FnOnce(PxConfig) -> PxConfig,
) -> PxRunResult {
    let px = tweak(w.px_config().with_max_instructions(BUDGET));
    pathexpander::run(&compiled.program, &machine_for(&px), &px, io_for(w, seed))
}

pub(crate) fn machine_for(px: &PxConfig) -> MachConfig {
    match px.mode {
        pathexpander::Mode::Standard => MachConfig::single_core(),
        pathexpander::Mode::Cmp => MachConfig::default(),
    }
}

/// The tool a workload's overhead/latency runs use (its first listed tool).
pub(crate) fn primary_tool(w: &Workload) -> Tool {
    w.tools[0]
}
