//! The execution-overhead experiments (E8: standard vs CMP, E9: hardware
//! vs software implementation).

use px_mach::{run_baseline, MachConfig};
use px_soft::{compare_hw_sw, SoftConfig};
use px_util::{par_map, Json, ToJson};
use px_workloads::{all, Workload};

use super::{compile, io_for, primary_tool, run_px, BUDGET, SEED};

/// One application's overhead numbers.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Application name.
    pub app: String,
    /// Baseline (no PathExpander) cycles.
    pub baseline_cycles: u64,
    /// Standard-configuration overhead, as a fraction.
    pub standard: f64,
    /// CMP-option overhead, as a fraction.
    pub cmp: f64,
    /// NT-paths explored in the standard run (the paper's "hundreds to
    /// thousands of new paths per run").
    pub nt_paths: u64,
}

impl ToJson for OverheadRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("baseline_cycles", self.baseline_cycles.to_json()),
            ("standard", self.standard.to_json()),
            ("cmp", self.cmp.to_json()),
            ("nt_paths", self.nt_paths.to_json()),
        ])
    }
}

/// Measures PathExpander execution overhead on every workload.
#[must_use]
pub fn overhead() -> Vec<OverheadRow> {
    par_map(&all(), overhead_row)
}

fn overhead_row(w: &Workload) -> OverheadRow {
    let compiled = compile(w, primary_tool(w));
    let base = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        io_for(w, SEED),
        BUDGET,
    );
    let std_run = run_px(w, &compiled, SEED, |c| c);
    let cmp_run = run_px(w, &compiled, SEED, pathexpander::PxConfig::cmp);
    let b = base.cycles.max(1) as f64;
    OverheadRow {
        app: w.name.to_owned(),
        baseline_cycles: base.cycles,
        standard: (std_run.cycles as f64 / b - 1.0).max(0.0),
        cmp: (cmp_run.cycles as f64 / b - 1.0).max(0.0),
        nt_paths: std_run.stats.spawns,
    }
}

/// Average overheads (standard, CMP) over rows.
#[must_use]
pub fn overhead_averages(rows: &[OverheadRow]) -> (f64, f64) {
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.standard).sum::<f64>() / n,
        rows.iter().map(|r| r.cmp).sum::<f64>() / n,
    )
}

/// One application's hardware-vs-software comparison (E9).
#[derive(Debug, Clone)]
pub struct HwSwRow {
    /// Application name.
    pub app: String,
    /// Hardware standard-configuration overhead.
    pub hw_standard: f64,
    /// Hardware CMP-option overhead.
    pub hw_cmp: f64,
    /// Software (PIN-style) implementation overhead.
    pub software: f64,
    /// Orders of magnitude between software and CMP hardware.
    pub orders_vs_cmp: f64,
}

impl ToJson for HwSwRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("hw_standard", self.hw_standard.to_json()),
            ("hw_cmp", self.hw_cmp.to_json()),
            ("software", self.software.to_json()),
            ("orders_vs_cmp", self.orders_vs_cmp.to_json()),
        ])
    }
}

/// Runs the hardware/software comparison on every workload.
#[must_use]
pub fn hw_vs_sw() -> Vec<HwSwRow> {
    par_map(&all(), |w| {
        let compiled = compile(w, primary_tool(w));
        let px = w.px_config().with_max_instructions(BUDGET);
        let c = compare_hw_sw(
            &compiled.program,
            &MachConfig::default(),
            &px,
            &SoftConfig::default(),
            &io_for(w, SEED),
        );
        HwSwRow {
            app: w.name.to_owned(),
            hw_standard: c.hw_standard_overhead,
            hw_cmp: c.hw_cmp_overhead,
            software: c.soft_overhead,
            orders_vs_cmp: c.orders_vs_cmp(),
        }
    })
}
