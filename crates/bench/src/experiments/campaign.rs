//! **E16 — the campaign crash-safety gate** (robustness; not from the
//! paper).
//!
//! A reduced-scale end-to-end proof that the crash-safe campaign runner
//! keeps its three promises under hostile load:
//!
//! 1. **Nothing is lost, nothing is double-counted.** A ~512-case manifest
//!    mixing deliberately panicking and runaway `chaos` cases with real
//!    fault-injection and zoo cases is run once straight through, and once
//!    killed mid-flight (simulated SIGKILL: journal writes stop dead,
//!    leaving a torn tail) and resumed. Both journals must fold to the
//!    **byte-identical aggregate digest**, and the resumed run must account
//!    for every case exactly once.
//! 2. **Quarantine matches ground truth.** Every chaos case the generator
//!    *says* will panic or run away must appear in quarantine with exactly
//!    that outcome; every clean one must not.
//! 3. **The sandbox holds.** Zero containment violations anywhere.
//!
//! `campaign_gate` is the library entry; the `campaign_gate` binary wires
//! it to `--check` for scripts/verify.sh and CI.

use std::path::PathBuf;

use px_campaign::runner::chaos_truth;
use px_campaign::{run, CampaignConfig, CaseOutcome, Manifest};
use px_util::{hex64, Json, ToJson};

/// The gate manifest: 400 chaos + 64 fault + 2×24 zoo = 512 cases.
pub const GATE_MANIFEST: &str = "chaos:11:400+fault:1:64+zoo:parser:3*8+zoo:recursive:4*8";

/// Gate watchdog: above the fault cases' 60k native budget (so they keep
/// their historical behaviour) and cheap enough that 100 runaway chaos
/// cases cost ~10M simulated instructions.
pub const GATE_TIMEOUT: u64 = 100_000;

/// Where the campaign is killed on the crash leg (past several checkpoint
/// boundaries, mid-manifest).
pub const GATE_KILL_AFTER: u64 = 257;

/// What E16 measured.
#[derive(Debug, Clone)]
pub struct CampaignGateReport {
    /// The manifest exercised.
    pub manifest: String,
    /// Total cases.
    pub total: u64,
    /// Aggregate digest of the uninterrupted run.
    pub digest_straight: u64,
    /// Aggregate digest after kill + resume.
    pub digest_resumed: u64,
    /// Cases recovered from the journal on resume.
    pub resumed_from_journal: u64,
    /// Cases the resume leg ran itself.
    pub resumed_ran: u64,
    /// Work steals across both legs.
    pub steals: u64,
    /// Quarantined cases (kill+resume leg).
    pub quarantined: u64,
    /// Chaos cases whose outcome disagreed with [`chaos_truth`].
    pub chaos_mismatches: u64,
    /// Containment violations anywhere.
    pub violated: u64,
    /// Whether the killed journal really had a torn tail to recover from.
    pub torn_tail_seen: bool,
}

impl CampaignGateReport {
    /// The acceptance criteria, as one predicate.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.digest_straight == self.digest_resumed
            && self.resumed_from_journal + self.resumed_ran == self.total
            && self.chaos_mismatches == 0
            && self.violated == 0
    }

    /// The report as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", "px-bench/campaign-gate-v1".to_json()),
            ("manifest", self.manifest.to_json()),
            ("total", self.total.to_json()),
            ("digest_straight", Json::Str(hex64(self.digest_straight))),
            ("digest_resumed", Json::Str(hex64(self.digest_resumed))),
            ("resumed_from_journal", self.resumed_from_journal.to_json()),
            ("resumed_ran", self.resumed_ran.to_json()),
            ("steals", self.steals.to_json()),
            ("quarantined", self.quarantined.to_json()),
            ("chaos_mismatches", self.chaos_mismatches.to_json()),
            ("violated", self.violated.to_json()),
            ("torn_tail_seen", self.torn_tail_seen.to_json()),
            ("passed", self.passed().to_json()),
        ])
    }
}

fn gate_config(manifest: &Manifest, journal: PathBuf) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(manifest.clone(), journal);
    cfg.timeout = GATE_TIMEOUT;
    cfg.workers = 4;
    cfg.checkpoint_every = 64;
    cfg
}

/// Runs the E16 gate on `manifest_spec` with a kill at `kill_after`.
/// Journals live under the system temp directory, namespaced by pid, and
/// are removed on success.
///
/// # Panics
///
/// On journal I/O or corruption errors (the gate is a test harness; its
/// own failures should be loud).
#[must_use]
pub fn campaign_gate_with(manifest_spec: &str, kill_after: u64) -> CampaignGateReport {
    let manifest = Manifest::parse(manifest_spec).unwrap_or_else(|e| panic!("gate manifest: {e}"));
    let total = manifest.total();
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let straight_path = tmp.join(format!("px-gate-{pid}-straight.ndjson"));
    let crash_path = tmp.join(format!("px-gate-{pid}-crash.ndjson"));
    for p in [&straight_path, &crash_path] {
        let _ = std::fs::remove_file(p);
        let mut q = p.as_os_str().to_owned();
        q.push(".quarantine");
        let _ = std::fs::remove_file(PathBuf::from(q));
    }

    // Leg 1: straight through.
    let straight = run(&gate_config(&manifest, straight_path.clone()))
        .unwrap_or_else(|e| panic!("straight leg: {e}"));
    assert!(straight.complete(), "straight leg must finish");

    // Leg 2: kill mid-flight (torn tail), then resume.
    let mut crash_cfg = gate_config(&manifest, crash_path.clone());
    crash_cfg.kill_after = Some(kill_after);
    let killed = run(&crash_cfg).unwrap_or_else(|e| panic!("kill leg: {e}"));
    assert!(killed.interrupted, "the kill leg must stop early");
    let torn_tail_seen = px_campaign::journal::load(&crash_path)
        .map(|s| s.torn)
        .unwrap_or(false);
    crash_cfg.kill_after = None;
    let resumed = run(&crash_cfg).unwrap_or_else(|e| panic!("resume leg: {e}"));

    // Quarantine vs chaos ground truth (chaos ids lead the manifest).
    let (chaos_seed, chaos_n) = match manifest.gens.first() {
        Some(px_campaign::CaseGen::Chaos { seed, n }) => (*seed, *n),
        _ => panic!("gate manifests start with a chaos generator"),
    };
    let truth = chaos_truth(chaos_seed, chaos_n);
    let mut chaos_mismatches = 0u64;
    for (local, want) in truth.iter().enumerate() {
        let got = resumed
            .quarantined
            .iter()
            .find(|r| r.id == local as u64)
            .map(|r| r.outcome)
            .unwrap_or(CaseOutcome::Done);
        if got != *want {
            chaos_mismatches += 1;
        }
    }

    let report = CampaignGateReport {
        manifest: manifest.to_string(),
        total,
        digest_straight: straight.digest(),
        digest_resumed: resumed.digest(),
        resumed_from_journal: resumed.resumed,
        resumed_ran: resumed.ran,
        steals: straight.steals + killed.steals + resumed.steals,
        quarantined: resumed.quarantined.len() as u64,
        chaos_mismatches,
        violated: resumed.aggregate.of(CaseOutcome::Violated)
            + straight.aggregate.of(CaseOutcome::Violated),
        torn_tail_seen,
    };
    if report.passed() {
        for p in [&straight_path, &crash_path] {
            let _ = std::fs::remove_file(p);
            let mut q = p.as_os_str().to_owned();
            q.push(".quarantine");
            let _ = std::fs::remove_file(PathBuf::from(q));
        }
    }
    report
}

/// The standard E16 gate: [`GATE_MANIFEST`] killed at [`GATE_KILL_AFTER`].
#[must_use]
pub fn campaign_gate() -> CampaignGateReport {
    campaign_gate_with(GATE_MANIFEST, GATE_KILL_AFTER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_gate_passes() {
        // A miniature of the CI gate, sized for the test suite.
        let report = campaign_gate_with("chaos:11:48+fault:1:8", 17);
        assert!(report.passed(), "gate failed: {}", report.to_json().dump());
        assert!(report.quarantined > 0, "chaos must quarantine something");
        assert_eq!(report.resumed_from_journal + report.resumed_ran, 56);
    }
}
