//! The coverage experiments: single-input branch coverage (the paper's
//! 40% → 65% claim) and cumulative coverage over 50 random inputs per
//! application (+19%).

use px_analyze::Analysis;
use px_mach::Coverage;
use px_util::{par_map, Json, ToJson};
use px_workloads::buggy;

use super::{compile, primary_tool, run_px, SEED};

/// One application's single-input coverage.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Application name.
    pub app: String,
    /// Branch coverage of the plain monitored run.
    pub baseline: f64,
    /// Branch coverage with PathExpander (taken + NT edges).
    pub pathexpander: f64,
}

impl ToJson for CoverageRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("baseline", self.baseline.to_json()),
            ("pathexpander", self.pathexpander.to_json()),
        ])
    }
}

/// One application's cumulative-coverage series over multiple inputs.
#[derive(Debug, Clone)]
pub struct CumulativeRow {
    /// Application name.
    pub app: String,
    /// Inputs used.
    pub inputs: usize,
    /// Cumulative baseline coverage after all inputs.
    pub baseline: f64,
    /// Cumulative PathExpander coverage after all inputs.
    pub pathexpander: f64,
    /// `(after_k_inputs, baseline, pathexpander)` growth curve.
    pub curve: Vec<(usize, f64, f64)>,
    /// Statically feasible branch edges (px-analyze), the honest
    /// denominator: edges constant propagation proves unreachable are
    /// excluded.
    pub feasible_edges: u32,
    /// Cumulative baseline coverage over feasible edges only.
    pub baseline_feasible: f64,
    /// Cumulative PathExpander coverage over feasible edges only.
    pub pathexpander_feasible: f64,
}

impl ToJson for CumulativeRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("inputs", self.inputs.to_json()),
            ("baseline", self.baseline.to_json()),
            ("pathexpander", self.pathexpander.to_json()),
            ("curve", self.curve.to_json()),
            // Feasible-denominator fields are appended so every row still
            // leads with "app" (the determinism test pins the row shape).
            ("feasible_edges", Json::UInt(u64::from(self.feasible_edges))),
            ("baseline_feasible", self.baseline_feasible.to_json()),
            (
                "pathexpander_feasible",
                self.pathexpander_feasible.to_json(),
            ),
        ])
    }
}

/// Single-input coverage for the seven buggy applications (experiment E6).
#[must_use]
pub fn coverage() -> Vec<CoverageRow> {
    buggy()
        .iter()
        .map(|w| {
            let tool = primary_tool(w);
            let compiled = compile(w, tool);
            let r = run_px(w, &compiled, SEED, |c| c);
            CoverageRow {
                app: w.name.to_owned(),
                baseline: r.taken_coverage.branch_coverage(&compiled.program),
                pathexpander: r.total_coverage.branch_coverage(&compiled.program),
            }
        })
        .collect()
}

/// Average (baseline, PathExpander) coverage over rows.
#[must_use]
pub fn coverage_averages(rows: &[CoverageRow]) -> (f64, f64) {
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.baseline).sum::<f64>() / n,
        rows.iter().map(|r| r.pathexpander).sum::<f64>() / n,
    )
}

/// Cumulative coverage over `inputs` random inputs per application
/// (experiment E7; the paper uses 50 test cases, §6.3). Applications are
/// processed in parallel.
#[must_use]
pub fn coverage_cumulative(inputs: usize) -> Vec<CumulativeRow> {
    coverage_cumulative_with_budget(inputs, super::BUDGET)
}

/// [`coverage_cumulative`] with an explicit per-run instruction budget.
///
/// A budget small enough to stop a run mid-NT-path still yields
/// byte-identical rows across runs: the engine squashes the live path
/// deterministically before reporting [`px_mach::RunExit::BudgetExhausted`],
/// so truncation never depends on scheduling (pinned by the determinism
/// regression test).
#[must_use]
pub fn coverage_cumulative_with_budget(inputs: usize, budget: u64) -> Vec<CumulativeRow> {
    par_map(&buggy(), |w| {
        let tool = primary_tool(w);
        let compiled = compile(w, tool);
        let analysis = Analysis::of(&compiled.program);
        let feasible = analysis.feasible_edges();
        let mut cum_base = Coverage::for_program(&compiled.program);
        let mut cum_px = Coverage::for_program(&compiled.program);
        let mut curve = Vec::new();
        for k in 0..inputs {
            let r = run_px(w, &compiled, SEED + k as u64, |c| {
                c.with_max_instructions(budget)
            });
            cum_base
                .merge(&r.taken_coverage)
                .expect("cumulative tracker sized for the same program");
            cum_px
                .merge(&r.total_coverage)
                .expect("cumulative tracker sized for the same program");
            if (k + 1) % 10 == 0 || k + 1 == inputs || k == 0 {
                curve.push((
                    k + 1,
                    cum_base.branch_coverage(&compiled.program),
                    cum_px.branch_coverage(&compiled.program),
                ));
            }
        }
        CumulativeRow {
            app: w.name.to_owned(),
            inputs,
            baseline: cum_base.branch_coverage(&compiled.program),
            pathexpander: cum_px.branch_coverage(&compiled.program),
            curve,
            feasible_edges: analysis.feasible_edge_count(),
            baseline_feasible: cum_base.branch_coverage_feasible(&compiled.program, feasible),
            pathexpander_feasible: cum_px.branch_coverage_feasible(&compiled.program, feasible),
        }
    })
}

/// Average cumulative improvement (PathExpander − baseline), in coverage
/// points — the paper's +19%.
#[must_use]
pub fn cumulative_improvement(rows: &[CumulativeRow]) -> f64 {
    let n = rows.len() as f64;
    rows.iter()
        .map(|r| r.pathexpander - r.baseline)
        .sum::<f64>()
        / n
}
