//! Ablations of the design decisions the paper itself evaluated.

use pathexpander::measure_latency;
use px_detect::Tool;
use px_mach::{CacheConfig, MachConfig};
use px_util::{Json, ToJson};
use px_workloads::by_name;

use super::{compile, io_for, run_px, BUDGET, SEED};

/// Result of the §4.2(3) ablation: exploring non-taken edges from inside
/// NT-paths.
#[derive(Debug, Clone)]
pub struct NtFromNtResult {
    /// Application (the paper used 164.gzip).
    pub app: String,
    /// Branch coverage without the ablation.
    pub coverage_off: f64,
    /// Branch coverage with NT-from-NT exploration.
    pub coverage_on: f64,
    /// Fraction of NT-paths crashing before 1000 instructions, ablation off.
    pub crash_ratio_off: f64,
    /// Same, ablation on (the paper saw 5% → 16%).
    pub crash_ratio_on: f64,
}

impl ToJson for NtFromNtResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("coverage_off", self.coverage_off.to_json()),
            ("coverage_on", self.coverage_on.to_json()),
            ("crash_ratio_off", self.crash_ratio_off.to_json()),
            ("crash_ratio_on", self.crash_ratio_on.to_json()),
        ])
    }
}

/// Reproduces the paper's experiment: following non-taken edges from
/// NT-paths buys a little coverage but sharply worsens state consistency.
///
/// The paper ran this on gzip; our gzip kernel is integer-index-only, so
/// forced wrong-side execution rarely produces an architecturally *wild*
/// access. `man` carries the pointer guards (`xref != 0`) whose forced
/// traversal is exactly the crash mechanism the paper observed, so the
/// ablation runs there (substitution documented in DESIGN.md).
#[must_use]
pub fn ablation_nt_from_nt() -> NtFromNtResult {
    let w = by_name("man").expect("man exists");
    let compiled = compile(&w, Tool::Ccured);
    let mut coverage = [0.0f64; 2];
    let mut crash = [0.0f64; 2];
    for (i, explore) in [false, true].into_iter().enumerate() {
        let r = run_px(&w, &compiled, SEED, |c| {
            c.with_explore_nt_from_nt(explore).with_fixes(false)
        });
        coverage[i] = r.total_coverage.branch_coverage(&compiled.program);
        let profile = pathexpander::profile_from_stats(&r.stats, w.max_nt_path_len);
        crash[i] = profile.crash_cdf(1000);
    }
    NtFromNtResult {
        app: w.name.to_owned(),
        coverage_off: coverage[0],
        coverage_on: coverage[1],
        crash_ratio_off: crash[0],
        crash_ratio_on: crash[1],
    }
}

/// One point of the sandbox-capacity ablation (§4.2(2)): the paper buffers
/// NT-path state in the L1 cache rather than a store buffer because the
/// cache "can buffer more updates, allowing NT-Paths to execute for longer".
#[derive(Debug, Clone)]
pub struct SandboxPoint {
    /// Sandbox capacity in bytes (the L1 size used).
    pub capacity_bytes: u32,
    /// Fraction of NT-paths cut short by sandbox overflow.
    pub overflow_ratio: f64,
    /// Mean NT-path length in instructions.
    pub mean_length: f64,
    /// PathExpander branch coverage at this capacity.
    pub coverage: f64,
}

impl ToJson for SandboxPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("capacity_bytes", self.capacity_bytes.to_json()),
            ("overflow_ratio", self.overflow_ratio.to_json()),
            ("mean_length", self.mean_length.to_json()),
            ("coverage", self.coverage.to_json()),
        ])
    }
}

/// Sweeps the sandbox capacity from store-buffer-sized (256 B) up to the
/// paper's 16 KB L1, on 099.go with a long NT-path budget (its influence
/// sweeps write dozens of cache lines, so small sandboxes truncate paths).
#[must_use]
pub fn ablation_sandbox() -> Vec<SandboxPoint> {
    let w = by_name("099.go").expect("go exists");
    let compiled = compile(&w, Tool::Ccured);
    [256u32, 1024, 4096, 16 * 1024]
        .iter()
        .map(|&bytes| {
            let mach = MachConfig {
                cores: 1,
                l1: CacheConfig {
                    size_bytes: bytes,
                    assoc: 4,
                    line_bytes: 32,
                    hit_cycles: 3,
                },
                ..MachConfig::default()
            };
            let px = w
                .px_config()
                .with_max_nt_path_len(10_000)
                .with_max_instructions(BUDGET);
            let r = pathexpander::run_standard(&compiled.program, &mach, &px, io_for(&w, SEED));
            let total_paths = r.stats.paths.len().max(1);
            let overflows = r.stats.stops_of("sandbox-overflow");
            let mean_length = r
                .stats
                .paths
                .iter()
                .map(|p| f64::from(p.executed))
                .sum::<f64>()
                / total_paths as f64;
            SandboxPoint {
                capacity_bytes: bytes,
                overflow_ratio: overflows as f64 / total_paths as f64,
                mean_length,
                coverage: r.total_coverage.branch_coverage(&compiled.program),
            }
        })
        .collect()
}

/// Fix-strategy ablation (design decision D4): no fixing vs boundary fixing
/// vs random-satisfying fixing, measured as NT-only false positives on the
/// `bc` workload.
#[derive(Debug, Clone)]
pub struct FixStrategyResult {
    /// Strategy label.
    pub strategy: String,
    /// NT-only false positives.
    pub false_positives: usize,
    /// Seeded bugs detected.
    pub bugs: usize,
}

impl ToJson for FixStrategyResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.to_json()),
            ("false_positives", self.false_positives.to_json()),
            ("bugs", self.bugs.to_json()),
        ])
    }
}

/// Runs the fix-strategy ablation.
#[must_use]
pub fn ablation_fix_strategy() -> Vec<FixStrategyResult> {
    use px_detect::{classify, report};
    use px_lang::{CompileOptions, FixStrategy};

    let w = by_name("bc").expect("bc exists");
    let tool = Tool::Ccured;
    let bug_lines = w.bug_lines_for(tool);
    let mut results = Vec::new();

    // (label, compile options, engine applies fixes)
    let boundary = tool.compile_options();
    let random = CompileOptions {
        fix_strategy: FixStrategy::RandomSatisfying { seed: 7 },
        ..tool.compile_options()
    };
    let cases: [(&str, &CompileOptions, bool); 4] = [
        ("none", &boundary, false),
        ("boundary", &boundary, true),
        ("random-satisfying", &random, true),
        ("profiled", &boundary, true),
    ];
    for (label, opts, fixes) in cases {
        let mut compiled = px_lang::compile(&w.source, opts).expect("compiles");
        if label == "profiled" {
            let profile = px_lang::refit::collect_branch_profile(
                &compiled.program,
                &MachConfig::single_core(),
                io_for(&w, SEED),
                BUDGET,
            );
            let _ = px_lang::refit_fixes(&mut compiled, &profile);
        }
        let px = w
            .px_config()
            .with_fixes(fixes)
            .with_max_instructions(BUDGET);
        let r = pathexpander::run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &px,
            io_for(&w, SEED),
        );
        let dets = report(&compiled, &r.monitor, tool);
        let c = classify(&dets, &bug_lines, true);
        results.push(FixStrategyResult {
            strategy: label.to_owned(),
            false_positives: c.false_positives(),
            bugs: c.true_positives(),
        });
    }
    results
}

/// Crash-latency sanity helper exposed for the binary: the feasibility
/// profile of an arbitrary workload.
#[must_use]
pub fn latency_profile_of(app: &str) -> pathexpander::LatencyProfile {
    let w = by_name(app).expect("known workload");
    let compiled = compile(&w, Tool::Assertions);
    measure_latency(
        &compiled.program,
        &MachConfig::single_core(),
        io_for(&w, SEED),
        1000,
        BUDGET,
    )
}

/// Results of the two forward-looking extensions the paper sketches.
#[derive(Debug, Clone)]
pub struct ExtensionResults {
    /// Per-app NT-path survival (to 1000 instructions) without OS support.
    pub survival_plain: Vec<(String, f64)>,
    /// Survival with the §3.2 OS-sandbox extension (paper projection: >90%).
    pub survival_os: Vec<(String, f64)>,
    /// Whether bc's hot-entry bug (bc-2) is detected at the default
    /// threshold without the random factor.
    pub bc2_plain: bool,
    /// Whether it is detected with the §7.1(2) random spawn factor.
    pub bc2_random: bool,
}

impl ToJson for ExtensionResults {
    fn to_json(&self) -> Json {
        Json::obj([
            ("survival_plain", self.survival_plain.to_json()),
            ("survival_os", self.survival_os.to_json()),
            ("bc2_plain", self.bc2_plain.to_json()),
            ("bc2_random", self.bc2_random.to_json()),
        ])
    }
}

/// Measures the §3.2 OS-sandbox and §7.1(2) random-factor extensions.
#[must_use]
pub fn extensions() -> ExtensionResults {
    use px_detect::report;

    let mut survival_plain = Vec::new();
    let mut survival_os = Vec::new();
    for name in ["099.go", "164.gzip", "175.vpr"] {
        let w = by_name(name).expect("known workload");
        let compiled = compile(&w, Tool::Assertions);
        for (os, out) in [(false, &mut survival_plain), (true, &mut survival_os)] {
            let mut survived_sum = 0.0;
            let inputs = 10u64;
            for seed in 0..inputs {
                let px = w
                    .px_config()
                    .with_counter_threshold(1)
                    .with_fixes(false)
                    .with_os_sandbox(os)
                    .with_counter_reset_interval(u64::MAX)
                    .with_max_instructions(BUDGET);
                let r = pathexpander::run_standard(
                    &compiled.program,
                    &MachConfig::single_core(),
                    &px,
                    io_for(&w, SEED + seed),
                );
                let profile = pathexpander::profile_from_stats(&r.stats, 1000);
                survived_sum += profile.survived_ratio();
            }
            out.push((w.name.to_owned(), survived_sum / inputs as f64));
        }
    }

    let w = by_name("bc").expect("bc exists");
    let compiled = compile(&w, Tool::Ccured);
    let bug_line = w.marker_line("/*BUG:bc-2*/");
    let detected = |random: Option<u32>| {
        let r = run_px(&w, &compiled, SEED, |c| c.with_random_factor(random));
        report(&compiled, &r.monitor, Tool::Ccured)
            .iter()
            .any(|d| d.line == bug_line && d.on_nt_path)
    };
    ExtensionResults {
        survival_plain,
        survival_os,
        bc2_plain: detected(None),
        bc2_random: detected(Some(8)),
    }
}
