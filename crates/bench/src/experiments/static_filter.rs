//! Experiment E14 (extension): the static NT-spawn filter.
//!
//! Runs every buggy application twice — paper configuration, then the same
//! configuration with `PxConfig::static_nt_filter` set — and reports the
//! spawn reduction next to a digest of each run's *committed* results. The
//! filter only vetoes NT-paths that px-analyze proves must hit an unsafe
//! event within the threshold, so the taken-path digests must be identical:
//! that equality is the row-level correctness gate (asserted by the
//! paper-claims suite), and the vetoed spawns are pure savings.

use pathexpander::PxRunResult;
use px_analyze::Analysis;
use px_mach::Edge;
use px_util::{par_map, Json, ToJson};
use px_workloads::buggy;

use super::{compile, primary_tool, run_px, SEED};

/// Default veto threshold: an NT-path certain to die within 10 instructions
/// cannot reach any coverage the taken path will not reach on its own
/// fall-through.
pub const DEFAULT_THRESHOLD: u32 = 10;

/// One application's filtered-vs-unfiltered comparison.
#[derive(Debug, Clone)]
pub struct StaticFilterRow {
    /// Application name.
    pub app: String,
    /// Veto threshold (instructions).
    pub threshold: u32,
    /// NT-paths spawned without / with the filter.
    pub spawns_base: u64,
    pub spawns_filtered: u64,
    /// Spawns the filter vetoed.
    pub vetoed: u64,
    /// NT instructions executed without / with the filter.
    pub nt_instructions_base: u64,
    pub nt_instructions_filtered: u64,
    /// Total (taken + NT) branch coverage without / with the filter.
    pub coverage_base: f64,
    pub coverage_filtered: f64,
    /// FNV-1a-64 digest of the committed results (exit, output,
    /// taken-path coverage) without / with the filter. Equal by
    /// construction: the filter never touches the taken path.
    pub taken_digest_base: String,
    pub taken_digest_filtered: String,
}

impl ToJson for StaticFilterRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("threshold", Json::UInt(u64::from(self.threshold))),
            ("spawns_base", self.spawns_base.to_json()),
            ("spawns_filtered", self.spawns_filtered.to_json()),
            ("vetoed", self.vetoed.to_json()),
            ("nt_instructions_base", self.nt_instructions_base.to_json()),
            (
                "nt_instructions_filtered",
                self.nt_instructions_filtered.to_json(),
            ),
            ("coverage_base", self.coverage_base.to_json()),
            ("coverage_filtered", self.coverage_filtered.to_json()),
            ("taken_digest_base", self.taken_digest_base.to_json()),
            (
                "taken_digest_filtered",
                self.taken_digest_filtered.to_json(),
            ),
        ])
    }
}

/// Digest of a run's committed (taken-path) results: exit status, program
/// output, and the taken-path coverage bitmap. Cycles and NT statistics are
/// deliberately excluded — those are what the filter is allowed to change.
fn taken_digest(r: &PxRunResult, code_len: usize) -> u64 {
    let mut h = px_util::fnv1a64(0, format!("{:?}", r.exit).as_bytes());
    h = px_util::fnv1a64(h, r.io.output());
    for pc in 0..code_len as u32 {
        let bits = u8::from(r.taken_coverage.covered(pc, Edge::Taken))
            | (u8::from(r.taken_coverage.covered(pc, Edge::NotTaken)) << 1);
        h = px_util::fnv1a64(h, &[bits]);
    }
    h
}

/// Runs the comparison at `threshold` over the buggy applications.
#[must_use]
pub fn static_filter(threshold: u32) -> Vec<StaticFilterRow> {
    par_map(&buggy(), |w| {
        let tool = primary_tool(w);
        let compiled = compile(w, tool);
        let analysis = Analysis::of(&compiled.program);
        let feasible = analysis.feasible_edges();
        let base = run_px(w, &compiled, SEED, |c| c);
        let filtered = run_px(w, &compiled, SEED, |c| {
            c.with_static_nt_filter(Some(threshold))
        });
        let code_len = compiled.program.code.len();
        StaticFilterRow {
            app: w.name.to_owned(),
            threshold,
            spawns_base: base.stats.spawns,
            spawns_filtered: filtered.stats.spawns,
            vetoed: filtered.stats.skipped_static,
            nt_instructions_base: base.stats.nt_instructions,
            nt_instructions_filtered: filtered.stats.nt_instructions,
            coverage_base: base
                .total_coverage
                .branch_coverage_feasible(&compiled.program, feasible),
            coverage_filtered: filtered
                .total_coverage
                .branch_coverage_feasible(&compiled.program, feasible),
            taken_digest_base: format!("{:016x}", taken_digest(&base, code_len)),
            taken_digest_filtered: format!("{:016x}", taken_digest(&filtered, code_len)),
        }
    })
}

/// Summary: total spawns without/with the filter and whether every row's
/// taken digests match.
#[must_use]
pub fn static_filter_summary(rows: &[StaticFilterRow]) -> (u64, u64, bool) {
    let base: u64 = rows.iter().map(|r| r.spawns_base).sum();
    let filtered: u64 = rows.iter().map(|r| r.spawns_filtered).sum();
    let digests_match = rows
        .iter()
        .all(|r| r.taken_digest_base == r.taken_digest_filtered);
    (base, filtered, digests_match)
}
