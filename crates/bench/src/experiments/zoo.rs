//! E15 — the Table 4/5 shape reproduced at zoo scale.
//!
//! The paper evaluates 38 hand-seeded bugs in 7 applications. This
//! experiment runs the same baseline-vs-PathExpander protocol over the
//! generated zoo roster: 28 synthesized families × 4 shapes × up to 8
//! injected bugs each — an order of magnitude more programs and bugs, with
//! machine-checkable ground truth (`expected_detected` per bug instead of
//! a hand-transcribed table).
//!
//! Per family the harness reports, for each detection tool with bugs:
//!
//! * coverage uplift, with *feasible-edge* denominators from px-analyze
//!   (taken-only vs taken+NT covered edges over statically feasible ones);
//! * baseline / standard / CMP true positives against the union of all
//!   injected bug lines (an overflow line trips both CCured's bound check
//!   and iWatcher's red zone — either witness counts, as the paper counts
//!   bugs, not records);
//! * NT-only false positives (the Table 5 column); and
//! * detection latency: the simulated cycle of the first true positive.
//!
//! Everything is simulated time and counters — the whole report is
//! byte-deterministic, which `zoo_claims.rs` gates.

use pathexpander::PxConfig;
use px_analyze::Analysis;
use px_detect::{classify, first_true_positive_cycle, report, Tool};
use px_mach::run_baseline;
use px_util::{Json, ToJson};
use px_workloads::zoo::{self, ZooSpec};
use px_workloads::Workload;

use super::{compile, io_for, run_px, BUDGET, SEED};

/// Per-bug outcome with its ground truth.
#[derive(Debug, Clone)]
pub struct ZooBugOutcome {
    /// Bug id within the family (`"bo-cold"`, `"sd-deep"`, ...).
    pub id: String,
    /// Taxonomy class name.
    pub class: String,
    /// Marker line.
    pub line: u32,
    /// Ground truth: should PathExpander expose it?
    pub expected: bool,
    /// Detected under the standard engine.
    pub detected: bool,
    /// Detected under the CMP engine.
    pub detected_cmp: bool,
}

impl ToJson for ZooBugOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("class", self.class.to_json()),
            ("line", self.line.to_json()),
            ("expected", self.expected.to_json()),
            ("detected", self.detected.to_json()),
            ("detected_cmp", self.detected_cmp.to_json()),
        ])
    }
}

/// One (family, tool) row of the E15 report.
#[derive(Debug, Clone)]
pub struct ZooRow {
    /// Canonical spec string.
    pub spec: String,
    /// Shape name.
    pub shape: String,
    /// Tool this row's runs were compiled for.
    pub tool: String,
    /// Statically feasible edges (the coverage denominator).
    pub feasible_edges: u32,
    /// Feasible edges covered by the taken path alone (= baseline).
    pub taken_covered: u32,
    /// Feasible edges covered including NT-paths.
    pub total_covered: u32,
    /// Bugs evaluated with this tool.
    pub tested: usize,
    /// True positives without PathExpander.
    pub baseline_tp: usize,
    /// True positives under the standard engine.
    pub standard_tp: usize,
    /// True positives under the CMP engine.
    pub cmp_tp: usize,
    /// NT-only false positives under the standard engine (Table 5).
    pub false_positives: usize,
    /// Simulated cycle of the first true positive (standard engine).
    pub first_tp_cycle: Option<u64>,
    /// NT-paths spawned by the standard engine.
    pub spawns: u64,
    /// Per-bug outcomes.
    pub bugs: Vec<ZooBugOutcome>,
}

impl ZooRow {
    /// Coverage uplift in feasible-edge percentage points.
    #[must_use]
    pub fn uplift_points(&self) -> f64 {
        if self.feasible_edges == 0 {
            return 0.0;
        }
        f64::from(self.total_covered - self.taken_covered) / f64::from(self.feasible_edges) * 100.0
    }
}

impl ToJson for ZooRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            ("shape", self.shape.to_json()),
            ("tool", self.tool.to_json()),
            ("feasible_edges", self.feasible_edges.to_json()),
            ("taken_covered", self.taken_covered.to_json()),
            ("total_covered", self.total_covered.to_json()),
            ("uplift_points", self.uplift_points().to_json()),
            ("tested", self.tested.to_json()),
            ("baseline_tp", self.baseline_tp.to_json()),
            ("standard_tp", self.standard_tp.to_json()),
            ("cmp_tp", self.cmp_tp.to_json()),
            ("false_positives", self.false_positives.to_json()),
            (
                "first_tp_cycle",
                self.first_tp_cycle.map_or(Json::Null, Json::UInt),
            ),
            ("spawns", self.spawns.to_json()),
            (
                "bugs",
                Json::Arr(self.bugs.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// The E15 report: every roster family × every tool with bugs.
#[derive(Debug, Clone)]
pub struct ZooReport {
    /// Families evaluated.
    pub families: usize,
    /// Per-(family, tool) rows.
    pub rows: Vec<ZooRow>,
}

impl ZooReport {
    /// `(expected, detected-on-some-engine)` totals over every bug.
    #[must_use]
    pub fn detection_totals(&self) -> (usize, usize) {
        let expected = self
            .rows
            .iter()
            .flat_map(|r| &r.bugs)
            .filter(|b| b.expected)
            .count();
        let detected = self
            .rows
            .iter()
            .flat_map(|r| &r.bugs)
            .filter(|b| b.expected && (b.detected || b.detected_cmp))
            .count();
        (expected, detected)
    }

    /// Distinct bug classes evaluated.
    #[must_use]
    pub fn classes(&self) -> Vec<String> {
        let mut classes: Vec<String> = self
            .rows
            .iter()
            .flat_map(|r| &r.bugs)
            .map(|b| b.class.clone())
            .collect();
        classes.sort();
        classes.dedup();
        classes
    }

    /// Distinct shapes evaluated.
    #[must_use]
    pub fn shapes(&self) -> Vec<String> {
        let mut shapes: Vec<String> = self.rows.iter().map(|r| r.shape.clone()).collect();
        shapes.sort();
        shapes.dedup();
        shapes
    }
}

impl ToJson for ZooReport {
    fn to_json(&self) -> Json {
        let (expected, detected) = self.detection_totals();
        Json::obj([
            ("schema", Json::Str("px-bench/zoo-v1".to_owned())),
            ("families", self.families.to_json()),
            (
                "shapes",
                Json::Arr(self.shapes().iter().map(|s| s.to_json()).collect()),
            ),
            (
                "classes",
                Json::Arr(self.classes().iter().map(|s| s.to_json()).collect()),
            ),
            ("expected_bugs", expected.to_json()),
            ("detected_bugs", detected.to_json()),
            (
                "rows",
                Json::Arr(self.rows.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// Runs E15 over the full roster (or a reduced prefix with `quick`, for CI
/// smoke: two families per shape).
#[must_use]
pub fn zoo_report(quick: bool) -> ZooReport {
    let mut specs = zoo::roster();
    if quick {
        specs.retain(|s| s.seed <= 2);
    }
    let families = specs.len();
    let rows = specs.iter().flat_map(family_rows).collect();
    ZooReport { families, rows }
}

/// Every per-tool row of one family.
fn family_rows(spec: &ZooSpec) -> Vec<ZooRow> {
    let w = zoo::generate(spec);
    let all_lines: Vec<u32> = w.bugs.iter().map(|b| w.marker_line(&b.marker)).collect();
    let mut rows = Vec::new();
    for &tool in &[Tool::Ccured, Tool::Iwatcher, Tool::Assertions] {
        let bugs: Vec<_> = w.bugs.iter().filter(|b| b.tool == tool).collect();
        if bugs.is_empty() {
            continue;
        }
        rows.push(tool_row(spec, &w, tool, &all_lines));
    }
    rows
}

fn tool_row(spec: &ZooSpec, w: &Workload, tool: Tool, all_lines: &[u32]) -> ZooRow {
    let compiled = compile(w, tool);
    let analysis = Analysis::of(&compiled.program);
    let feasible = analysis.feasible_edges();

    let base = run_baseline(
        &compiled.program,
        &px_mach::MachConfig::single_core(),
        io_for(w, SEED),
        BUDGET,
    );
    let base_c = classify(&report(&compiled, &base.monitor, tool), all_lines, false);

    let std_r = run_px(w, &compiled, SEED, |c| c);
    let std_dets = report(&compiled, &std_r.monitor, tool);
    let std_c = classify(&std_dets, all_lines, false);
    let nt_fp = classify(&std_dets, all_lines, true)
        .false_positive_lines
        .len();
    let latency = first_true_positive_cycle(&compiled, &std_r.monitor, tool, all_lines);

    // CMP with an ample outstanding budget, the configuration the engine
    // equivalence suite shows architecturally identical to standard.
    let cmp_r = run_px(w, &compiled, SEED, |c: PxConfig| {
        c.cmp().with_max_outstanding(512)
    });
    let cmp_c = classify(&report(&compiled, &cmp_r.monitor, tool), all_lines, false);

    let outcomes: Vec<ZooBugOutcome> = w
        .bugs
        .iter()
        .filter(|b| b.tool == tool)
        .map(|b| {
            let line = w.marker_line(&b.marker);
            ZooBugOutcome {
                id: b.id.clone(),
                class: zoo::bug_class_of(&b.id)
                    .map_or("?", |c| c.name())
                    .to_owned(),
                line,
                expected: b.escape.expected_detected(),
                detected: std_c.true_positive_lines.contains(&line),
                detected_cmp: cmp_c.true_positive_lines.contains(&line),
            }
        })
        .collect();

    ZooRow {
        spec: spec.to_string(),
        shape: spec.shape.name().to_owned(),
        tool: tool.name().to_owned(),
        feasible_edges: analysis.feasible_edge_count(),
        taken_covered: std_r
            .taken_coverage
            .covered_feasible_edges(&compiled.program, feasible),
        total_covered: std_r
            .total_coverage
            .covered_feasible_edges(&compiled.program, feasible),
        tested: outcomes.len(),
        baseline_tp: base_c.true_positive_lines.len(),
        standard_tp: std_c.true_positive_lines.len(),
        cmp_tp: cmp_c.true_positive_lines.len(),
        false_positives: nt_fp,
        first_tp_cycle: latency,
        spawns: std_r.stats.spawns,
        bugs: outcomes,
    }
}
