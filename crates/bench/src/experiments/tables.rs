//! Tables 3, 4 and 5 of the paper.

use px_detect::{classify, report, Tool};
use px_mach::run_baseline;
use px_util::{Json, ToJson};
use px_workloads::{buggy, by_name, Workload};

use super::{compile, io_for, run_px, BUDGET, SEED};

/// One row of Table 3 (applications and bugs evaluated).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// Lines of (PXC) code.
    pub loc: usize,
    /// Number of tested bugs.
    pub bugs: usize,
    /// Detection tools.
    pub tools: String,
}

impl ToJson for Table3Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("loc", self.loc.to_json()),
            ("bugs", self.bugs.to_json()),
            ("tools", self.tools.to_json()),
        ])
    }
}

/// Regenerates Table 3.
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    buggy()
        .iter()
        .map(|w| Table3Row {
            app: w.name.to_owned(),
            loc: w.loc(),
            bugs: w.bugs.len(),
            tools: w
                .tools
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join(" and "),
        })
        .collect()
}

/// One row of Table 4 (bug detection results).
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Detection method.
    pub tool: String,
    /// Application.
    pub app: String,
    /// Bugs tested with this tool.
    pub tested: usize,
    /// Detected without PathExpander.
    pub baseline: usize,
    /// Detected with PathExpander.
    pub pathexpander: usize,
}

impl ToJson for Table4Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tool", self.tool.to_json()),
            ("app", self.app.to_json()),
            ("tested", self.tested.to_json()),
            ("baseline", self.baseline.to_json()),
            ("pathexpander", self.pathexpander.to_json()),
        ])
    }
}

/// Regenerates Table 4 by actually running every (tool, application) pair
/// with and without PathExpander.
#[must_use]
pub fn table4() -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for tool in [Tool::Ccured, Tool::Iwatcher, Tool::Assertions] {
        for w in buggy() {
            if !w.tools.contains(&tool) || w.bugs_for(tool).is_empty() {
                continue;
            }
            rows.push(table4_row(&w, tool));
        }
    }
    rows
}

fn table4_row(w: &Workload, tool: Tool) -> Table4Row {
    let compiled = compile(w, tool);
    let bug_lines = w.bug_lines_for(tool);

    let base = run_baseline(
        &compiled.program,
        &px_mach::MachConfig::single_core(),
        io_for(w, SEED),
        BUDGET,
    );
    let base_dets = report(&compiled, &base.monitor, tool);
    let base_c = classify(&base_dets, &bug_lines, false);

    let px = run_px(w, &compiled, SEED, |c| c);
    let px_dets = report(&compiled, &px.monitor, tool);
    let px_c = classify(&px_dets, &bug_lines, false);

    Table4Row {
        tool: tool.name().to_owned(),
        app: w.name.to_owned(),
        tested: bug_lines.len(),
        baseline: base_c.true_positives(),
        pathexpander: px_c.true_positives(),
    }
}

/// Totals over Table 4 rows: (tested, baseline detected, PathExpander
/// detected) — the paper's 38 / 0 / 21.
#[must_use]
pub fn table4_totals(rows: &[Table4Row]) -> (usize, usize, usize) {
    rows.iter().fold((0, 0, 0), |(t, b, p), r| {
        (t + r.tested, b + r.baseline, p + r.pathexpander)
    })
}

/// One row of Table 5 (effects of consistency fixing), for one
/// (tool, application) pair.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Detection method.
    pub tool: String,
    /// Application.
    pub app: String,
    /// NT-path false positives before key-variable fixing.
    pub fp_before: usize,
    /// NT-path false positives after fixing.
    pub fp_after: usize,
    /// Seeded bugs detected before fixing.
    pub bugs_before: usize,
    /// Seeded bugs detected after fixing.
    pub bugs_after: usize,
}

impl ToJson for Table5Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tool", self.tool.to_json()),
            ("app", self.app.to_json()),
            ("fp_before", self.fp_before.to_json()),
            ("fp_after", self.fp_after.to_json()),
            ("bugs_before", self.bugs_before.to_json()),
            ("bugs_after", self.bugs_after.to_json()),
        ])
    }
}

/// Regenerates Table 5: the memory-checked applications, with fixing off
/// ("before") and on ("after"). Assertion results are excluded, as in the
/// paper ("the results can be very subjective").
#[must_use]
pub fn table5() -> Vec<Table5Row> {
    let mut rows = Vec::new();
    for tool in [Tool::Ccured, Tool::Iwatcher] {
        for name in ["099.go", "bc", "man", "print_tokens2"] {
            let w = by_name(name).expect("known workload");
            rows.push(table5_row(&w, tool));
        }
    }
    rows
}

fn table5_row(w: &Workload, tool: Tool) -> Table5Row {
    let compiled = compile(w, tool);
    let bug_lines = w.bug_lines_for(tool);
    let mut fp = [0usize; 2];
    let mut bugs = [0usize; 2];
    for (i, fixes) in [false, true].into_iter().enumerate() {
        let r = run_px(w, &compiled, SEED, |c| c.with_fixes(fixes));
        let dets = report(&compiled, &r.monitor, tool);
        let c = classify(&dets, &bug_lines, true);
        fp[i] = c.false_positives();
        bugs[i] = c.true_positives();
    }
    Table5Row {
        tool: tool.name().to_owned(),
        app: w.name.to_owned(),
        fp_before: fp[0],
        fp_after: fp[1],
        bugs_before: bugs[0],
        bugs_after: bugs[1],
    }
}

/// Average false positives (before, after) over Table 5 rows — the paper's
/// 13 → 4.
#[must_use]
pub fn table5_averages(rows: &[Table5Row]) -> (f64, f64) {
    let n = rows.len() as f64;
    let before: usize = rows.iter().map(|r| r.fp_before).sum();
    let after: usize = rows.iter().map(|r| r.fp_after).sum();
    (before as f64 / n, after as f64 / n)
}
