//! Figure 3: Crash-Latency and Unsafe-Latency cumulative distributions
//! (paper §3.2) for 099.go, 164.gzip and 175.vpr.

use pathexpander::measure_latency;
use px_detect::Tool;
use px_util::{Json, ToJson};
use px_workloads::by_name;

use super::{io_for, BUDGET, SEED};

/// The instruction counts at which the CDFs are sampled.
pub const LATENCY_POINTS: [u32; 8] = [5, 10, 25, 50, 100, 250, 500, 1000];

/// One application's Figure 3 panel.
#[derive(Debug, Clone)]
pub struct Fig3Panel {
    /// Application name.
    pub app: String,
    /// NT-paths spawned.
    pub spawned: usize,
    /// `(instructions, crash CDF, unsafe CDF, stopped CDF)` samples.
    pub points: Vec<(u32, f64, f64, f64)>,
    /// Fraction of NT-paths that executed the full 1000 instructions (or
    /// reached the end of the program).
    pub survived: f64,
}

impl ToJson for Fig3Panel {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("spawned", self.spawned.to_json()),
            ("points", self.points.to_json()),
            ("survived", self.survived.to_json()),
        ])
    }
}

/// Inputs aggregated per application (the paper runs the full SPEC inputs;
/// our kernels are smaller, so several random inputs give the CDFs a
/// comparable NT-path sample).
pub const FIG3_INPUTS: u64 = 10;

/// Regenerates Figure 3: spawn an NT-path at every zero-count non-taken
/// edge, no variable fixing, 1000-instruction threshold; aggregated over
/// [`FIG3_INPUTS`] inputs per application.
#[must_use]
pub fn fig3() -> Vec<Fig3Panel> {
    ["099.go", "164.gzip", "175.vpr"]
        .iter()
        .map(|name| {
            let w = by_name(name).expect("known workload");
            // Figure 3 measures the raw program (no checker instrumentation):
            // the assertion build carries no CCured/iWatcher code.
            let compiled = w
                .compile_for(Tool::Assertions)
                .unwrap_or_else(|_| w.compile_for(w.tools[0]).expect("compiles"));
            let mut profile: Option<pathexpander::LatencyProfile> = None;
            for seed in 0..FIG3_INPUTS {
                let p = measure_latency(
                    &compiled.program,
                    &px_mach::MachConfig::single_core(),
                    io_for(&w, SEED + seed),
                    1000,
                    BUDGET,
                );
                match profile.as_mut() {
                    None => profile = Some(p),
                    Some(acc) => {
                        acc.spawned += p.spawned;
                        acc.latencies.extend(p.latencies);
                    }
                }
            }
            let profile = profile.expect("at least one input");
            Fig3Panel {
                app: w.name.to_owned(),
                spawned: profile.spawned,
                points: LATENCY_POINTS
                    .iter()
                    .map(|&n| {
                        (
                            n,
                            profile.crash_cdf(n),
                            profile.unsafe_cdf(n),
                            profile.stopped_cdf(n),
                        )
                    })
                    .collect(),
                survived: profile.survived_ratio(),
            }
        })
        .collect()
}
