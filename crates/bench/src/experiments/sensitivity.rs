//! Parameter-sensitivity experiments (§6.3/§7.6): the effect of
//! `MaxNTPathLength`, `NTPathCounterThreshold` and `MaxNumNTPaths` on
//! coverage and overhead.

use px_mach::{run_baseline, MachConfig};
use px_util::{par_map, Json, ToJson};
use px_workloads::{by_name, Workload};

use super::{compile, io_for, primary_tool, run_px, BUDGET, SEED};

/// Applications used for the sweep (one per family).
pub const SWEEP_APPS: [&str; 3] = ["099.go", "print_tokens2", "164.gzip"];

/// One sweep sample.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Application.
    pub app: String,
    /// Parameter name (`max_nt_path_len`, `counter_threshold`,
    /// `max_outstanding`).
    pub param: String,
    /// Parameter value.
    pub value: u64,
    /// PathExpander branch coverage at this setting.
    pub coverage: f64,
    /// Standard-configuration overhead (CMP overhead for
    /// `max_outstanding`).
    pub overhead: f64,
    /// NT-paths spawned.
    pub spawns: u64,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", self.app.to_json()),
            ("param", self.param.to_json()),
            ("value", self.value.to_json()),
            ("coverage", self.coverage.to_json()),
            ("overhead", self.overhead.to_json()),
            ("spawns", self.spawns.to_json()),
        ])
    }
}

/// Runs all three parameter sweeps.
#[must_use]
pub fn sensitivity() -> Vec<SweepPoint> {
    let apps: Vec<Workload> = SWEEP_APPS
        .iter()
        .map(|n| by_name(n).expect("known"))
        .collect();
    par_map(&apps, sweep_one).into_iter().flatten().collect()
}

fn sweep_one(w: &Workload) -> Vec<SweepPoint> {
    let compiled = compile(w, primary_tool(w));
    let base = run_baseline(
        &compiled.program,
        &MachConfig::single_core(),
        io_for(w, SEED),
        BUDGET,
    );
    let base_cycles = base.cycles.max(1) as f64;
    let mut points = Vec::new();

    for len in [10u32, 100, 1000, 10_000] {
        let r = run_px(w, &compiled, SEED, |c| c.with_max_nt_path_len(len));
        points.push(SweepPoint {
            app: w.name.to_owned(),
            param: "max_nt_path_len".to_owned(),
            value: u64::from(len),
            coverage: r.total_coverage.branch_coverage(&compiled.program),
            overhead: (r.cycles as f64 / base_cycles - 1.0).max(0.0),
            spawns: r.stats.spawns,
        });
    }
    for threshold in [1u8, 5, 15] {
        let r = run_px(w, &compiled, SEED, |c| c.with_counter_threshold(threshold));
        points.push(SweepPoint {
            app: w.name.to_owned(),
            param: "counter_threshold".to_owned(),
            value: u64::from(threshold),
            coverage: r.total_coverage.branch_coverage(&compiled.program),
            overhead: (r.cycles as f64 / base_cycles - 1.0).max(0.0),
            spawns: r.stats.spawns,
        });
    }
    for outstanding in [1u32, 4, 32] {
        let r = run_px(w, &compiled, SEED, |c| {
            pathexpander::PxConfig::cmp(c).with_max_outstanding(outstanding)
        });
        points.push(SweepPoint {
            app: w.name.to_owned(),
            param: "max_outstanding".to_owned(),
            value: u64::from(outstanding),
            coverage: r.total_coverage.branch_coverage(&compiled.program),
            overhead: (r.cycles as f64 / base_cycles - 1.0).max(0.0),
            spawns: r.stats.spawns,
        });
    }
    points
}
