//! # px-detect — dynamic bug detectors and report classification
//!
//! The paper evaluates PathExpander with three dynamic bug-detection
//! methods (§6.2): CCured (software-only checker), iWatcher
//! (hardware-assisted checker) and assertions. In this reproduction the
//! detectors' *mechanisms* live in the compiler (`px-lang` inserts the
//! checks) and the machine (`px-mach` evaluates `check` probes and watch
//! ranges, routing failures to the monitor memory area). This crate provides
//! what sits on top:
//!
//! * [`Tool`] — which detection method a run is using, and the compile
//!   options that configure it;
//! * [`report`] — turning raw [`px_mach::MonitorRecord`]s into deduplicated,
//!   line-attributed [`Detection`]s;
//! * [`classify`] — splitting detections into true positives (they match a
//!   workload's seeded-bug manifest) and false positives, the quantities
//!   Tables 4 and 5 report.

use std::collections::BTreeMap;

use px_isa::CheckKind;
use px_lang::{CompileOptions, CompiledProgram};
use px_mach::{MonitorArea, PathKind, RecordKind};

/// A dynamic bug-detection method (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tool {
    /// CCured-style software-only checker: compiler-inserted bounds and null
    /// checks (costs instructions on every checked access).
    Ccured,
    /// iWatcher-style hardware-assisted checker: red zones guarded by
    /// hardware watch ranges (costs cycles only when triggered).
    Iwatcher,
    /// Programmer-written assertions.
    Assertions,
}

impl Tool {
    /// All three tools.
    pub const ALL: [Tool; 3] = [Tool::Ccured, Tool::Iwatcher, Tool::Assertions];

    /// Display name as the paper writes it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tool::Ccured => "CCured",
            Tool::Iwatcher => "iWatcher",
            Tool::Assertions => "Assertions",
        }
    }

    /// The compile options that arm this detector.
    #[must_use]
    pub fn compile_options(self) -> CompileOptions {
        match self {
            Tool::Ccured => CompileOptions::ccured(),
            Tool::Iwatcher => CompileOptions::iwatcher(),
            Tool::Assertions => CompileOptions::assertions(),
        }
    }

    /// Whether a monitor record belongs to this tool.
    #[must_use]
    pub fn owns(self, kind: &RecordKind) -> bool {
        matches!(
            (self, kind),
            (
                Tool::Ccured,
                RecordKind::Check(CheckKind::CcuredBound | CheckKind::CcuredNull)
            ) | (Tool::Iwatcher, RecordKind::Watch { .. })
                | (Tool::Assertions, RecordKind::Check(CheckKind::Assertion))
        )
    }
}

/// An injectable bug class — the taxonomy the workload zoo seeds programs
/// with.
///
/// The first three are the paper's memory-bug kinds (Table 3's CCured /
/// iWatcher material); the last three are analogues of Rudra's Rust bug
/// classes (panic-safety, unchecked-index-arithmetic, lifetime confusion)
/// expressed as the PXC patterns a dynamic checker can witness. Each class
/// maps to the one detection [`Tool`] whose mechanism observes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugClass {
    /// Write past a buffer's end at a fixed offset (classic overflow).
    BufferOverflow,
    /// Index derived from untrusted input used without a bounds check
    /// (Rudra's unchecked-index analogue, but caught by CCured's inserted
    /// check at runtime).
    UncheckedIndex,
    /// Loop bound off by one: the last iteration runs into the red zone
    /// after the array (iWatcher material).
    OffByOne,
    /// Use of a handle after its slot was released and restamped — the
    /// lifetime-confusion / use-after-free analogue.
    LifetimeConfusion,
    /// An error path applies half of a two-part state update before
    /// bailing out, leaving the invariant broken (Rudra's panic-safety
    /// analogue).
    PanicSafety,
    /// A rare path perturbs redundant state (checksums, mirrored
    /// counters) out of sync — the paper's semantic-bug material.
    StateDesync,
}

impl BugClass {
    /// Every class, in taxonomy order.
    pub const ALL: [BugClass; 6] = [
        BugClass::BufferOverflow,
        BugClass::UncheckedIndex,
        BugClass::OffByOne,
        BugClass::LifetimeConfusion,
        BugClass::PanicSafety,
        BugClass::StateDesync,
    ];

    /// Stable kebab-case name (used in zoo JSON and bug ids).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BugClass::BufferOverflow => "buffer-overflow",
            BugClass::UncheckedIndex => "unchecked-index",
            BugClass::OffByOne => "off-by-one",
            BugClass::LifetimeConfusion => "lifetime-confusion",
            BugClass::PanicSafety => "panic-safety",
            BugClass::StateDesync => "state-desync",
        }
    }

    /// The detection tool whose mechanism witnesses this class.
    #[must_use]
    pub fn tool(self) -> Tool {
        match self {
            BugClass::BufferOverflow | BugClass::UncheckedIndex => Tool::Ccured,
            BugClass::OffByOne => Tool::Iwatcher,
            BugClass::LifetimeConfusion | BugClass::PanicSafety | BugClass::StateDesync => {
                Tool::Assertions
            }
        }
    }

    /// Parses a [`BugClass::name`] rendering.
    #[must_use]
    pub fn parse(name: &str) -> Option<BugClass> {
        BugClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One deduplicated detection, attributed to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// 1-based source line of the offending construct (the check site's line
    /// for `check` probes; the accessing instruction's line for watch hits).
    pub line: u32,
    /// How many raw records collapsed into this detection.
    pub count: u32,
    /// Whether at least one record came from an NT-path.
    pub on_nt_path: bool,
    /// Whether at least one record came from the taken path.
    pub on_taken_path: bool,
}

/// Collapses a run's monitor records into per-line detections for `tool`.
///
/// Deduplication is by source line — one buggy line reported a thousand
/// times is one detection, matching how the paper counts bugs and false
/// positives.
#[must_use]
pub fn report(compiled: &CompiledProgram, monitor: &MonitorArea, tool: Tool) -> Vec<Detection> {
    let mut by_line: BTreeMap<u32, Detection> = BTreeMap::new();
    for rec in monitor.records() {
        if !tool.owns(&rec.kind) {
            continue;
        }
        let line = match rec.kind {
            RecordKind::Check(_) => compiled
                .sites
                .iter()
                .find(|s| s.id == rec.site)
                .map_or_else(|| compiled.program.source_line(rec.pc), |s| s.line),
            RecordKind::Watch { .. } => compiled.program.source_line(rec.pc),
        };
        let entry = by_line.entry(line).or_insert(Detection {
            line,
            count: 0,
            on_nt_path: false,
            on_taken_path: false,
        });
        entry.count += 1;
        match rec.path {
            PathKind::NtPath { .. } => entry.on_nt_path = true,
            PathKind::Taken => entry.on_taken_path = true,
        }
    }
    by_line.into_values().collect()
}

/// The outcome of matching detections against a seeded-bug manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    /// Source lines of seeded bugs that were detected.
    pub true_positive_lines: Vec<u32>,
    /// Detected lines that match no seeded bug — the paper's false
    /// positives ("only those caused by PathExpander", so callers set
    /// `nt_only` to exclude checker-intrinsic taken-path reports).
    pub false_positive_lines: Vec<u32>,
}

impl Classification {
    /// Number of detected seeded bugs.
    #[must_use]
    pub fn true_positives(&self) -> usize {
        self.true_positive_lines.len()
    }

    /// Number of false positives.
    #[must_use]
    pub fn false_positives(&self) -> usize {
        self.false_positive_lines.len()
    }
}

/// Simulated cycle of the first monitor record owned by `tool` whose
/// source line is in `bug_lines` — the run's detection latency for the
/// seeded bugs, in deterministic simulated time. `None` when no seeded bug
/// was detected.
#[must_use]
pub fn first_true_positive_cycle(
    compiled: &CompiledProgram,
    monitor: &MonitorArea,
    tool: Tool,
    bug_lines: &[u32],
) -> Option<u64> {
    monitor
        .records()
        .iter()
        .filter(|rec| tool.owns(&rec.kind))
        .filter(|rec| {
            let line = match rec.kind {
                RecordKind::Check(_) => compiled
                    .sites
                    .iter()
                    .find(|s| s.id == rec.site)
                    .map_or_else(|| compiled.program.source_line(rec.pc), |s| s.line),
                RecordKind::Watch { .. } => compiled.program.source_line(rec.pc),
            };
            bug_lines.contains(&line)
        })
        .map(|rec| rec.cycle)
        .min()
}

/// Classifies detections against the seeded-bug lines of a workload.
///
/// When `nt_only` is true, only detections seen on NT-paths count — this is
/// the Table 5 convention ("false positives caused by PathExpander, not by
/// the dynamic checker itself").
#[must_use]
pub fn classify(detections: &[Detection], bug_lines: &[u32], nt_only: bool) -> Classification {
    let mut c = Classification::default();
    for d in detections {
        if nt_only && !d.on_nt_path {
            continue;
        }
        if bug_lines.contains(&d.line) {
            c.true_positive_lines.push(d.line);
        } else {
            c.false_positive_lines.push(d.line);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_lang::compile;
    use px_mach::{run_baseline, IoState, MachConfig};

    #[test]
    fn tool_record_ownership() {
        let bound = RecordKind::Check(CheckKind::CcuredBound);
        let null = RecordKind::Check(CheckKind::CcuredNull);
        let asrt = RecordKind::Check(CheckKind::Assertion);
        let watch = RecordKind::Watch {
            tag: 1,
            addr: 0,
            is_write: true,
        };
        assert!(Tool::Ccured.owns(&bound));
        assert!(Tool::Ccured.owns(&null));
        assert!(!Tool::Ccured.owns(&asrt));
        assert!(!Tool::Ccured.owns(&watch));
        assert!(Tool::Iwatcher.owns(&watch));
        assert!(!Tool::Iwatcher.owns(&bound));
        assert!(Tool::Assertions.owns(&asrt));
        assert!(!Tool::Assertions.owns(&watch));
    }

    #[test]
    fn report_dedupes_by_line() {
        // An assert that fails on every loop iteration is one detection.
        let compiled = compile(
            "int main() {\n  int i;\n  for (i = 0; i < 5; i = i + 1) {\n    assert(i > 100);\n  }\n  return 0;\n}\n",
            &Tool::Assertions.compile_options(),
        )
        .unwrap();
        let run = run_baseline(
            &compiled.program,
            &MachConfig::single_core(),
            IoState::default(),
            100_000,
        );
        assert_eq!(run.monitor.len(), 5, "five raw records");
        let dets = report(&compiled, &run.monitor, Tool::Assertions);
        assert_eq!(dets.len(), 1, "one deduplicated detection");
        assert_eq!(dets[0].count, 5);
        assert_eq!(dets[0].line, 4);
        assert!(dets[0].on_taken_path);
        assert!(!dets[0].on_nt_path);
    }

    #[test]
    fn classification_splits_tp_fp() {
        let dets = vec![
            Detection {
                line: 10,
                count: 1,
                on_nt_path: true,
                on_taken_path: false,
            },
            Detection {
                line: 20,
                count: 3,
                on_nt_path: true,
                on_taken_path: false,
            },
            Detection {
                line: 30,
                count: 1,
                on_nt_path: false,
                on_taken_path: true,
            },
        ];
        let c = classify(&dets, &[10], false);
        assert_eq!(c.true_positive_lines, vec![10]);
        assert_eq!(c.false_positive_lines, vec![20, 30]);
        let c = classify(&dets, &[10], true);
        assert_eq!(
            c.false_positive_lines,
            vec![20],
            "taken-path-only line excluded"
        );
    }

    #[test]
    fn tool_metadata() {
        assert_eq!(Tool::Ccured.name(), "CCured");
        assert!(Tool::Ccured.compile_options().ccured);
        assert!(Tool::Iwatcher.compile_options().iwatcher);
        let a = Tool::Assertions.compile_options();
        assert!(!a.ccured && !a.iwatcher);
    }
}
