//! # px-soft — the pure-software PathExpander (paper §5)
//!
//! The paper implemented PathExpander a second time with no hardware
//! support, on top of the PIN dynamic binary instrumentation tool, to
//! quantify the value of the hardware: **every branch** is instrumented to
//! maintain exercise counts in a hash table, NT-path spawning saves the
//! processor state through the instrumentation API, **every memory write**
//! during an NT-path is logged into a restore-log, and termination
//! conditions are watched by yet more instrumentation. The result was 3–4
//! orders of magnitude more overhead than the hardware design (abstract,
//! §7).
//!
//! This crate reproduces that comparison. Functionally, the software
//! implementation executes *exactly* the same NT-path exploration as the
//! hardware standard configuration (it reuses the same engine — §7 notes
//! the functional results of both implementations are the same). What
//! differs is **cost**: instead of the Table 2 machine model, a calibrated
//! instrumentation-cost model charges each dynamic event what a PIN-style
//! tool pays for it on a native host.
//!
//! The default constants ([`SoftConfig::default`]) are calibrated against
//! the era's published numbers: tools in the Purify/Valgrind class cost
//! 10–100× (paper §1.2); the software PathExpander instruments every
//! instruction (termination monitoring), every branch (exercise hash) and
//! every NT write (restore-log), putting it at the heavy end on top of the
//! serialized NT-path work.

use pathexpander::{run_standard, PxConfig, PxRunResult};
use px_isa::Program;
use px_mach::{IoState, MachConfig};

/// Cost model of the PIN-style software implementation, in native-host
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftConfig {
    /// Native cycles per instruction of the uninstrumented program.
    pub native_cpi: f64,
    /// Instrumentation dilation: every executed instruction (taken path and
    /// NT-paths) costs this many times its native cost, covering the
    /// always-on analysis code (termination monitoring, dispatch).
    pub dilation: f64,
    /// Extra cycles per dynamic branch: exercise-history hash-table lookup
    /// and the spawn decision.
    pub branch_analysis_cycles: f64,
    /// Extra cycles per NT-path memory write: old-value logging into the
    /// restore-log.
    pub write_log_cycles: f64,
    /// Cycles to spawn an NT-path: processor-state checkpoint through the
    /// instrumentation API plus redirect.
    pub spawn_cycles: f64,
    /// Cycles per logged write at rollback (restore-log replay).
    pub restore_write_cycles: f64,
    /// Fixed cycles per rollback: register-state restore and resume.
    pub rollback_base_cycles: f64,
}

impl Default for SoftConfig {
    fn default() -> SoftConfig {
        SoftConfig {
            native_cpi: 1.2,
            dilation: 35.0,
            branch_analysis_cycles: 120.0,
            write_log_cycles: 60.0,
            spawn_cycles: 8_000.0,
            restore_write_cycles: 40.0,
            rollback_base_cycles: 1_500.0,
        }
    }
}

/// Result of a software-PathExpander run: the functional outcome plus the
/// modeled native-host cost.
#[derive(Debug, Clone)]
pub struct SoftResult {
    /// The functional run (detections, coverage, NT-path statistics) —
    /// identical to the hardware standard configuration's.
    pub run: PxRunResult,
    /// Modeled cycles of the *uninstrumented* program on the native host.
    pub native_cycles: f64,
    /// Modeled cycles of the instrumented, NT-exploring run.
    pub soft_cycles: f64,
}

impl SoftResult {
    /// Slowdown of the software implementation over native execution.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.soft_cycles / self.native_cycles
    }

    /// Overhead (slowdown − 1); the quantity compared against the hardware
    /// implementation's overhead.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.slowdown() - 1.0
    }
}

/// Runs the software PathExpander: same exploration as the hardware
/// standard configuration, costed with the instrumentation model.
#[must_use]
pub fn run_soft(program: &Program, px: &PxConfig, soft: &SoftConfig, io: IoState) -> SoftResult {
    // The functional engine is shared with the hardware implementation; the
    // Table 2 machine parameters only matter for *its* cycle counts, which
    // are discarded here in favour of the instrumentation cost model.
    let mach = MachConfig::single_core();
    let run = run_standard(program, &mach, px, io);
    let s = &run.stats;

    let native_cycles = s.taken_instructions as f64 * soft.native_cpi;
    let executed = (s.taken_instructions + s.nt_instructions) as f64;
    let rollbacks = s.paths.len() as f64;
    let soft_cycles = executed * soft.native_cpi * soft.dilation
        + s.dyn_branches as f64 * soft.branch_analysis_cycles
        + s.nt_writes as f64 * soft.write_log_cycles
        + s.spawns as f64 * soft.spawn_cycles
        + s.nt_writes as f64 * soft.restore_write_cycles
        + rollbacks * soft.rollback_base_cycles;

    SoftResult {
        run,
        native_cycles: native_cycles.max(1.0),
        soft_cycles,
    }
}

/// The headline §7 comparison for one program: hardware overhead (standard
/// and CMP options, Table 2 machine) versus software overhead.
#[derive(Debug, Clone, Copy)]
pub struct HwSwComparison {
    /// Hardware standard-configuration overhead (fraction, e.g. 0.35).
    pub hw_standard_overhead: f64,
    /// Hardware CMP-option overhead.
    pub hw_cmp_overhead: f64,
    /// Software implementation overhead.
    pub soft_overhead: f64,
}

impl HwSwComparison {
    /// log10 of software overhead over CMP-option overhead — the paper's
    /// "3–4 orders of magnitude". Measured CMP overheads below 1% are
    /// clamped to 1% so that the ratio is not dominated by a near-zero
    /// denominator (the paper's smallest per-application CMP overheads are
    /// about a percent).
    #[must_use]
    pub fn orders_vs_cmp(&self) -> f64 {
        (self.soft_overhead / self.hw_cmp_overhead.max(0.01)).log10()
    }

    /// log10 of software overhead over standard-configuration overhead.
    #[must_use]
    pub fn orders_vs_standard(&self) -> f64 {
        (self.soft_overhead / self.hw_standard_overhead.max(1e-6)).log10()
    }
}

/// Runs all three implementations on one program and input.
#[must_use]
pub fn compare_hw_sw(
    program: &Program,
    mach: &MachConfig,
    px: &PxConfig,
    soft: &SoftConfig,
    io: &IoState,
) -> HwSwComparison {
    let baseline = px_mach::run_baseline(program, mach, io.clone(), px.max_instructions);
    let hw_std = run_standard(
        program,
        &MachConfig {
            cores: 1,
            ..mach.clone()
        },
        px,
        io.clone(),
    );
    let hw_cmp = pathexpander::run_cmp(program, mach, &px.clone().cmp(), io.clone());
    let sw = run_soft(program, px, soft, io.clone());
    let base = baseline.cycles.max(1) as f64;
    HwSwComparison {
        hw_standard_overhead: (hw_std.cycles as f64 / base - 1.0).max(0.0),
        hw_cmp_overhead: (hw_cmp.cycles as f64 / base - 1.0).max(0.0),
        soft_overhead: sw.overhead(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_lang::{compile, CompileOptions};

    fn sample() -> px_lang::CompiledProgram {
        compile(
            "
            int work[16];
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 400; i = i + 1) {
                    int slot = i % 16;
                    work[slot] = work[slot] + i;
                    if (work[slot] > 100000) { acc = acc + 1; }
                    if (slot == 13) { acc = acc + work[slot] % 7; }
                }
                printint(acc);
                return 0;
            }
            ",
            &CompileOptions::ccured(),
        )
        .unwrap()
    }

    #[test]
    fn software_run_is_functionally_identical_to_hardware() {
        let compiled = sample();
        let px = PxConfig::default();
        let hw = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &px,
            IoState::default(),
        );
        let sw = run_soft(
            &compiled.program,
            &px,
            &SoftConfig::default(),
            IoState::default(),
        );
        assert_eq!(sw.run.io.output_string(), hw.io.output_string());
        assert_eq!(sw.run.stats.spawns, hw.stats.spawns);
        assert_eq!(sw.run.monitor.len(), hw.monitor.len());
    }

    #[test]
    fn software_overhead_is_orders_of_magnitude_above_hardware() {
        let compiled = sample();
        let px = PxConfig::default();
        let cmp = compare_hw_sw(
            &compiled.program,
            &MachConfig::default(),
            &px,
            &SoftConfig::default(),
            &IoState::default(),
        );
        assert!(
            cmp.soft_overhead > 20.0,
            "software slowdown must be severe: {}",
            cmp.soft_overhead
        );
        assert!(
            cmp.soft_overhead > cmp.hw_standard_overhead * 50.0,
            "software ≫ hardware standard ({} vs {})",
            cmp.soft_overhead,
            cmp.hw_standard_overhead
        );
        assert!(
            cmp.orders_vs_cmp() >= 2.0,
            "≥2 orders vs CMP on this kernel (3–4 on the full apps): {}",
            cmp.orders_vs_cmp()
        );
    }

    #[test]
    fn cost_model_components_add_up() {
        let soft = SoftConfig::default();
        let compiled = sample();
        let sw = run_soft(
            &compiled.program,
            &PxConfig::default(),
            &soft,
            IoState::default(),
        );
        let s = &sw.run.stats;
        let expected =
            (s.taken_instructions + s.nt_instructions) as f64 * soft.native_cpi * soft.dilation
                + s.dyn_branches as f64 * soft.branch_analysis_cycles
                + s.nt_writes as f64 * (soft.write_log_cycles + soft.restore_write_cycles)
                + s.spawns as f64 * soft.spawn_cycles
                + s.paths.len() as f64 * soft.rollback_base_cycles;
        assert!((sw.soft_cycles - expected).abs() < 1e-6);
        assert!(sw.slowdown() > 1.0);
        assert!(sw.overhead() > 0.0);
    }
}
