//! Scoped-thread parallelism on plain `std::thread::scope`.
//!
//! `crossbeam::thread::scope` predates the standard library's scoped
//! threads; the bench sweep harness needs nothing more than a fork-join
//! map, so this is the whole replacement. Work is distributed over a
//! bounded pool (one worker per available core) instead of one thread
//! per item: a 10 000-case fault campaign costs ~10 thread spawns, not
//! 10 000, and each worker amortises its stack over many items.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on a bounded worker pool and collects the
/// results in input order.
///
/// Workers claim items one at a time from a shared atomic cursor, so
/// uneven per-item cost load-balances naturally. Results are merged back
/// into input order after the scope joins — callers observe exactly the
/// same output as a sequential `items.iter().map(f).collect()`.
///
/// # Panics
///
/// Propagates the first worker panic after the scope joins.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let f = &f;
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });

    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (i, r) in chunks.drain(..).flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("par_map covered every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u32> = (0..17).collect();
        assert_eq!(
            par_map(&items, |x| x * 3),
            items.iter().map(|x| x * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(par_map(&[] as &[u32], |x| *x), Vec::<u32>::new());
    }

    #[test]
    fn workers_actually_run_concurrently_on_shared_state() {
        use std::sync::atomic::AtomicU32;
        let counter = AtomicU32::new(0);
        let items = [1u32; 8];
        let out = par_map(&items, |_| counter.fetch_add(1, Ordering::SeqCst));
        let mut seen = out.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn many_more_items_than_cores_still_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        assert_eq!(
            par_map(&items, |x| x * x),
            items.iter().map(|x| x * x).collect::<Vec<_>>()
        );
    }
}
