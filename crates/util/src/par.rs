//! Scoped-thread parallelism on plain `std::thread::scope`.
//!
//! `crossbeam::thread::scope` predates the standard library's scoped
//! threads; the bench sweep harness needs nothing more than a fork-join
//! map, so this is the whole replacement. Work is distributed over a
//! bounded pool (one worker per available core) instead of one thread
//! per item: a 10 000-case fault campaign costs ~10 thread spawns, not
//! 10 000, and each worker amortises its stack over many items.
//!
//! Panics are contained per *item*, not per worker: `f` runs under
//! `catch_unwind`, so one panicking item never takes down a worker's whole
//! share of the sweep. [`par_map`] still panics afterwards (with the first
//! item's panic message and index), while [`try_par_map`] returns the
//! failure as a typed [`WorkerPanic`] and [`par_map_catch`] hands back a
//! per-item `Result` — the campaign runner's quarantine path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A panic captured from one item of a parallel map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, if it was a string (the common `panic!` case).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a `catch_unwind` payload as a message.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Applies `f` to every item on a bounded worker pool and collects the
/// results in input order.
///
/// Workers claim items one at a time from a shared atomic cursor, so
/// uneven per-item cost load-balances naturally. Results are merged back
/// into input order after the scope joins — callers observe exactly the
/// same output as a sequential `items.iter().map(f).collect()`.
///
/// # Panics
///
/// If `f` panicked for any item, re-panics with the lowest-index
/// [`WorkerPanic`]'s message — but only after every *other* item has
/// completed, so one bad item cannot poison unrelated work.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    match try_par_map(items, f) {
        Ok(out) => out,
        Err(p) => panic!("par_map {p}"),
    }
}

/// [`par_map`] with worker panics propagated as a typed error instead of a
/// re-panic: returns the lowest-index [`WorkerPanic`] if any item's closure
/// panicked. All other items still run to completion first.
///
/// # Errors
///
/// The first (lowest-index) captured panic.
pub fn try_par_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Result<Vec<R>, WorkerPanic> {
    let mut first: Option<WorkerPanic> = None;
    let mut out = Vec::with_capacity(items.len());
    for (i, r) in par_map_catch(items, f).into_iter().enumerate() {
        match r {
            Ok(v) => out.push(v),
            Err(p) => {
                if first.as_ref().is_none_or(|w| i < w.index) {
                    first = Some(p);
                }
            }
        }
    }
    match first {
        None => Ok(out),
        Some(p) => Err(p),
    }
}

/// Per-item panic containment: every item maps to `Ok(f(item))` or to the
/// [`WorkerPanic`] its closure raised, in input order. No panic escapes.
pub fn par_map_catch<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<Result<R, WorkerPanic>> {
    let run_one = |i: usize| -> Result<R, WorkerPanic> {
        // `f` is shared by reference across workers; catching a panic
        // cannot observe broken invariants in it (it is `Fn`, not `FnMut`),
        // so the unwind-safety assertion is sound.
        catch_unwind(AssertUnwindSafe(|| f(&items[i]))).map_err(|payload| WorkerPanic {
            index: i,
            message: panic_message(payload.as_ref()),
        })
    };

    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return (0..items.len()).map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, Result<R, WorkerPanic>)>> = std::thread::scope(|s| {
        let next = &next;
        let run_one = &run_one;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, run_one(i)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map workers never panic themselves"))
            .collect()
    });

    let mut out: Vec<Option<Result<R, WorkerPanic>>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (i, r) in chunks.drain(..).flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("par_map covered every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u32> = (0..17).collect();
        assert_eq!(
            par_map(&items, |x| x * 3),
            items.iter().map(|x| x * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(par_map(&[] as &[u32], |x| *x), Vec::<u32>::new());
    }

    #[test]
    fn workers_actually_run_concurrently_on_shared_state() {
        use std::sync::atomic::AtomicU32;
        let counter = AtomicU32::new(0);
        let items = [1u32; 8];
        let out = par_map(&items, |_| counter.fetch_add(1, Ordering::SeqCst));
        let mut seen = out.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn many_more_items_than_cores_still_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        assert_eq!(
            par_map(&items, |x| x * x),
            items.iter().map(|x| x * x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn one_panicking_item_does_not_poison_the_rest() {
        use std::sync::atomic::AtomicU32;
        let completed = AtomicU32::new(0);
        let items: Vec<u32> = (0..64).collect();
        let err = try_par_map(&items, |&x| {
            if x == 13 {
                panic!("injected panic on item {x}");
            }
            completed.fetch_add(1, Ordering::SeqCst);
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 13);
        assert!(err.message.contains("injected panic on item 13"), "{err}");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            63,
            "every other item still completed"
        );
    }

    #[test]
    fn catch_variant_returns_per_item_results() {
        let items: Vec<u32> = (0..8).collect();
        let out = par_map_catch(&items, |&x| {
            assert!(x % 3 != 1, "boom {x}");
            x * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i % 3 == 1 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, i);
                assert!(p.message.contains(&format!("boom {i}")));
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
            }
        }
    }

    #[test]
    fn try_par_map_reports_the_lowest_index_panic() {
        let items: Vec<u32> = (0..32).collect();
        let err = try_par_map(&items, |&x| {
            assert!(!(x == 5 || x == 20), "first is {x}");
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 5, "deterministic: lowest index wins");
    }

    #[test]
    fn par_map_still_panics_with_context() {
        let items = [0u32, 1];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                assert!(x == 0, "only zero survives");
                x
            })
        }))
        .unwrap_err();
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("item 1 panicked"), "{msg}");
    }
}
