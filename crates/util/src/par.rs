//! Scoped-thread parallelism on plain `std::thread::scope`.
//!
//! `crossbeam::thread::scope` predates the standard library's scoped
//! threads; the bench sweep harness needs nothing more than a fork-join
//! map, so this is the whole replacement.

/// Applies `f` to every item on its own scoped thread and collects the
/// results in input order.
///
/// # Panics
///
/// Propagates the first worker panic after the scope joins.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items.iter().map(|item| s.spawn(move || f(item))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u32> = (0..17).collect();
        assert_eq!(
            par_map(&items, |x| x * 3),
            items.iter().map(|x| x * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_input_is_fine() {
        assert_eq!(par_map(&[] as &[u32], |x| *x), Vec::<u32>::new());
    }

    #[test]
    fn workers_actually_run_concurrently_on_shared_state() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = AtomicU32::new(0);
        let items = [1u32; 8];
        let out = par_map(&items, |_| counter.fetch_add(1, Ordering::SeqCst));
        let mut seen = out.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }
}
