//! FNV-1a-64 digests for architectural results.
//!
//! Every determinism gate in the workspace (the E13 throughput rows, the
//! static-filter taken-path comparison, the zoo differential suite) hashes
//! architectural state — exit status, output bytes, coverage bitmaps — with
//! the same chainable FNV-1a-64. It lives here so the bench crate, the core
//! engines and the test suites agree on one definition.

/// FNV-1a-64 offset basis.
const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a-64 prime.
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// Chainable FNV-1a-64: `seed == 0` starts a fresh digest (the offset
/// basis), any other value continues a previous one.
#[must_use]
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { OFFSET } else { seed };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Canonical 16-hex-digit rendering of a digest (what reports print).
#[must_use]
pub fn hex64(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a64(0, b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(0, b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn chaining_equals_concatenation() {
        let one = fnv1a64(0, b"hello world");
        let two = fnv1a64(fnv1a64(0, b"hello "), b"world");
        assert_eq!(one, two);
        assert_eq!(hex64(one).len(), 16);
    }
}
