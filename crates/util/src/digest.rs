//! FNV-1a-64 digests for architectural results.
//!
//! Every determinism gate in the workspace (the E13 throughput rows, the
//! static-filter taken-path comparison, the zoo differential suite) hashes
//! architectural state — exit status, output bytes, coverage bitmaps — with
//! the same chainable FNV-1a-64. It lives here so the bench crate, the core
//! engines and the test suites agree on one definition.

/// FNV-1a-64 offset basis.
const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a-64 prime.
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// Chainable FNV-1a-64: `seed == 0` starts a fresh digest (the offset
/// basis), any other value continues a previous one.
#[must_use]
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 { OFFSET } else { seed };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Canonical 16-hex-digit rendering of a digest (what reports print).
#[must_use]
pub fn hex64(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Lower-case hex encoding of arbitrary bytes (coverage bitmaps in
/// campaign journals).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
        out.push(char::from_digit(u32::from(b & 0xF), 16).unwrap());
    }
    out
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex characters.
#[must_use]
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Parses the [`hex64`] rendering back into a digest.
#[must_use]
pub fn parse_hex64(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a64(0, b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(0, b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn chaining_equals_concatenation() {
        let one = fnv1a64(0, b"hello world");
        let two = fnv1a64(fnv1a64(0, b"hello "), b"world");
        assert_eq!(one, two);
        assert_eq!(hex64(one).len(), 16);
    }

    #[test]
    fn hex_round_trips() {
        for bytes in [&b""[..], &b"\x00\xFF\x10"[..], &b"campaign"[..]] {
            let h = to_hex(bytes);
            assert_eq!(from_hex(&h).as_deref(), Some(bytes));
        }
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex digit");
        let d = 0x0123_4567_89AB_CDEF;
        assert_eq!(parse_hex64(&hex64(d)), Some(d));
        assert_eq!(parse_hex64("123"), None, "must be 16 digits");
    }
}
