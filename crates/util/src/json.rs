//! A hand-rolled JSON value model and emitter.
//!
//! Replaces `serde` for the bench harness's typed result rows. Output is
//! canonical and byte-deterministic: object keys keep insertion order,
//! floats print via Rust's shortest-roundtrip formatting (with a forced
//! `.0` on integral values), and non-finite floats become `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (covers `u64` values above `i64::MAX`).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value; the typed result rows implement this.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty => $variant:ident as $conv:ty),+ $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::$variant(*self as $conv)
            }
        }
    )+};
}

impl_to_json_int!(
    i8 => Int as i64,
    i16 => Int as i64,
    i32 => Int as i64,
    i64 => Int as i64,
    u8 => UInt as u64,
    u16 => UInt as u64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &[T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

macro_rules! impl_to_json_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    )+};
}

impl_to_json_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Serializes a slice of rows as newline-delimited JSON (one object per
/// line) — the interchange format of the regenerator binaries.
pub fn to_json_lines<T: ToJson>(rows: &[T]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json().dump());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Json::obj([
            ("name", "a\"b\\c\nd".to_json()),
            ("xs", vec![1u32, 2, 3].to_json()),
            ("pair", (1u32, 0.5f64).to_json()),
            ("none", Option::<u32>::None.to_json()),
        ]);
        assert_eq!(
            v.dump(),
            r#"{"name":"a\"b\\c\nd","xs":[1,2,3],"pair":[1,0.5],"none":null}"#
        );
    }

    #[test]
    fn float_formatting_is_canonical() {
        assert_eq!(Json::Float(0.0).dump(), "0.0");
        assert_eq!(Json::Float(2.0).dump(), "2.0");
        assert_eq!(Json::Float(-3.5).dump(), "-3.5");
        assert_eq!(Json::Float(0.1).dump(), "0.1");
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.dump(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn json_lines_one_row_per_line() {
        let rows = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(to_json_lines(&rows), "[1,2]\n[3,4]\n");
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        assert_eq!(Json::Str("\u{1}".into()).dump(), "\"\\u0001\"");
    }
}
