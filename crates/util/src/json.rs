//! A hand-rolled JSON value model and emitter.
//!
//! Replaces `serde` for the bench harness's typed result rows. Output is
//! canonical and byte-deterministic: object keys keep insertion order,
//! floats print via Rust's shortest-roundtrip formatting (with a forced
//! `.0` on integral values), and non-finite floats become `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (covers `u64` values above `i64::MAX`).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where a [`parse`] error occurred (byte offset into the input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

/// Parses a JSON document produced by [`Json::dump`] (or any standard
/// compact JSON) back into a [`Json`] value.
///
/// The campaign journal reader uses this to resume from append-only NDJSON
/// records. Numbers without a fraction or exponent parse as `UInt` / `Int`,
/// so a `dump → parse → dump` round trip of emitter output is
/// byte-identical — object keys keep their file order.
///
/// # Errors
///
/// Returns the first syntax error with its byte offset. Trailing
/// non-whitespace after the document is an error (journal lines carry
/// exactly one value each).
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in emitter output
                            // (it only \u-escapes control characters); lone
                            // surrogates map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad float literal"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

impl Json {
    /// Looks up a key in an object (`None` for other variants / missing
    /// keys) — the journal reader's field accessor.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Conversion into a [`Json`] value; the typed result rows implement this.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty => $variant:ident as $conv:ty),+ $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::$variant(*self as $conv)
            }
        }
    )+};
}

impl_to_json_int!(
    i8 => Int as i64,
    i16 => Int as i64,
    i32 => Int as i64,
    i64 => Int as i64,
    u8 => UInt as u64,
    u16 => UInt as u64,
    u32 => UInt as u64,
    u64 => UInt as u64,
    usize => UInt as u64,
);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &[T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

macro_rules! impl_to_json_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    )+};
}

impl_to_json_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Serializes a slice of rows as newline-delimited JSON (one object per
/// line) — the interchange format of the regenerator binaries.
pub fn to_json_lines<T: ToJson>(rows: &[T]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json().dump());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Json::obj([
            ("name", "a\"b\\c\nd".to_json()),
            ("xs", vec![1u32, 2, 3].to_json()),
            ("pair", (1u32, 0.5f64).to_json()),
            ("none", Option::<u32>::None.to_json()),
        ]);
        assert_eq!(
            v.dump(),
            r#"{"name":"a\"b\\c\nd","xs":[1,2,3],"pair":[1,0.5],"none":null}"#
        );
    }

    #[test]
    fn float_formatting_is_canonical() {
        assert_eq!(Json::Float(0.0).dump(), "0.0");
        assert_eq!(Json::Float(2.0).dump(), "2.0");
        assert_eq!(Json::Float(-3.5).dump(), "-3.5");
        assert_eq!(Json::Float(0.1).dump(), "0.1");
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.dump(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn json_lines_one_row_per_line() {
        let rows = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(to_json_lines(&rows), "[1,2]\n[3,4]\n");
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        assert_eq!(Json::Str("\u{1}".into()).dump(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_emitter_output() {
        let v = Json::obj([
            ("name", "a\"b\\c\nd λ".to_json()),
            ("xs", vec![1u32, 2, 3].to_json()),
            ("neg", (-7i64).to_json()),
            ("big", u64::MAX.to_json()),
            ("f", Json::Float(0.25)),
            ("none", Json::Null),
            ("ok", Json::Bool(true)),
            ("nested", Json::obj([("z", Json::Arr(vec![]))])),
        ]);
        let text = v.dump();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.dump(), text, "dump → parse → dump is byte-identical");
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_junk() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } ").unwrap().dump(),
            r#"{"a":[1,2]}"#
        );
        for bad in ["", "{", "[1,", r#"{"a"}"#, "tru", "1 2", r#"{"a":01x}"#] {
            assert!(parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn parse_distinguishes_int_variants() {
        assert_eq!(parse("5").unwrap(), Json::UInt(5));
        assert_eq!(parse("-5").unwrap(), Json::Int(-5));
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"t":"case","id":7,"ok":true,"d":"x"}"#).unwrap();
        assert_eq!(v.get("t").and_then(Json::as_str), Some("case"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("t"), None);
    }
}
