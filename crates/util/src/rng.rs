//! Deterministic pseudo-random number generators.
//!
//! Two generators behind one [`Rng`] trait: [`Xoshiro256`] (xoshiro256**,
//! the workhorse for the property harness) and [`XorShift64Star`] (the
//! exact stream the workload input generators have emitted since the seed
//! commit — changing it would silently change every experiment's inputs).
//! [`SplitMix64`] expands a single `u64` seed into full generator state and
//! derives statistically independent per-case seeds.

/// The golden-ratio increment used by SplitMix64 (and by the workload
/// generators' historical seed scrambling).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A seeded source of uniform pseudo-random values.
///
/// Everything except [`next_u64`](Rng::next_u64) has a default
/// implementation, mirroring the slice of the `rand` API the workspace
/// actually used.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of the 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num`/`den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform boolean.
    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// One element of a slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// SplitMix64: a tiny, well-mixed generator used to expand seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: fast, 256-bit state, excellent statistical quality.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64 (the construction the xoshiro authors recommend).
    #[must_use]
    pub fn seeded(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent generator (for per-case / per-thread use).
    pub fn split(&mut self) -> Xoshiro256 {
        Xoshiro256::seeded(self.next_u64())
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// xorshift64*: the historical workload input generator.
///
/// The seed scrambling (`seed * GOLDEN_GAMMA | 1`) and the shift triple
/// are bit-for-bit the stream `px-workloads::InputGen` has always
/// produced; every experiment's inputs depend on it staying fixed.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> XorShift64Star {
        XorShift64Star {
            state: seed.wrapping_mul(GOLDEN_GAMMA) | 1,
        }
    }
}

impl Rng for XorShift64Star {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn xorshift_matches_historical_input_gen_stream() {
        // Hand-evaluated first draw of the seed-commit InputGen at seed 1:
        // state = GOLDEN_GAMMA | 1, then one xorshift64* round.
        let mut g = XorShift64Star::new(1);
        let mut x = GOLDEN_GAMMA | 1;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        assert_eq!(g.next_u64(), x.wrapping_mul(0x2545_F491_4F6C_DD1D));
    }

    #[test]
    fn below_is_in_range_and_chance_is_sane() {
        let mut g = Xoshiro256::seeded(7);
        for _ in 0..1000 {
            assert!(g.below(13) < 13);
            assert!((1..=7).contains(&g.range_u64(1, 7)));
        }
        assert!(!g.chance(0, 10));
        assert!(g.chance(10, 10));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = Xoshiro256::seeded(9);
        let mut b = a.split();
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }
}
