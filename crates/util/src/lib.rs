//! # px-util — the zero-dependency substrate
//!
//! Everything the workspace previously pulled from the crates.io registry,
//! reimplemented in-tree so the whole reproduction builds and tests fully
//! offline (`cargo build --release --offline && cargo test -q --offline`):
//!
//! * [`rng`] — deterministic PRNGs behind an [`rng::Rng`] trait
//!   (replaces `rand`): SplitMix64 seeding, xoshiro256** for the property
//!   harness, and the exact xorshift64* stream the workload input
//!   generators have always used.
//! * [`prop`] — a minimal property-testing harness (replaces `proptest`):
//!   seeded case generation, size ramping, shrinking-lite, and the
//!   [`px_prop!`] macro.
//! * [`par`] — a scoped-thread parallel map on `std::thread::scope`
//!   (replaces `crossbeam::thread::scope` in the bench sweep harness),
//!   with per-item panic containment ([`try_par_map`], [`par_map_catch`]).
//! * [`pool`] — a work-stealing job pool (per-worker deques, block refill,
//!   bounded streaming results) — the campaign runner's scheduler.
//! * [`json`] — a hand-rolled JSON value model, emitter **and parser** with
//!   deterministic float formatting (replaces `serde` for typed result
//!   rows and the campaign journal reader).
//! * [`bench`] — a self-timing warmup + median-of-N bench harness with
//!   JSON output (replaces `criterion`).
//! * [`digest`] — the chainable FNV-1a-64 every determinism gate hashes
//!   architectural results with.
//!
//! Nothing in here depends on any other workspace crate, so every crate —
//! including `px-isa` at the bottom of the graph — can use it from tests.

pub mod bench;
pub mod digest;
pub mod json;
pub mod par;
pub mod pool;
pub mod prop;
pub mod rng;

pub use digest::{fnv1a64, from_hex, hex64, parse_hex64, to_hex};
pub use json::{Json, ToJson};
pub use par::{panic_message, par_map, par_map_catch, try_par_map, WorkerPanic};
pub use pool::{run_stealing, PoolConfig, PoolRun};
pub use prop::{any_bool, any_i32, any_i64, any_u32, any_u8, just, vec_exact, vec_of, Strategy};
pub use rng::{Rng, SplitMix64, XorShift64Star, Xoshiro256};
