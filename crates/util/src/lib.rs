//! # px-util — the zero-dependency substrate
//!
//! Everything the workspace previously pulled from the crates.io registry,
//! reimplemented in-tree so the whole reproduction builds and tests fully
//! offline (`cargo build --release --offline && cargo test -q --offline`):
//!
//! * [`rng`] — deterministic PRNGs behind an [`rng::Rng`] trait
//!   (replaces `rand`): SplitMix64 seeding, xoshiro256** for the property
//!   harness, and the exact xorshift64* stream the workload input
//!   generators have always used.
//! * [`prop`] — a minimal property-testing harness (replaces `proptest`):
//!   seeded case generation, size ramping, shrinking-lite, and the
//!   [`px_prop!`] macro.
//! * [`par`] — a scoped-thread parallel map on `std::thread::scope`
//!   (replaces `crossbeam::thread::scope` in the bench sweep harness).
//! * [`json`] — a hand-rolled JSON value model and emitter with
//!   deterministic float formatting (replaces `serde` for typed result
//!   rows).
//! * [`bench`] — a self-timing warmup + median-of-N bench harness with
//!   JSON output (replaces `criterion`).
//! * [`digest`] — the chainable FNV-1a-64 every determinism gate hashes
//!   architectural results with.
//!
//! Nothing in here depends on any other workspace crate, so every crate —
//! including `px-isa` at the bottom of the graph — can use it from tests.

pub mod bench;
pub mod digest;
pub mod json;
pub mod par;
pub mod prop;
pub mod rng;

pub use digest::{fnv1a64, hex64};
pub use json::{Json, ToJson};
pub use par::par_map;
pub use prop::{any_bool, any_i32, any_i64, any_u32, any_u8, just, vec_exact, vec_of, Strategy};
pub use rng::{Rng, SplitMix64, XorShift64Star, Xoshiro256};
