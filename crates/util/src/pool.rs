//! A work-stealing job pool — `par_map` grown into a scheduler.
//!
//! [`par_map`](crate::par_map) hands items out one at a time from a single
//! atomic cursor; that is perfect for a fork-join map but gives the caller
//! no backpressure, no cancellation and no way to stream results out while
//! the sweep runs. This module is the campaign runner's substrate:
//!
//! * **Per-worker deques with stealing.** Each worker owns a deque of item
//!   indices and refills it in blocks from a global cursor; when both are
//!   empty it steals the back half of the fullest victim's deque. Blocks
//!   amortise cursor contention at million-item scale, stealing keeps the
//!   pool busy when per-item cost is wildly uneven (one runaway case next
//!   to a thousand fast ones).
//! * **Bounded in-flight results.** Finished items stream through a
//!   `sync_channel` with a fixed bound to a sink running on the caller's
//!   thread — memory stays flat no matter how many items the run covers,
//!   and a slow sink (an fsyncing journal writer) throttles the workers
//!   instead of buffering unboundedly.
//! * **Graceful stop.** When `stop` becomes true, workers finish the item
//!   they are on, drain nothing more, and the run reports how many items
//!   completed. Nothing is lost: the sink has seen every completed item.
//!
//! The pool schedules *indices* (`0..n`); the caller maps them to work.
//! Item order is not preserved — sinks receive `(index, result)` pairs and
//! campaign aggregation is order-insensitive by construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;

/// Pool shape. `Default` sizes it for the current machine.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Indices claimed from the global cursor per refill.
    pub block: usize,
    /// Bound of the in-flight results channel (backpressure depth).
    pub queue_bound: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 0,
            block: 64,
            queue_bound: 256,
        }
    }
}

impl PoolConfig {
    fn resolved_workers(&self, items: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let w = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        w.clamp(1, items.max(1))
    }
}

/// What a [`run_stealing`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRun {
    /// Items completed (== `n` unless stopped early).
    pub completed: usize,
    /// Whether the stop flag cut the run short.
    pub stopped: bool,
    /// Successful steals (scheduler telemetry; 0 on single-worker runs).
    pub steals: u64,
}

/// Runs `work` over the index range `0..n` on a work-stealing pool,
/// streaming `(index, result)` pairs into `sink` on the caller's thread.
///
/// `work` runs on pool workers and must be panic-free (wrap fallible work
/// in `catch_unwind` and make the panic part of `R` — see
/// [`crate::par::par_map_catch`] for the pattern). `sink` observes every
/// completed item exactly once, in completion order.
///
/// Setting `stop` (from the sink, a signal handler, any thread) makes
/// workers finish their current item and claim no more.
pub fn run_stealing<R: Send>(
    n: usize,
    cfg: &PoolConfig,
    stop: &AtomicBool,
    work: impl Fn(usize) -> R + Sync,
    mut sink: impl FnMut(usize, R),
) -> PoolRun {
    if n == 0 {
        return PoolRun {
            completed: 0,
            stopped: stop.load(Ordering::Relaxed),
            steals: 0,
        };
    }
    let workers = cfg.resolved_workers(n);
    let block = cfg.block.max(1);
    let cursor = AtomicUsize::new(0);
    let steals = AtomicU64::new(0);
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();

    let mut completed = 0usize;
    std::thread::scope(|s| {
        let (tx, rx) = sync_channel::<(usize, R)>(cfg.queue_bound.max(1));
        let cursor = &cursor;
        let steals = &steals;
        let deques = &deques;
        let work = &work;
        for me in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let item = next_item(me, deques, cursor, steals, n, block);
                let Some(i) = item else { return };
                // A send only fails if the sink side is gone, which means
                // the scope is unwinding anyway — drop the result.
                if tx.send((i, work(i))).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            completed += 1;
            sink(i, r);
        }
    });

    PoolRun {
        completed,
        stopped: stop.load(Ordering::Relaxed),
        steals: steals.load(Ordering::Relaxed),
    }
}

/// Claims the next index for worker `me`: own deque, then a fresh block
/// from the global cursor, then half of the fullest victim's deque.
fn next_item(
    me: usize,
    deques: &[Mutex<VecDeque<usize>>],
    cursor: &AtomicUsize,
    steals: &AtomicU64,
    n: usize,
    block: usize,
) -> Option<usize> {
    if let Some(i) = deques[me].lock().unwrap().pop_front() {
        return Some(i);
    }
    // Refill from the global cursor in blocks.
    let start = cursor.fetch_add(block, Ordering::Relaxed);
    if start < n {
        let end = (start + block).min(n);
        let mut own = deques[me].lock().unwrap();
        own.extend(start + 1..end);
        return Some(start);
    }
    // Steal the back half of the fullest victim.
    loop {
        let victim = deques
            .iter()
            .enumerate()
            .filter(|&(w, _)| w != me)
            .max_by_key(|(_, d)| d.lock().unwrap().len())?;
        let mut stolen: VecDeque<usize> = {
            let mut d = victim.1.lock().unwrap();
            let keep = d.len() / 2;
            d.split_off(keep)
        };
        let Some(first) = stolen.pop_front() else {
            // Everyone is empty: either all work is claimed (done) or a
            // racing worker emptied the victim between the scan and the
            // lock — rescan until the pool is provably dry.
            if deques.iter().all(|d| d.lock().unwrap().is_empty())
                && cursor.load(Ordering::Relaxed) >= n
            {
                return None;
            }
            continue;
        };
        steals.fetch_add(1, Ordering::Relaxed);
        if !stolen.is_empty() {
            deques[me].lock().unwrap().append(&mut stolen);
        }
        return Some(first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect_indices(n: usize, cfg: &PoolConfig) -> (Vec<usize>, PoolRun) {
        let stop = AtomicBool::new(false);
        let mut seen = Vec::new();
        let run = run_stealing(n, cfg, &stop, |i| i, |_, r| seen.push(r));
        (seen, run)
    }

    #[test]
    fn covers_every_index_exactly_once() {
        for workers in [1, 2, 5] {
            let cfg = PoolConfig {
                workers,
                block: 7,
                queue_bound: 4,
            };
            let (seen, run) = collect_indices(1000, &cfg);
            assert_eq!(run.completed, 1000);
            assert!(!run.stopped);
            let unique: HashSet<usize> = seen.iter().copied().collect();
            assert_eq!(unique.len(), 1000, "workers={workers}: no dup, no loss");
        }
    }

    #[test]
    fn empty_run_is_fine() {
        let (seen, run) = collect_indices(0, &PoolConfig::default());
        assert!(seen.is_empty());
        assert_eq!(run.completed, 0);
    }

    #[test]
    fn stealing_happens_under_skewed_cost() {
        // Give worker 0 a long item first; with a block size covering most
        // of the range, the other workers must steal to finish.
        let cfg = PoolConfig {
            workers: 4,
            block: 400,
            queue_bound: 16,
        };
        let stop = AtomicBool::new(false);
        let mut done = 0usize;
        let run = run_stealing(
            500,
            &cfg,
            &stop,
            |i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                i
            },
            |_, _| done += 1,
        );
        assert_eq!(done, 500);
        assert!(
            run.steals > 0,
            "victims with long deques must get robbed: {run:?}"
        );
    }

    #[test]
    fn stop_flag_cuts_the_run_short_but_loses_nothing_seen() {
        let cfg = PoolConfig {
            workers: 2,
            block: 1,
            queue_bound: 1,
        };
        let stop = AtomicBool::new(false);
        let mut seen = HashSet::new();
        let run = run_stealing(
            10_000,
            &cfg,
            &stop,
            |i| i,
            |_, r| {
                seen.insert(r);
                if seen.len() == 25 {
                    stop.store(true, Ordering::Relaxed);
                }
            },
        );
        assert!(run.stopped);
        assert!(run.completed >= 25, "the stop request itself was observed");
        assert!(
            run.completed < 10_000,
            "run must actually stop early, completed {}",
            run.completed
        );
        assert_eq!(seen.len(), run.completed, "sink saw every completed item");
    }

    #[test]
    fn single_worker_matches_sequential_order() {
        let cfg = PoolConfig {
            workers: 1,
            block: 3,
            queue_bound: 2,
        };
        let (seen, _) = collect_indices(20, &cfg);
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }
}
