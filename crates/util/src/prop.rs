//! A minimal property-testing harness.
//!
//! The shape mirrors the slice of `proptest` the workspace used: a
//! [`Strategy`] describes how to generate a value from a seeded RNG at a
//! given *size* (0 = simplest possible, [`MAX_SIZE`] = fully general), the
//! [`px_prop!`] macro turns `fn name(x in strategy) { body }` items into
//! `#[test]` functions, and failures shrink by regenerating the failing
//! case at progressively smaller sizes ("shrinking-lite") before reporting
//! the smallest reproduction together with the seed that replays it.
//!
//! Assertions inside property bodies are plain `assert!`/`assert_eq!`;
//! the harness catches the panic, shrinks, and re-raises with context.

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{Rng, Xoshiro256, GOLDEN_GAMMA};

/// The largest generation size; case sizes ramp from 1 up to this.
pub const MAX_SIZE: u32 = 100;

/// Harness configuration, overridable from the environment.
#[derive(Debug, Clone)]
pub struct PropConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; every case derives its own stream from it.
    pub seed: u64,
}

impl PropConfig {
    /// The default configuration with `PX_PROP_CASES` / `PX_PROP_SEED`
    /// environment overrides applied.
    #[must_use]
    pub fn from_env() -> PropConfig {
        let cases = std::env::var("PX_PROP_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(96);
        let seed = std::env::var("PX_PROP_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(GOLDEN_GAMMA);
        PropConfig { cases, seed }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .map_or_else(|| s.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value at the given size.
    fn generate(&self, rng: &mut Xoshiro256, size: u32) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous alternatives can share a
    /// `Vec` (proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Xoshiro256, size: u32) -> T {
        (**self).generate(rng, size)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut Xoshiro256, size: u32) -> S::Value {
        (**self).generate(rng, size)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut Xoshiro256, size: u32) -> U {
        (self.f)(self.inner.generate(rng, size))
    }
}

/// Always generates a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct JustValue<T>(pub T);

/// Constructs a [`JustValue`] strategy.
pub fn just<T: Clone + Debug>(value: T) -> JustValue<T> {
    JustValue(value)
}

impl<T: Clone + Debug> Strategy for JustValue<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Xoshiro256, _size: u32) -> T {
        self.0.clone()
    }
}

/// Scales a span by `size` so small sizes generate near the low end.
fn scaled_span(span: u64, size: u32) -> u64 {
    if span <= 1 {
        return span;
    }
    let scaled = (span as u128 * u128::from(size.min(MAX_SIZE)) / u128::from(MAX_SIZE)) as u64;
    scaled.max(1)
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Xoshiro256, size: u32) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.below(scaled_span(span, size).max(1));
                ((self.start as i128) + offset as i128) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Full-range integer strategies; `size` scales the magnitude so shrinking
/// drives values toward zero.
macro_rules! any_int {
    ($name:ident, $t:ty, $bits:expr, $doc:literal) => {
        #[doc = $doc]
        #[must_use]
        pub fn $name() -> impl Strategy<Value = $t> + Clone + 'static {
            AnyInt::<$t> {
                _marker: std::marker::PhantomData,
            }
        }

        impl Strategy for AnyInt<$t> {
            type Value = $t;
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                unused_comparisons
            )]
            fn generate(&self, rng: &mut Xoshiro256, size: u32) -> $t {
                let bits = ($bits * size.min(MAX_SIZE)).div_ceil(MAX_SIZE);
                if bits == 0 {
                    return 0;
                }
                let mask = if bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                let magnitude = rng.next_u64() & mask;
                // Signed types draw a random sign so small sizes still
                // explore negatives.
                let negate = <$t>::MIN < 0 && rng.next_bool();
                if negate {
                    (magnitude as $t).wrapping_neg()
                } else {
                    magnitude as $t
                }
            }
        }
    };
}

/// Generator behind the `any_*` constructors.
#[derive(Debug, Clone)]
pub struct AnyInt<T> {
    _marker: std::marker::PhantomData<T>,
}

any_int!(any_u8, u8, 8, "Any `u8`, magnitude scaled by size.");
any_int!(any_u32, u32, 32, "Any `u32`, magnitude scaled by size.");
any_int!(any_u64, u64, 64, "Any `u64`, magnitude scaled by size.");
any_int!(any_i32, i32, 32, "Any `i32`, magnitude scaled by size.");
any_int!(any_i64, i64, 64, "Any `i64`, magnitude scaled by size.");

/// Uniform boolean strategy.
#[must_use]
pub fn any_bool() -> impl Strategy<Value = bool> + Clone + 'static {
    AnyBool
}

/// Generator behind [`any_bool`].
#[derive(Debug, Clone)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut Xoshiro256, _size: u32) -> bool {
        rng.next_bool()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut Xoshiro256, size: u32) -> Self::Value {
                ($(self.$idx.generate(rng, size),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// `Vec` strategy with a length drawn from `len` (scaled by size).
pub fn vec_of<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// `Vec` strategy with an exact length.
pub fn vec_exact<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len..len + 1,
    }
}

/// See [`vec_of`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Xoshiro256, size: u32) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let len = self.len.start + rng.below(scaled_span(span, size).max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng, size)).collect()
    }
}

/// Picks uniformly among boxed alternatives (proptest's `prop_oneof!`).
pub struct OneOf<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

/// Constructs a [`OneOf`] from boxed alternatives.
///
/// # Panics
///
/// Panics if `alternatives` is empty.
pub fn one_of<T: Debug>(alternatives: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(
        !alternatives.is_empty(),
        "one_of needs at least one alternative"
    );
    OneOf { alternatives }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Xoshiro256, size: u32) -> T {
        rng.choose(&self.alternatives).generate(rng, size)
    }
}

/// `px_oneof![a, b, c]` — uniform choice among strategies generating the
/// same value type; each alternative is boxed.
#[macro_export]
macro_rules! px_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::one_of(vec![$($crate::prop::Strategy::boxed($strat)),+])
    };
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runs `test` against `cases` generated values, shrinking on failure.
///
/// # Panics
///
/// Panics (fails the enclosing `#[test]`) on the first property violation,
/// reporting the smallest failing input found.
pub fn run_prop<S: Strategy>(name: &str, cfg: &PropConfig, strat: &S, test: impl Fn(S::Value)) {
    for case in 0..cfg.cases {
        let case_seed = cfg.seed ^ u64::from(case).wrapping_mul(GOLDEN_GAMMA);
        // Ramp from small cases to fully general ones.
        let size = 1 + MAX_SIZE * case / cfg.cases.max(1);
        if let Some(message) = run_once(strat, case_seed, size, &test) {
            let (min_size, min_value, min_message) = shrink(strat, case_seed, size, message, &test);
            panic!(
                "property `{name}` failed on case {case}/{} (seed {:#x})\n\
                 minimal failing input (size {min_size}): {min_value}\n\
                 failure: {min_message}\n\
                 replay with PX_PROP_SEED={:#x}",
                cfg.cases, cfg.seed, cfg.seed,
            );
        }
    }
}

/// Generates at (`case_seed`, `size`) and runs the test once; `Some(panic
/// message)` on failure.
fn run_once<S: Strategy>(
    strat: &S,
    case_seed: u64,
    size: u32,
    test: impl Fn(S::Value),
) -> Option<String> {
    let mut rng = Xoshiro256::seeded(case_seed);
    let value = strat.generate(&mut rng, size);
    catch_unwind(AssertUnwindSafe(|| test(value)))
        .err()
        .map(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned())
        })
}

/// Shrinking-lite: regenerate the failing case at smaller sizes (same
/// seed), keeping the smallest size that still fails.
fn shrink<S: Strategy>(
    strat: &S,
    case_seed: u64,
    failed_size: u32,
    failed_message: String,
    test: impl Fn(S::Value),
) -> (u32, String, String) {
    let mut best_size = failed_size;
    let mut best_message = failed_message;
    let mut candidate = failed_size / 2;
    loop {
        match run_once(strat, case_seed, candidate, &test) {
            Some(message) => {
                best_size = candidate;
                best_message = message;
                if candidate == 0 {
                    break;
                }
                candidate /= 2;
            }
            None => {
                // Halving overshot; probe linearly just below the best.
                if candidate + 1 >= best_size {
                    break;
                }
                candidate = best_size - 1;
            }
        }
    }
    let mut rng = Xoshiro256::seeded(case_seed);
    let value = strat.generate(&mut rng, best_size);
    (best_size, format!("{value:?}"), best_message)
}

/// Defines property tests.
///
/// ```ignore
/// px_util::px_prop! {
///     fn addition_commutes(a in any_i32(), b in any_i32()) {
///         assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
///
/// An optional leading `cases = N;` overrides the case count for every
/// property in the block.
#[macro_export]
macro_rules! px_prop {
    (cases = $n:expr; $($rest:tt)*) => {
        $crate::__px_prop_items!($n; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__px_prop_items!(0; $($rest)*);
    };
}

/// Implementation detail of [`px_prop!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __px_prop_items {
    ($cases:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let mut __cfg = $crate::prop::PropConfig::from_env();
            #[allow(unused_comparisons)]
            if $cases > 0 {
                __cfg.cases = $cases;
            }
            $crate::prop::run_prop(
                stringify!($name),
                &__cfg,
                &($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::__px_prop_items!($cases; $($rest)*);
    };
    ($cases:expr;) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::px_prop! {
        fn ranges_respect_bounds(x in 10u32..20, y in -5i32..5) {
            assert!((10..20).contains(&x));
            assert!((-5..5).contains(&y));
        }

        fn vec_lengths_respect_bounds(v in vec_of(any_u8(), 2..6)) {
            assert!((2..6).contains(&v.len()));
        }

        fn one_of_only_yields_alternatives(x in crate::px_oneof![just(1u32), just(7u32)]) {
            assert!(x == 1 || x == 7);
        }

        fn map_applies(x in (0u32..10).prop_map(|v| v * 2)) {
            assert!(x % 2 == 0 && x < 20);
        }
    }

    crate::px_prop! {
        cases = 17;
        fn case_override_applies(_x in any_bool()) {
            // Counted via the seed determinism test below; body just runs.
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (any_i32(), vec_of(0u8..9, 1..8));
        let gen_at = |seed: u64| {
            let mut rng = Xoshiro256::seeded(seed);
            format!("{:?}", strat.generate(&mut rng, 60))
        };
        assert_eq!(gen_at(5), gen_at(5));
        assert_ne!(gen_at(5), gen_at(6));
    }

    #[test]
    fn failures_shrink_and_report() {
        let cfg = PropConfig { cases: 64, seed: 1 };
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_prop("demo", &cfg, &(0u32..1000,), |(x,)| {
                assert!(x < 50, "too big: {x}");
            });
        }));
        let message = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string payload"),
        };
        assert!(message.contains("property `demo` failed"), "{message}");
        assert!(message.contains("PX_PROP_SEED"), "{message}");
        assert!(message.contains("too big"), "{message}");
    }

    #[test]
    fn size_zero_generates_simplest_values() {
        let mut rng = Xoshiro256::seeded(3);
        assert_eq!(any_i32().generate(&mut rng, 0), 0);
        assert_eq!(
            vec_of(any_u8(), 0..10).generate(&mut rng, 0),
            Vec::<u8>::new()
        );
        assert_eq!((5u32..100).generate(&mut rng, 0), 5);
    }
}
