//! Property tests: the binary encoding round-trips exactly, and the
//! assembler/disassembler agree on every instruction it can print.
//!
//! Runs on the in-tree `px_util` property harness (`px_prop!`); strategies
//! cover **all instruction forms** of the PXVM-32 ISA.

use px_isa::{
    decode, decode_program, encode, encode_program, AluOp, BranchCond, CheckKind, Instruction, Reg,
    SyscallCode, Width,
};
use px_util::prop::{any_i32, any_u32, any_u8, just, vec_exact, vec_of, BoxedStrategy, Strategy};
use px_util::{px_oneof, px_prop};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_width() -> BoxedStrategy<Width> {
    px_oneof![just(Width::Byte), just(Width::Word)].boxed()
}

fn arb_alu_op() -> BoxedStrategy<AluOp> {
    px_oneof![
        just(AluOp::Add),
        just(AluOp::Sub),
        just(AluOp::Mul),
        just(AluOp::Div),
        just(AluOp::Rem),
        just(AluOp::And),
        just(AluOp::Or),
        just(AluOp::Xor),
        just(AluOp::Shl),
        just(AluOp::Shr),
        just(AluOp::Sar),
        just(AluOp::Slt),
        just(AluOp::Sltu),
        just(AluOp::Sle),
        just(AluOp::Seq),
        just(AluOp::Sne),
    ]
    .boxed()
}

fn arb_cond() -> BoxedStrategy<BranchCond> {
    px_oneof![
        just(BranchCond::Eq),
        just(BranchCond::Ne),
        just(BranchCond::Lt),
        just(BranchCond::Ge),
        just(BranchCond::Le),
        just(BranchCond::Gt),
    ]
    .boxed()
}

fn arb_syscall() -> BoxedStrategy<SyscallCode> {
    px_oneof![
        just(SyscallCode::Exit),
        just(SyscallCode::PutChar),
        just(SyscallCode::GetChar),
        just(SyscallCode::PrintInt),
        just(SyscallCode::ReadInt),
        just(SyscallCode::Rand),
        just(SyscallCode::Time),
    ]
    .boxed()
}

fn arb_check_kind() -> BoxedStrategy<CheckKind> {
    px_oneof![
        just(CheckKind::Assertion),
        just(CheckKind::CcuredBound),
        just(CheckKind::CcuredNull),
    ]
    .boxed()
}

fn arb_instruction() -> BoxedStrategy<Instruction> {
    px_oneof![
        just(Instruction::Nop),
        just(Instruction::Ret),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Alu { op, rd, rs1, rs2 }),
        (arb_alu_op(), arb_reg(), arb_reg(), any_i32())
            .prop_map(|(op, rd, rs1, imm)| Instruction::AluI { op, rd, rs1, imm }),
        (arb_width(), arb_reg(), arb_reg(), any_i32()).prop_map(|(width, rd, base, offset)| {
            Instruction::Load {
                width,
                rd,
                base,
                offset,
            }
        }),
        (arb_width(), arb_reg(), arb_reg(), any_i32()).prop_map(|(width, rs, base, offset)| {
            Instruction::Store {
                width,
                rs,
                base,
                offset,
            }
        }),
        (arb_cond(), arb_reg(), arb_reg(), any_u32()).prop_map(|(cond, rs1, rs2, target)| {
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            }
        }),
        any_u32().prop_map(|target| Instruction::Jump { target }),
        any_u32().prop_map(|target| Instruction::Call { target }),
        arb_syscall().prop_map(|code| Instruction::Syscall { code }),
        (arb_check_kind(), arb_reg(), any_u32())
            .prop_map(|(kind, cond, site)| Instruction::Check { kind, cond, site }),
        (arb_reg(), arb_reg(), any_u32()).prop_map(|(base, len, tag)| Instruction::SetWatch {
            base,
            len,
            tag
        }),
        any_u32().prop_map(|tag| Instruction::ClearWatch { tag }),
        (arb_reg(), any_i32()).prop_map(|(rd, imm)| Instruction::PMovI { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instruction::PMov { rd, rs }),
        (arb_alu_op(), arb_reg(), arb_reg(), any_i32())
            .prop_map(|(op, rd, rs1, imm)| Instruction::PAluI { op, rd, rs1, imm }),
        (arb_width(), arb_reg(), arb_reg(), any_i32()).prop_map(|(width, rs, base, offset)| {
            Instruction::PStore {
                width,
                rs,
                base,
                offset,
            }
        }),
    ]
    .boxed()
}

px_prop! {
    fn encode_decode_round_trip(insn in arb_instruction()) {
        assert_eq!(decode(&encode(insn)).unwrap(), insn);
    }

    fn program_encoding_round_trip(code in vec_of(arb_instruction(), 0..64)) {
        let bytes = encode_program(&code);
        assert_eq!(bytes.len(), code.len() * px_isa::ENCODED_LEN);
        assert_eq!(decode_program(&bytes).unwrap(), code);
    }

    fn decode_never_panics(bytes in vec_exact(any_u8(), px_isa::ENCODED_LEN)) {
        let arr: [u8; px_isa::ENCODED_LEN] = bytes.try_into().unwrap();
        let _ = decode(&arr); // must not panic, may error
    }

    fn alu_eval_total_except_divrem_by_zero(op in arb_alu_op(), a in any_i32(), b in any_i32()) {
        let result = op.eval(a, b);
        let by_zero = matches!(op, AluOp::Div | AluOp::Rem) && b == 0;
        assert_eq!(result.is_none(), by_zero);
    }

    fn branch_negate_flips(cond in arb_cond(), a in any_i32(), b in any_i32()) {
        assert_eq!(cond.eval(a, b), !cond.negate().eval(a, b));
    }

    fn any_instruction_prints_and_reassembles(insn in arb_instruction()) {
        let text = format!(".code\nmain:\n  {insn}\n");
        let program = px_isa::asm::assemble(&text)
            .unwrap_or_else(|e| panic!("`{insn}` failed to assemble: {e}"));
        assert_eq!(program.code[0], insn);
    }

    fn mutated_streams_never_panic(
        code in vec_of(arb_instruction(), 1..32),
        pos in any_u32(),
        bit in (0u8..8),
    ) {
        // Flip one bit anywhere in a valid encoded stream: decoding must
        // either succeed (the mutation landed in a don't-care or produced
        // another valid instruction) or report a typed DecodeError — never
        // panic, never loop.
        let mut bytes = encode_program(&code);
        let pos = pos as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        match decode_program(&bytes) {
            Ok(decoded) => assert_eq!(decoded.len(), code.len()),
            Err(
                px_isa::DecodeError::BadOpcode(_)
                | px_isa::DecodeError::BadRegister(_)
                | px_isa::DecodeError::BadSelector(_),
            ) => {}
            Err(e) => panic!("single-bit flip cannot change the length: {e}"),
        }
    }

    fn truncated_streams_report_bad_length(
        code in vec_of(arb_instruction(), 1..32),
        cut in any_u32(),
    ) {
        // Chop the stream at a non-instruction boundary: decode_program must
        // reject it with BadLength (carrying the truncated length), not read
        // past the end or decode a prefix silently.
        let bytes = encode_program(&code);
        let cut = cut as usize % bytes.len();
        if cut.is_multiple_of(px_isa::ENCODED_LEN) {
            // A whole-instruction prefix is a valid (shorter) program.
            let prefix = decode_program(&bytes[..cut]).unwrap();
            assert_eq!(&prefix, &code[..cut / px_isa::ENCODED_LEN]);
        } else {
            assert_eq!(
                decode_program(&bytes[..cut]).unwrap_err(),
                px_isa::DecodeError::BadLength(cut)
            );
        }
    }

    fn assembled_streams_encode_and_decode(code in vec_of(arb_instruction(), 1..48)) {
        // Disassemble a whole stream, reassemble it, then push it through the
        // binary encoding: three representations, one program.
        let mut text = String::from(".code\nmain:\n");
        for insn in &code {
            text.push_str(&format!("  {insn}\n"));
        }
        let program = px_isa::asm::assemble(&text)
            .unwrap_or_else(|e| panic!("assembly failed: {e}"));
        assert_eq!(&program.code, &code);
        let bytes = encode_program(&program.code);
        assert_eq!(decode_program(&bytes).unwrap(), code);
    }
}

#[test]
fn display_then_reassemble_round_trips() {
    // Instructions printed by the disassembler reassemble to themselves when
    // wrapped in a trivial program (targets use `@index` literals).
    let insns = [
        Instruction::Alu {
            op: AluOp::Sltu,
            rd: Reg::new(3),
            rs1: Reg::new(4),
            rs2: Reg::new(5),
        },
        Instruction::AluI {
            op: AluOp::Sar,
            rd: Reg::new(6),
            rs1: Reg::new(7),
            imm: -9,
        },
        Instruction::Load {
            width: Width::Byte,
            rd: Reg::new(8),
            base: Reg::SP,
            offset: 16,
        },
        Instruction::Store {
            width: Width::Word,
            rs: Reg::new(9),
            base: Reg::FP,
            offset: -4,
        },
        Instruction::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::ZERO,
            target: 0,
        },
        Instruction::Jump { target: 1 },
        Instruction::Call { target: 0 },
        Instruction::Ret,
        Instruction::Syscall {
            code: SyscallCode::Rand,
        },
        Instruction::Check {
            kind: CheckKind::CcuredNull,
            cond: Reg::new(2),
            site: 7,
        },
        Instruction::SetWatch {
            base: Reg::new(3),
            len: Reg::new(4),
            tag: 8,
        },
        Instruction::ClearWatch { tag: 8 },
        Instruction::PMovI {
            rd: Reg::new(5),
            imm: 11,
        },
        Instruction::PMov {
            rd: Reg::new(6),
            rs: Reg::new(7),
        },
        Instruction::PAluI {
            op: AluOp::Sub,
            rd: Reg::new(8),
            rs1: Reg::new(9),
            imm: 1,
        },
        Instruction::PStore {
            width: Width::Byte,
            rs: Reg::new(1),
            base: Reg::new(2),
            offset: 3,
        },
        Instruction::Nop,
    ];
    for insn in insns {
        let text = format!(".code\nmain:\n  {insn}\n");
        let program = px_isa::asm::assemble(&text).unwrap_or_else(|e| {
            panic!("failed to reassemble `{insn}`: {e}");
        });
        assert_eq!(program.code[0], insn, "`{insn}` did not round-trip");
    }
}
