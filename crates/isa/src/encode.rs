//! Fixed-width binary encoding of PXVM-32 instructions.
//!
//! Every instruction occupies [`ENCODED_LEN`] = 12 bytes:
//! `[opcode, a, b, c, imm: i32 LE, ext: u32 LE]`. The encoding is exact:
//! [`decode`]`(`[`encode`]`(i)) == i` for every instruction (verified by a
//! property test).

use core::fmt;

use crate::insn::{AluOp, BranchCond, CheckKind, Instruction, SyscallCode, Width};
use crate::reg::Reg;

/// Encoded length of one instruction, in bytes.
pub const ENCODED_LEN: usize = 12;

const OP_NOP: u8 = 0;
const OP_ALU: u8 = 1;
const OP_ALUI: u8 = 2;
const OP_LOAD: u8 = 3;
const OP_STORE: u8 = 4;
const OP_BRANCH: u8 = 5;
const OP_JUMP: u8 = 6;
const OP_CALL: u8 = 7;
const OP_RET: u8 = 8;
const OP_SYSCALL: u8 = 9;
const OP_CHECK: u8 = 10;
const OP_SETWATCH: u8 = 11;
const OP_CLEARWATCH: u8 = 12;
const OP_PMOVI: u8 = 13;
const OP_PMOV: u8 = 14;
const OP_PALUI: u8 = 15;
const OP_PSTORE: u8 = 16;

/// Error produced when decoding malformed instruction bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte slice is not a multiple of [`ENCODED_LEN`].
    BadLength(usize),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A register field exceeds 31.
    BadRegister(u8),
    /// A sub-operation selector (ALU op, branch condition, width, syscall,
    /// check kind) is out of range.
    BadSelector(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadLength(n) => {
                write!(f, "encoded length {n} is not a multiple of {ENCODED_LEN}")
            }
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeError::BadSelector(s) => write!(f, "selector {s} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn width_code(w: Width) -> u8 {
    match w {
        Width::Byte => 0,
        Width::Word => 1,
    }
}

fn decode_width(c: u8) -> Result<Width, DecodeError> {
    match c {
        0 => Ok(Width::Byte),
        1 => Ok(Width::Word),
        _ => Err(DecodeError::BadSelector(c)),
    }
}

fn alu_code(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|&o| o == op).expect("in ALL") as u8
}

fn decode_alu(c: u8) -> Result<AluOp, DecodeError> {
    AluOp::ALL
        .get(c as usize)
        .copied()
        .ok_or(DecodeError::BadSelector(c))
}

fn cond_code(c: BranchCond) -> u8 {
    BranchCond::ALL
        .iter()
        .position(|&o| o == c)
        .expect("in ALL") as u8
}

fn decode_cond(c: u8) -> Result<BranchCond, DecodeError> {
    BranchCond::ALL
        .get(c as usize)
        .copied()
        .ok_or(DecodeError::BadSelector(c))
}

fn sys_code(c: SyscallCode) -> u8 {
    SyscallCode::ALL
        .iter()
        .position(|&o| o == c)
        .expect("in ALL") as u8
}

fn decode_sys(c: u8) -> Result<SyscallCode, DecodeError> {
    SyscallCode::ALL
        .get(c as usize)
        .copied()
        .ok_or(DecodeError::BadSelector(c))
}

fn check_code(c: CheckKind) -> u8 {
    CheckKind::ALL.iter().position(|&o| o == c).expect("in ALL") as u8
}

fn decode_check(c: u8) -> Result<CheckKind, DecodeError> {
    CheckKind::ALL
        .get(c as usize)
        .copied()
        .ok_or(DecodeError::BadSelector(c))
}

fn decode_reg(r: u8) -> Result<Reg, DecodeError> {
    Reg::try_new(r).ok_or(DecodeError::BadRegister(r))
}

struct Fields {
    op: u8,
    a: u8,
    b: u8,
    c: u8,
    imm: i32,
    ext: u32,
}

impl Fields {
    fn new(op: u8) -> Fields {
        Fields {
            op,
            a: 0,
            b: 0,
            c: 0,
            imm: 0,
            ext: 0,
        }
    }

    fn to_bytes(&self) -> [u8; ENCODED_LEN] {
        let mut out = [0u8; ENCODED_LEN];
        out[0] = self.op;
        out[1] = self.a;
        out[2] = self.b;
        out[3] = self.c;
        out[4..8].copy_from_slice(&self.imm.to_le_bytes());
        out[8..12].copy_from_slice(&self.ext.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8; ENCODED_LEN]) -> Fields {
        Fields {
            op: bytes[0],
            a: bytes[1],
            b: bytes[2],
            c: bytes[3],
            imm: i32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            ext: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
        }
    }
}

/// Encodes one instruction into its 12-byte binary form.
#[must_use]
pub fn encode(insn: Instruction) -> [u8; ENCODED_LEN] {
    let mut f;
    match insn {
        Instruction::Nop => f = Fields::new(OP_NOP),
        Instruction::Alu { op, rd, rs1, rs2 } => {
            f = Fields::new(OP_ALU);
            f.a = rd.raw();
            f.b = rs1.raw();
            f.c = rs2.raw();
            f.ext = u32::from(alu_code(op));
        }
        Instruction::AluI { op, rd, rs1, imm } => {
            f = Fields::new(OP_ALUI);
            f.a = rd.raw();
            f.b = rs1.raw();
            f.c = alu_code(op);
            f.imm = imm;
        }
        Instruction::Load {
            width,
            rd,
            base,
            offset,
        } => {
            f = Fields::new(OP_LOAD);
            f.a = rd.raw();
            f.b = base.raw();
            f.c = width_code(width);
            f.imm = offset;
        }
        Instruction::Store {
            width,
            rs,
            base,
            offset,
        } => {
            f = Fields::new(OP_STORE);
            f.a = rs.raw();
            f.b = base.raw();
            f.c = width_code(width);
            f.imm = offset;
        }
        Instruction::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            f = Fields::new(OP_BRANCH);
            f.a = cond_code(cond);
            f.b = rs1.raw();
            f.c = rs2.raw();
            f.ext = target;
        }
        Instruction::Jump { target } => {
            f = Fields::new(OP_JUMP);
            f.ext = target;
        }
        Instruction::Call { target } => {
            f = Fields::new(OP_CALL);
            f.ext = target;
        }
        Instruction::Ret => f = Fields::new(OP_RET),
        Instruction::Syscall { code } => {
            f = Fields::new(OP_SYSCALL);
            f.a = sys_code(code);
        }
        Instruction::Check { kind, cond, site } => {
            f = Fields::new(OP_CHECK);
            f.a = check_code(kind);
            f.b = cond.raw();
            f.ext = site;
        }
        Instruction::SetWatch { base, len, tag } => {
            f = Fields::new(OP_SETWATCH);
            f.a = base.raw();
            f.b = len.raw();
            f.ext = tag;
        }
        Instruction::ClearWatch { tag } => {
            f = Fields::new(OP_CLEARWATCH);
            f.ext = tag;
        }
        Instruction::PMovI { rd, imm } => {
            f = Fields::new(OP_PMOVI);
            f.a = rd.raw();
            f.imm = imm;
        }
        Instruction::PMov { rd, rs } => {
            f = Fields::new(OP_PMOV);
            f.a = rd.raw();
            f.b = rs.raw();
        }
        Instruction::PAluI { op, rd, rs1, imm } => {
            f = Fields::new(OP_PALUI);
            f.a = rd.raw();
            f.b = rs1.raw();
            f.c = alu_code(op);
            f.imm = imm;
        }
        Instruction::PStore {
            width,
            rs,
            base,
            offset,
        } => {
            f = Fields::new(OP_PSTORE);
            f.a = rs.raw();
            f.b = base.raw();
            f.c = width_code(width);
            f.imm = offset;
        }
    }
    f.to_bytes()
}

/// Decodes one instruction from its 12-byte binary form.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes or out-of-range register or
/// selector fields.
pub fn decode(bytes: &[u8; ENCODED_LEN]) -> Result<Instruction, DecodeError> {
    let f = Fields::from_bytes(bytes);
    Ok(match f.op {
        OP_NOP => Instruction::Nop,
        OP_ALU => Instruction::Alu {
            op: decode_alu(u8::try_from(f.ext).map_err(|_| DecodeError::BadSelector(255))?)?,
            rd: decode_reg(f.a)?,
            rs1: decode_reg(f.b)?,
            rs2: decode_reg(f.c)?,
        },
        OP_ALUI => Instruction::AluI {
            op: decode_alu(f.c)?,
            rd: decode_reg(f.a)?,
            rs1: decode_reg(f.b)?,
            imm: f.imm,
        },
        OP_LOAD => Instruction::Load {
            width: decode_width(f.c)?,
            rd: decode_reg(f.a)?,
            base: decode_reg(f.b)?,
            offset: f.imm,
        },
        OP_STORE => Instruction::Store {
            width: decode_width(f.c)?,
            rs: decode_reg(f.a)?,
            base: decode_reg(f.b)?,
            offset: f.imm,
        },
        OP_BRANCH => Instruction::Branch {
            cond: decode_cond(f.a)?,
            rs1: decode_reg(f.b)?,
            rs2: decode_reg(f.c)?,
            target: f.ext,
        },
        OP_JUMP => Instruction::Jump { target: f.ext },
        OP_CALL => Instruction::Call { target: f.ext },
        OP_RET => Instruction::Ret,
        OP_SYSCALL => Instruction::Syscall {
            code: decode_sys(f.a)?,
        },
        OP_CHECK => Instruction::Check {
            kind: decode_check(f.a)?,
            cond: decode_reg(f.b)?,
            site: f.ext,
        },
        OP_SETWATCH => Instruction::SetWatch {
            base: decode_reg(f.a)?,
            len: decode_reg(f.b)?,
            tag: f.ext,
        },
        OP_CLEARWATCH => Instruction::ClearWatch { tag: f.ext },
        OP_PMOVI => Instruction::PMovI {
            rd: decode_reg(f.a)?,
            imm: f.imm,
        },
        OP_PMOV => Instruction::PMov {
            rd: decode_reg(f.a)?,
            rs: decode_reg(f.b)?,
        },
        OP_PALUI => Instruction::PAluI {
            op: decode_alu(f.c)?,
            rd: decode_reg(f.a)?,
            rs1: decode_reg(f.b)?,
            imm: f.imm,
        },
        OP_PSTORE => Instruction::PStore {
            width: decode_width(f.c)?,
            rs: decode_reg(f.a)?,
            base: decode_reg(f.b)?,
            offset: f.imm,
        },
        op => return Err(DecodeError::BadOpcode(op)),
    })
}

/// Encodes a whole instruction stream.
#[must_use]
pub fn encode_program(code: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(code.len() * ENCODED_LEN);
    for &insn in code {
        out.extend_from_slice(&encode(insn));
    }
    out
}

/// Decodes a whole instruction stream.
///
/// # Errors
///
/// Returns [`DecodeError::BadLength`] when `bytes` is not a multiple of
/// [`ENCODED_LEN`], or the first per-instruction error encountered.
pub fn decode_program(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
    if !bytes.len().is_multiple_of(ENCODED_LEN) {
        return Err(DecodeError::BadLength(bytes.len()));
    }
    bytes
        .chunks_exact(ENCODED_LEN)
        .map(|chunk| decode(chunk.try_into().expect("exact chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let insns = [
            Instruction::Nop,
            Instruction::Ret,
            Instruction::Alu {
                op: AluOp::Xor,
                rd: Reg::new(3),
                rs1: Reg::new(4),
                rs2: Reg::new(5),
            },
            Instruction::Branch {
                cond: BranchCond::Le,
                rs1: Reg::new(9),
                rs2: Reg::ZERO,
                target: 0xDEAD,
            },
            Instruction::Check {
                kind: CheckKind::CcuredBound,
                cond: Reg::new(7),
                site: 42,
            },
            Instruction::PStore {
                width: Width::Word,
                rs: Reg::new(2),
                base: Reg::FP,
                offset: -12,
            },
        ];
        for insn in insns {
            assert_eq!(decode(&encode(insn)).unwrap(), insn, "{insn}");
        }
    }

    #[test]
    fn program_round_trip_and_bad_length() {
        let code = vec![Instruction::Nop, Instruction::Ret];
        let bytes = encode_program(&code);
        assert_eq!(decode_program(&bytes).unwrap(), code);
        assert_eq!(
            decode_program(&bytes[..ENCODED_LEN + 1]).unwrap_err(),
            DecodeError::BadLength(ENCODED_LEN + 1)
        );
    }

    #[test]
    fn bad_opcode_and_fields_rejected() {
        let mut bytes = [0u8; ENCODED_LEN];
        bytes[0] = 0xFF;
        assert_eq!(decode(&bytes).unwrap_err(), DecodeError::BadOpcode(0xFF));

        let mut bytes = encode(Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
        });
        bytes[1] = 77; // rd out of range
        assert_eq!(decode(&bytes).unwrap_err(), DecodeError::BadRegister(77));

        let mut bytes = encode(Instruction::Syscall {
            code: SyscallCode::Exit,
        });
        bytes[1] = 200; // selector out of range
        assert_eq!(decode(&bytes).unwrap_err(), DecodeError::BadSelector(200));
    }
}
