//! # px-isa — the PXVM-32 instruction set
//!
//! PXVM-32 is a small 32-bit RISC instruction set designed for the
//! PathExpander reproduction. It plays the role that MIPS played for the
//! paper's SESC-derived simulator: a fixed-width, easily decoded ISA that the
//! `px-lang` compiler targets and the `px-mach` machine executes.
//!
//! The ISA contains everything PathExpander's hardware design needs:
//!
//! * ordinary ALU / load / store / branch / call instructions,
//! * **predicated variable-fixing instructions** ([`Instruction::PMovI`],
//!   [`Instruction::PMov`], [`Instruction::PAluI`], [`Instruction::PStore`])
//!   that execute only at the entrance of a non-taken path (paper §4.4),
//! * **checker instructions** ([`Instruction::Check`]) used by the CCured- and
//!   assertion-style detectors: their reports go to the monitor memory area
//!   and survive NT-path squashes (paper §6.2),
//! * **watchpoint instructions** ([`Instruction::SetWatch`],
//!   [`Instruction::ClearWatch`]) used by the iWatcher-style detector,
//! * system calls, which are the "unsafe events" that terminate an NT-path
//!   (paper §4.2).
//!
//! Instructions are identified by instruction index (the program counter is an
//! index into [`Program::code`]), and a binary 12-byte encoding with an exact
//! round-trip ([`encode`]/[`decode`]) is provided so the machine can model a
//! real instruction memory. A textual assembler ([`asm::assemble`]) and
//! disassembler ([`core::fmt::Display`] on [`Instruction`]) round out the
//! toolchain.
//!
//! ## Example
//!
//! ```
//! use px_isa::asm;
//!
//! let program = asm::assemble(
//!     r#"
//!     .code
//!     main:
//!         li   r1, 7
//!         li   r2, 35
//!         add  r1, r1, r2
//!         exit
//!     "#,
//! )?;
//! assert_eq!(program.code.len(), 4);
//! assert_eq!(program.entry, 0);
//! # Ok::<(), px_isa::asm::AsmError>(())
//! ```

pub mod asm;
mod encode;
mod insn;
mod program;
mod reg;

pub use encode::{decode, decode_program, encode, encode_program, DecodeError, ENCODED_LEN};
pub use insn::{AluOp, BranchCond, CheckKind, Instruction, SyscallCode, Width};
pub use program::{
    DataItem, Program, ProgramBuilder, SourceLoc, SymbolTable, DATA_BASE, DEFAULT_MEM_SIZE,
    NULL_GUARD_END,
};
pub use reg::Reg;
