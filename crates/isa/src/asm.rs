//! A two-pass textual assembler for PXVM-32.
//!
//! The assembler exists so that tests, examples and the PathExpander engines
//! can be exercised on hand-written programs without going through the PXC
//! compiler. Syntax summary (see the crate examples for full programs):
//!
//! ```text
//! ; comment (runs to end of line)
//! .data
//! counter:  .word 0, 1, 2       ; 32-bit little-endian words
//! flag:     .byte 1             ; raw bytes
//! buf:      .space 64           ; zero-filled region
//! msg:      .ascii "hi\n"       ; raw string bytes (no terminator)
//! .code
//! main:
//!     la   r2, counter          ; load address of a data label
//!     lw   r1, 0(r2)
//!     addi r1, r1, 1
//!     beq  r1, zero, done
//!     jmp  main
//! done:
//!     exit
//! ```
//!
//! Pseudo-instructions: `li rd, imm` (`addi rd, zero, imm`), `mv rd, rs`
//! (`addi rd, rs, 0`), `la rd, data_label`. Checker ops take a site literal:
//! `assert r1, #3`, `bound r1, #4`, `nullchk r1, #5`; watchpoints:
//! `watch rbase, rlen, #tag`, `unwatch #tag`.

use std::collections::HashMap;
use std::fmt;

use crate::insn::{AluOp, BranchCond, CheckKind, Instruction, SyscallCode, Width};
use crate::program::{Program, ProgramBuilder, DATA_BASE, DEFAULT_MEM_SIZE};
use crate::reg::Reg;

/// Error produced while assembling, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: u32, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Section {
    #[default]
    Code,
    Data,
}

/// An unresolved operand that may reference a label.
#[derive(Debug, Clone)]
enum Target {
    Resolved(u32),
    Label(String),
}

#[derive(Debug)]
struct PendingInsn {
    line: u32,
    insn: Instruction,
    /// Label to substitute into the instruction's target field, if any.
    fixup: Option<String>,
}

/// Assembles PXVM-32 source text into a [`Program`].
///
/// The entry point is the `main` label if defined, otherwise instruction 0.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax errors, unknown
/// mnemonics or registers, duplicate or undefined labels.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::default().run(source)
}

#[derive(Default)]
struct Assembler {
    code_labels: HashMap<String, u32>,
    data_labels: HashMap<String, u32>,
    pending: Vec<PendingInsn>,
    data: Vec<u8>,
    section: Section,
}

impl Assembler {
    fn run(mut self, source: &str) -> Result<Program, AsmError> {
        // Pass 1: collect labels, parse instructions with label fixups.
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            self.parse_line(line, line_no)?;
        }

        // Pass 2: resolve fixups and emit.
        let mut builder = ProgramBuilder::new();
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            let insn = match p.fixup {
                None => p.insn,
                Some(label) => {
                    let target = self.resolve_code(&label, p.line)?;
                    retarget(p.insn, target)
                }
            };
            builder.push(insn, p.line);
        }
        for (name, &pc) in &self.code_labels {
            builder.define_function(name, pc);
        }
        let mut addr = DATA_BASE;
        for (name, &off) in &self.data_labels {
            builder.define_global(name, DATA_BASE + off, 0);
            addr = addr.max(DATA_BASE + off);
        }
        let _ = addr;
        if !self.data.is_empty() {
            builder.add_data(DATA_BASE, std::mem::take(&mut self.data));
        }
        builder.set_heap_base(DATA_BASE + (builder_data_len(&builder)));
        builder.set_mem_size(DEFAULT_MEM_SIZE);
        if let Some(&entry) = self.code_labels.get("main") {
            builder.set_entry(entry);
        }
        Ok(builder.finish())
    }

    fn resolve_code(&self, label: &str, line: u32) -> Result<u32, AsmError> {
        match self.code_labels.get(label) {
            Some(&pc) => Ok(pc),
            None => err(line, format!("undefined code label `{label}`")),
        }
    }

    fn parse_line(&mut self, mut line: &str, line_no: u32) -> Result<(), AsmError> {
        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let word = rest.split_whitespace().next().unwrap_or("");
            match word {
                "code" | "text" => {
                    self.section = Section::Code;
                    return Ok(());
                }
                "data" => {
                    self.section = Section::Data;
                    return Ok(());
                }
                _ => {
                    // A data directive without a leading label, e.g. `.space 4`.
                    return self.parse_data_directive(line, line_no);
                }
            }
        }

        // Labels (possibly followed by an instruction/directive on the same line).
        while let Some(colon) = find_label_colon(line) {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if !is_ident(label) {
                return err(line_no, format!("invalid label `{label}`"));
            }
            match self.section {
                Section::Code => {
                    let pc = self.pending.len() as u32;
                    if self.code_labels.insert(label.to_owned(), pc).is_some() {
                        return err(line_no, format!("duplicate label `{label}`"));
                    }
                }
                Section::Data => {
                    let off = self.data.len() as u32;
                    if self.data_labels.insert(label.to_owned(), off).is_some() {
                        return err(line_no, format!("duplicate label `{label}`"));
                    }
                }
            }
            line = rest[1..].trim();
            if line.is_empty() {
                return Ok(());
            }
        }

        match self.section {
            Section::Code => self.parse_insn(line, line_no),
            Section::Data => self.parse_data_directive(line, line_no),
        }
    }

    fn parse_data_directive(&mut self, line: &str, line_no: u32) -> Result<(), AsmError> {
        let (dir, rest) = split_first_word(line);
        match dir {
            ".word" => {
                for field in split_operands(rest) {
                    let v = parse_int(&field, line_no)?;
                    self.data.extend_from_slice(&v.to_le_bytes());
                }
                Ok(())
            }
            ".byte" => {
                for field in split_operands(rest) {
                    let v = parse_int(&field, line_no)?;
                    if !(-128..=255).contains(&v) {
                        return err(line_no, format!("byte value {v} out of range"));
                    }
                    self.data.push(v as u8);
                }
                Ok(())
            }
            ".space" => {
                let n = parse_int(rest.trim(), line_no)?;
                if n < 0 {
                    return err(line_no, "negative .space size");
                }
                self.data.extend(std::iter::repeat_n(0u8, n as usize));
                Ok(())
            }
            ".ascii" | ".asciz" => {
                let bytes = parse_string(rest.trim(), line_no)?;
                self.data.extend_from_slice(&bytes);
                if dir == ".asciz" {
                    self.data.push(0);
                }
                Ok(())
            }
            ".align" => {
                let n = parse_int(rest.trim(), line_no)?;
                if n <= 0 || (n as u32 & (n as u32 - 1)) != 0 {
                    return err(line_no, "alignment must be a positive power of two");
                }
                while !self.data.len().is_multiple_of(n as usize) {
                    self.data.push(0);
                }
                Ok(())
            }
            _ => err(line_no, format!("unknown data directive `{dir}`")),
        }
    }

    fn push_insn(&mut self, line: u32, insn: Instruction) {
        self.pending.push(PendingInsn {
            line,
            insn,
            fixup: None,
        });
    }

    fn push_fixup(&mut self, line: u32, insn: Instruction, target: Target) {
        match target {
            Target::Resolved(t) => self.pending.push(PendingInsn {
                line,
                insn: retarget(insn, t),
                fixup: None,
            }),
            Target::Label(l) => self.pending.push(PendingInsn {
                line,
                insn,
                fixup: Some(l),
            }),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn parse_insn(&mut self, line: &str, ln: u32) -> Result<(), AsmError> {
        let (mnemonic, rest) = split_first_word(line);
        let ops = split_operands(rest);
        let argc = ops.len();
        let arg = |i: usize| -> &str { ops[i].as_str() };

        let need = |n: usize| -> Result<(), AsmError> {
            if argc == n {
                Ok(())
            } else {
                err(ln, format!("`{mnemonic}` expects {n} operands, got {argc}"))
            }
        };

        // System calls.
        if let Some(code) = SyscallCode::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
            need(0)?;
            self.push_insn(ln, Instruction::Syscall { code: *code });
            return Ok(());
        }
        // Checks.
        if let Some(kind) = CheckKind::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
            need(2)?;
            let cond = parse_reg(arg(0), ln)?;
            let site = parse_site(arg(1), ln)?;
            self.push_insn(
                ln,
                Instruction::Check {
                    kind: *kind,
                    cond,
                    site,
                },
            );
            return Ok(());
        }
        // Branches.
        if let Some(cond) = BranchCond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
            need(3)?;
            let rs1 = parse_reg(arg(0), ln)?;
            let rs2 = parse_reg(arg(1), ln)?;
            let target = self.parse_target(arg(2), ln)?;
            self.push_fixup(
                ln,
                Instruction::Branch {
                    cond: *cond,
                    rs1,
                    rs2,
                    target: 0,
                },
                target,
            );
            return Ok(());
        }
        // Register-register ALU.
        if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            need(3)?;
            self.push_insn(
                ln,
                Instruction::Alu {
                    op: *op,
                    rd: parse_reg(arg(0), ln)?,
                    rs1: parse_reg(arg(1), ln)?,
                    rs2: parse_reg(arg(2), ln)?,
                },
            );
            return Ok(());
        }
        // Immediate ALU (`addi`, `slti`, ...).
        if let Some(base) = mnemonic.strip_suffix('i') {
            if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == base) {
                need(3)?;
                self.push_insn(
                    ln,
                    Instruction::AluI {
                        op: *op,
                        rd: parse_reg(arg(0), ln)?,
                        rs1: parse_reg(arg(1), ln)?,
                        imm: parse_int(arg(2), ln)?,
                    },
                );
                return Ok(());
            }
        }
        // Predicated immediate ALU (`paddi`, ...).
        if let Some(base) = mnemonic.strip_prefix('p').and_then(|m| m.strip_suffix('i')) {
            if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == base) {
                need(3)?;
                self.push_insn(
                    ln,
                    Instruction::PAluI {
                        op: *op,
                        rd: parse_reg(arg(0), ln)?,
                        rs1: parse_reg(arg(1), ln)?,
                        imm: parse_int(arg(2), ln)?,
                    },
                );
                return Ok(());
            }
        }

        match mnemonic {
            "nop" => {
                need(0)?;
                self.push_insn(ln, Instruction::Nop);
            }
            "ret" => {
                need(0)?;
                self.push_insn(ln, Instruction::Ret);
            }
            "jmp" => {
                need(1)?;
                let t = self.parse_target(arg(0), ln)?;
                self.push_fixup(ln, Instruction::Jump { target: 0 }, t);
            }
            "call" => {
                need(1)?;
                let t = self.parse_target(arg(0), ln)?;
                self.push_fixup(ln, Instruction::Call { target: 0 }, t);
            }
            "lw" | "lb" => {
                need(2)?;
                let rd = parse_reg(arg(0), ln)?;
                let (offset, base) = parse_mem_operand(arg(1), ln)?;
                let width = if mnemonic == "lw" {
                    Width::Word
                } else {
                    Width::Byte
                };
                self.push_insn(
                    ln,
                    Instruction::Load {
                        width,
                        rd,
                        base,
                        offset,
                    },
                );
            }
            "sw" | "sb" => {
                need(2)?;
                let rs = parse_reg(arg(0), ln)?;
                let (offset, base) = parse_mem_operand(arg(1), ln)?;
                let width = if mnemonic == "sw" {
                    Width::Word
                } else {
                    Width::Byte
                };
                self.push_insn(
                    ln,
                    Instruction::Store {
                        width,
                        rs,
                        base,
                        offset,
                    },
                );
            }
            "psw" | "psb" => {
                need(2)?;
                let rs = parse_reg(arg(0), ln)?;
                let (offset, base) = parse_mem_operand(arg(1), ln)?;
                let width = if mnemonic == "psw" {
                    Width::Word
                } else {
                    Width::Byte
                };
                self.push_insn(
                    ln,
                    Instruction::PStore {
                        width,
                        rs,
                        base,
                        offset,
                    },
                );
            }
            "li" => {
                need(2)?;
                self.push_insn(
                    ln,
                    Instruction::AluI {
                        op: AluOp::Add,
                        rd: parse_reg(arg(0), ln)?,
                        rs1: Reg::ZERO,
                        imm: parse_int(arg(1), ln)?,
                    },
                );
            }
            "mv" => {
                need(2)?;
                self.push_insn(
                    ln,
                    Instruction::AluI {
                        op: AluOp::Add,
                        rd: parse_reg(arg(0), ln)?,
                        rs1: parse_reg(arg(1), ln)?,
                        imm: 0,
                    },
                );
            }
            "la" => {
                need(2)?;
                let rd = parse_reg(arg(0), ln)?;
                let label = arg(1);
                let Some(&off) = self.data_labels.get(label) else {
                    return err(ln, format!("undefined data label `{label}`"));
                };
                self.push_insn(
                    ln,
                    Instruction::AluI {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg::ZERO,
                        imm: (DATA_BASE + off) as i32,
                    },
                );
            }
            "pli" => {
                need(2)?;
                self.push_insn(
                    ln,
                    Instruction::PMovI {
                        rd: parse_reg(arg(0), ln)?,
                        imm: parse_int(arg(1), ln)?,
                    },
                );
            }
            "pmov" => {
                need(2)?;
                self.push_insn(
                    ln,
                    Instruction::PMov {
                        rd: parse_reg(arg(0), ln)?,
                        rs: parse_reg(arg(1), ln)?,
                    },
                );
            }
            "watch" => {
                need(3)?;
                self.push_insn(
                    ln,
                    Instruction::SetWatch {
                        base: parse_reg(arg(0), ln)?,
                        len: parse_reg(arg(1), ln)?,
                        tag: parse_site(arg(2), ln)?,
                    },
                );
            }
            "unwatch" => {
                need(1)?;
                self.push_insn(
                    ln,
                    Instruction::ClearWatch {
                        tag: parse_site(arg(0), ln)?,
                    },
                );
            }
            _ => return err(ln, format!("unknown mnemonic `{mnemonic}`")),
        }
        Ok(())
    }

    fn parse_target(&self, s: &str, ln: u32) -> Result<Target, AsmError> {
        if let Some(num) = s.strip_prefix('@') {
            return Ok(Target::Resolved(parse_int(num, ln)? as u32));
        }
        if is_ident(s) {
            return Ok(Target::Label(s.to_owned()));
        }
        err(ln, format!("invalid jump target `{s}`"))
    }
}

fn builder_data_len(_builder: &ProgramBuilder) -> u32 {
    // The assembler keeps a single data blob starting at DATA_BASE; callers
    // that need a precise heap base use the compiler, which computes layout
    // exactly. Returning 64 KiB leaves ample room for assembled data.
    64 * 1024
}

fn retarget(insn: Instruction, target: u32) -> Instruction {
    match insn {
        Instruction::Branch { cond, rs1, rs2, .. } => Instruction::Branch {
            cond,
            rs1,
            rs2,
            target,
        },
        Instruction::Jump { .. } => Instruction::Jump { target },
        Instruction::Call { .. } => Instruction::Call { target },
        other => other,
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ';' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn find_label_colon(line: &str) -> Option<usize> {
    // A label is `ident:` at the start of the line (before any whitespace
    // that begins an instruction with operands).
    let colon = line.find(':')?;
    let head = &line[..colon];
    is_ident(head.trim()).then_some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_first_word(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim_start()),
        None => (line, ""),
    }
}

fn split_operands(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    rest.split(',').map(|s| s.trim().to_owned()).collect()
}

fn parse_reg(s: &str, ln: u32) -> Result<Reg, AsmError> {
    s.parse().map_err(|_| AsmError {
        line: ln,
        message: format!("invalid register `{s}`"),
    })
}

fn parse_int(s: &str, ln: u32) -> Result<i32, AsmError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map(|v| v as i32)
    } else if let Some(hex) = s.strip_prefix("-0x") {
        u32::from_str_radix(hex, 16).map(|v| (v as i32).wrapping_neg())
    } else if s.len() == 3 && s.starts_with('\'') && s.ends_with('\'') {
        Ok(s.as_bytes()[1] as i32)
    } else {
        s.parse::<i64>()
            .map(|v| v as i32)
            .map_err(|_| "bad".parse::<i32>().unwrap_err())
    };
    parsed.map_err(|_| AsmError {
        line: ln,
        message: format!("invalid integer `{s}`"),
    })
}

fn parse_site(s: &str, ln: u32) -> Result<u32, AsmError> {
    let Some(num) = s.strip_prefix('#') else {
        return err(ln, format!("expected `#literal`, got `{s}`"));
    };
    Ok(parse_int(num, ln)? as u32)
}

fn parse_mem_operand(s: &str, ln: u32) -> Result<(i32, Reg), AsmError> {
    let Some(open) = s.find('(') else {
        return err(ln, format!("expected `offset(base)`, got `{s}`"));
    };
    let Some(close) = s.rfind(')') else {
        return err(ln, format!("missing `)` in `{s}`"));
    };
    let offset_str = s[..open].trim();
    let offset = if offset_str.is_empty() {
        0
    } else {
        parse_int(offset_str, ln)?
    };
    let base = parse_reg(s[open + 1..close].trim(), ln)?;
    Ok((offset, base))
}

fn parse_string(s: &str, ln: u32) -> Result<Vec<u8>, AsmError> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| AsmError {
            line: ln,
            message: format!("expected string literal, got `{s}`"),
        })?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => return err(ln, format!("bad escape `\\{other:?}`")),
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_forward_and_backward_labels() {
        let p = assemble(
            r"
            .code
            main:
                li r1, 3
            loop:
                subi r1, r1, 1
                bgt r1, zero, loop
                jmp end
                nop
            end:
                exit
            ",
        )
        .unwrap();
        assert_eq!(p.entry, 0);
        assert_eq!(
            p.code[2],
            Instruction::Branch {
                cond: BranchCond::Gt,
                rs1: Reg::RV,
                rs2: Reg::ZERO,
                target: 1
            }
        );
        assert_eq!(p.code[3], Instruction::Jump { target: 5 });
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let p = assemble(
            r#"
            .data
            words: .word 1, -1
            bytes: .byte 7, 'A'
            pad:   .space 2
            text:  .asciz "ok"
            .code
            main: exit
            "#,
        )
        .unwrap();
        let blob = &p.data[0].bytes;
        assert_eq!(&blob[0..4], &1i32.to_le_bytes());
        assert_eq!(&blob[4..8], &(-1i32).to_le_bytes());
        assert_eq!(blob[8], 7);
        assert_eq!(blob[9], b'A');
        assert_eq!(&blob[10..12], &[0, 0]);
        assert_eq!(&blob[12..15], b"ok\0");
        assert_eq!(p.symbols.global("words"), Some(DATA_BASE));
        assert_eq!(p.symbols.global("text"), Some(DATA_BASE + 12));
    }

    #[test]
    fn la_loads_data_addresses() {
        let p = assemble(
            r"
            .data
            a: .word 5
            b: .word 6
            .code
            main:
                la r2, b
                exit
            ",
        )
        .unwrap();
        assert_eq!(
            p.code[0],
            Instruction::AluI {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: (DATA_BASE + 4) as i32
            }
        );
    }

    #[test]
    fn checks_watches_and_predicated_ops_parse() {
        let p = assemble(
            r"
            .code
            main:
                assert r1, #9
                bound r2, #10
                nullchk r3, #11
                watch r4, r5, #12
                unwatch #12
                pli r6, -2
                pmov r7, r8
                paddi r9, r10, 1
                psw r1, 4(sp)
                exit
            ",
        )
        .unwrap();
        assert_eq!(
            p.code[0],
            Instruction::Check {
                kind: CheckKind::Assertion,
                cond: Reg::RV,
                site: 9
            }
        );
        assert_eq!(
            p.code[3],
            Instruction::SetWatch {
                base: Reg::new(4),
                len: Reg::new(5),
                tag: 12
            }
        );
        assert_eq!(
            p.code[5],
            Instruction::PMovI {
                rd: Reg::new(6),
                imm: -2
            }
        );
        assert_eq!(
            p.code[7],
            Instruction::PAluI {
                op: AluOp::Add,
                rd: Reg::new(9),
                rs1: Reg::new(10),
                imm: 1
            }
        );
        assert!(p.code[8].is_predicated());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".code\nmain:\n  bogus r1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));

        let e = assemble(".code\nmain:\n  jmp nowhere\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nowhere"));

        let e = assemble(".code\nx:\nx:\n  nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "; leading comment\n.code\nmain: nop ; trailing\n  ; another comment\n  exit\n",
        )
        .unwrap();
        assert_eq!(p.code.len(), 2);
    }
}
