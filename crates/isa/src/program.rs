use std::collections::BTreeMap;

use crate::insn::Instruction;

/// Start of the data segment. Addresses below this value form the *null
/// guard page*: any access traps (an architectural crash), which is how NT-
/// paths that dereference inconsistent null pointers die (paper §3.2).
pub const DATA_BASE: u32 = 0x1000;

/// Exclusive end of the null guard page (same as [`DATA_BASE`]).
pub const NULL_GUARD_END: u32 = DATA_BASE;

/// Default size of the flat data memory, in bytes (1 MiB).
pub const DEFAULT_MEM_SIZE: u32 = 1 << 20;

/// A source location attached to an instruction for diagnostics
/// (`file` is implicit per program; only the line is tracked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SourceLoc {
    /// 1-based source line, or 0 when unknown.
    pub line: u32,
}

/// One initialized item in the data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataItem {
    /// Absolute address of the first byte.
    pub addr: u32,
    /// Initial bytes.
    pub bytes: Vec<u8>,
}

/// Symbols of a linked program: function entry points and global variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    /// Function name → entry instruction index.
    pub functions: BTreeMap<String, u32>,
    /// Global variable name → (address, size in bytes).
    pub globals: BTreeMap<String, (u32, u32)>,
}

impl SymbolTable {
    /// Looks up a function entry point.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<u32> {
        self.functions.get(name).copied()
    }

    /// Looks up a global's address.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<u32> {
        self.globals.get(name).map(|&(addr, _)| addr)
    }
}

/// A fully linked PXVM-32 program: code, initialized data, and the metadata
/// PathExpander and the detectors need.
///
/// `Program` is produced either by the assembler ([`crate::asm::assemble`]) or
/// by the `px-lang` compiler, and consumed by the `px-mach` machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The instruction stream; the program counter indexes this vector.
    pub code: Vec<Instruction>,
    /// Initialized data, loaded at program start.
    pub data: Vec<DataItem>,
    /// Entry instruction index.
    pub entry: u32,
    /// Function and global symbols.
    pub symbols: SymbolTable,
    /// Per-instruction source lines (parallel to `code`; may be empty).
    pub source_lines: Vec<SourceLoc>,
    /// Instruction-index ranges `[start, end)` of dynamic-checker code.
    /// PathExpander never spawns NT-paths from branches inside these ranges
    /// (paper §6.2), and they are excluded from the coverage denominator.
    pub checker_regions: Vec<(u32, u32)>,
    /// Address range `[start, end)` holding the compiler-generated *blank
    /// data structures* used for pointer fixing (paper §4.4), if any.
    pub blank_area: Option<(u32, u32)>,
    /// First free data address after all globals (heap base for the PXC
    /// runtime's bump allocator).
    pub heap_base: u32,
    /// Minimum data-memory size this program needs to run.
    pub mem_size: u32,
}

impl Program {
    /// Total number of static conditional branches in the program, excluding
    /// branches inside checker regions. Each contributes two edges to the
    /// branch-coverage denominator.
    #[must_use]
    pub fn static_branch_count(&self) -> u32 {
        self.code
            .iter()
            .enumerate()
            .filter(|&(pc, insn)| {
                matches!(insn, Instruction::Branch { .. }) && !self.in_checker_region(pc as u32)
            })
            .count() as u32
    }

    /// Total number of static branch edges (2 × branches) outside checker
    /// regions — the denominator of the paper's branch-coverage metric.
    #[must_use]
    pub fn static_edge_count(&self) -> u32 {
        self.static_branch_count() * 2
    }

    /// Whether an instruction index falls inside a tagged checker region.
    #[must_use]
    #[inline]
    pub fn in_checker_region(&self, pc: u32) -> bool {
        self.checker_regions
            .iter()
            .any(|&(start, end)| pc >= start && pc < end)
    }

    /// Whether `pc` is a valid instruction index.
    #[must_use]
    #[inline]
    pub fn valid_pc(&self, pc: u32) -> bool {
        (pc as usize) < self.code.len()
    }

    /// The instruction at `pc`, if valid.
    #[must_use]
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<Instruction> {
        self.code.get(pc as usize).copied()
    }

    /// The source line for `pc`, or 0 when unknown.
    #[must_use]
    pub fn source_line(&self, pc: u32) -> u32 {
        self.source_lines.get(pc as usize).map_or(0, |loc| loc.line)
    }

    /// Renders the whole program as assembly text (disassembly listing).
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let entries: BTreeMap<u32, &str> = self
            .symbols
            .functions
            .iter()
            .map(|(name, &pc)| (pc, name.as_str()))
            .collect();
        for (pc, insn) in self.code.iter().enumerate() {
            if let Some(name) = entries.get(&(pc as u32)) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "  {pc:>6}: {insn}");
        }
        out
    }
}

/// Incremental builder for a [`Program`], used by the assembler and the
/// compiler back end.
///
/// ```
/// use px_isa::{Instruction, ProgramBuilder, Reg, SyscallCode};
///
/// let mut b = ProgramBuilder::new();
/// b.push(Instruction::AluI { op: px_isa::AluOp::Add, rd: Reg::RV, rs1: Reg::ZERO, imm: 3 }, 1);
/// b.push(Instruction::Syscall { code: SyscallCode::Exit }, 2);
/// let program = b.finish();
/// assert_eq!(program.code.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            program: Program {
                mem_size: DEFAULT_MEM_SIZE,
                heap_base: DATA_BASE,
                ..Program::default()
            },
        }
    }

    /// Index the next pushed instruction will receive.
    #[must_use]
    pub fn next_pc(&self) -> u32 {
        self.program.code.len() as u32
    }

    /// Appends an instruction with a source line and returns its index.
    pub fn push(&mut self, insn: Instruction, line: u32) -> u32 {
        let pc = self.next_pc();
        self.program.code.push(insn);
        self.program.source_lines.push(SourceLoc { line });
        pc
    }

    /// Overwrites a previously pushed instruction (for backpatching branch
    /// targets).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn patch(&mut self, pc: u32, insn: Instruction) {
        self.program.code[pc as usize] = insn;
    }

    /// Reads back a previously pushed instruction (for backpatching).
    #[must_use]
    pub fn at(&self, pc: u32) -> Instruction {
        self.program.code[pc as usize]
    }

    /// Registers a function symbol at the given instruction index.
    pub fn define_function(&mut self, name: &str, pc: u32) {
        self.program.symbols.functions.insert(name.to_owned(), pc);
    }

    /// Registers a global symbol.
    pub fn define_global(&mut self, name: &str, addr: u32, size: u32) {
        self.program
            .symbols
            .globals
            .insert(name.to_owned(), (addr, size));
    }

    /// Adds initialized data.
    pub fn add_data(&mut self, addr: u32, bytes: Vec<u8>) {
        self.program.data.push(DataItem { addr, bytes });
    }

    /// Marks `[start, end)` as dynamic-checker code.
    pub fn add_checker_region(&mut self, start: u32, end: u32) {
        debug_assert!(start <= end);
        if start < end {
            self.program.checker_regions.push((start, end));
        }
    }

    /// Sets the entry point.
    pub fn set_entry(&mut self, pc: u32) {
        self.program.entry = pc;
    }

    /// Sets the blank-data-structure area used for pointer fixing.
    pub fn set_blank_area(&mut self, start: u32, end: u32) {
        self.program.blank_area = Some((start, end));
    }

    /// Sets the heap base (first free address after static data).
    pub fn set_heap_base(&mut self, addr: u32) {
        self.program.heap_base = addr;
    }

    /// Sets the required memory size.
    pub fn set_mem_size(&mut self, bytes: u32) {
        self.program.mem_size = bytes;
    }

    /// Finalizes the program.
    #[must_use]
    pub fn finish(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, BranchCond};
    use crate::reg::Reg;

    fn branch(target: u32) -> Instruction {
        Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target,
        }
    }

    #[test]
    fn static_branch_count_excludes_checker_regions() {
        let mut b = ProgramBuilder::new();
        b.push(branch(0), 1);
        b.push(branch(0), 2);
        b.push(
            Instruction::AluI {
                op: AluOp::Add,
                rd: Reg::RV,
                rs1: Reg::ZERO,
                imm: 0,
            },
            3,
        );
        b.push(branch(0), 4);
        b.add_checker_region(1, 2);
        let p = b.finish();
        assert_eq!(p.static_branch_count(), 2);
        assert_eq!(p.static_edge_count(), 4);
        assert!(p.in_checker_region(1));
        assert!(!p.in_checker_region(2));
    }

    #[test]
    fn builder_symbols_and_fetch() {
        let mut b = ProgramBuilder::new();
        let pc = b.push(Instruction::Nop, 7);
        b.define_function("main", pc);
        b.define_global("g", DATA_BASE, 4);
        b.set_entry(pc);
        let p = b.finish();
        assert_eq!(p.symbols.function("main"), Some(0));
        assert_eq!(p.symbols.global("g"), Some(DATA_BASE));
        assert_eq!(p.fetch(0), Some(Instruction::Nop));
        assert_eq!(p.fetch(1), None);
        assert_eq!(p.source_line(0), 7);
        assert!(p.valid_pc(0));
        assert!(!p.valid_pc(1));
    }

    #[test]
    fn disassembly_lists_function_labels() {
        let mut b = ProgramBuilder::new();
        let pc = b.push(Instruction::Ret, 1);
        b.define_function("f", pc);
        let text = b.finish().disassemble();
        assert!(text.contains("f:"));
        assert!(text.contains("ret"));
    }
}
