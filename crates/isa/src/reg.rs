use core::fmt;

/// One of the 32 general-purpose registers of PXVM-32.
///
/// Register 0 ([`Reg::ZERO`]) is hardwired to zero, matching the MIPS-style
/// convention the paper's simulator used. The ABI registers used by the
/// `px-lang` compiler are exposed as constants.
///
/// ```
/// use px_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(Reg::SP.to_string(), "sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return value / first scratch register (ABI).
    pub const RV: Reg = Reg(1);
    /// Syscall argument register (ABI).
    pub const A0: Reg = Reg(2);
    /// Second syscall argument register (ABI).
    pub const A1: Reg = Reg(3);
    /// Stack pointer (ABI).
    pub const SP: Reg = Reg(29);
    /// Frame pointer (ABI).
    pub const FP: Reg = Reg(30);
    /// Return address, written by `call` (ABI).
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Reg {
        assert!((index as usize) < Reg::COUNT, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Reg> {
        ((index as usize) < Reg::COUNT).then_some(Reg(index))
    }

    /// The register's index in `0..32`.
    ///
    /// The mask restates the constructor invariant (`self.0 < 32`) in a
    /// form the optimizer can see, so register-file indexing in interpreter
    /// hot loops compiles without a bounds check.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 31) as usize
    }

    /// The register's index as the raw `u8` used by the binary encoding.
    #[must_use]
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::ZERO => write!(f, "zero"),
            Reg::SP => write!(f, "sp"),
            Reg::FP => write!(f, "fp"),
            Reg::RA => write!(f, "ra"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

/// Parses `r0`..`r31` and the ABI aliases `zero`, `sp`, `fp`, `ra`, `rv`.
impl core::str::FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        match s {
            "zero" => return Ok(Reg::ZERO),
            "sp" => return Ok(Reg::SP),
            "fp" => return Ok(Reg::FP),
            "ra" => return Ok(Reg::RA),
            "rv" => return Ok(Reg::RV),
            _ => {}
        }
        let rest = s.strip_prefix('r').ok_or(ParseRegError)?;
        let n: u8 = rest.parse().map_err(|_| ParseRegError)?;
        Reg::try_new(n).ok_or(ParseRegError)
    }
}

/// Error returned when a register name fails to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseRegError;

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name")
    }
}

impl std::error::Error for ParseRegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_aliases_round_trip() {
        for (name, reg) in [
            ("zero", Reg::ZERO),
            ("sp", Reg::SP),
            ("fp", Reg::FP),
            ("ra", Reg::RA),
        ] {
            assert_eq!(name.parse::<Reg>().unwrap(), reg);
            assert_eq!(reg.to_string(), name);
        }
    }

    #[test]
    fn numeric_names_parse() {
        for i in 0..32u8 {
            let r: Reg = format!("r{i}").parse().unwrap();
            assert_eq!(r.index(), i as usize);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("r32".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
        assert!(Reg::try_new(32).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(40);
    }
}
