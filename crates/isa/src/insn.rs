use core::fmt;

use crate::reg::Reg;

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    Byte,
    /// Four bytes, little endian.
    Word,
}

impl Width {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Word => 4,
        }
    }
}

/// Arithmetic / logical operations for [`Instruction::Alu`] and friends.
///
/// Comparison operations (`Slt`, `Sle`, `Seq`, `Sne`, `Sltu`) write `0` or `1`
/// to the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Division by zero is an architectural *crash*
    /// (terminates an NT-path, faults the taken path).
    Div,
    /// Signed remainder; remainder by zero crashes like [`AluOp::Div`].
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount masked to 5 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Set if less-than, signed.
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
    /// Set if less-or-equal, signed.
    Sle,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
}

impl AluOp {
    pub(crate) const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Sle,
        AluOp::Seq,
        AluOp::Sne,
    ];

    /// Mnemonic used by the assembler/disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Sle => "sle",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
        }
    }

    /// Evaluates the operation on two values.
    ///
    /// Returns `None` for division or remainder by zero (an architectural
    /// crash at the machine level). All other operations are total; `Add`,
    /// `Sub` and `Mul` wrap on overflow, and `i32::MIN / -1` wraps as well.
    #[must_use]
    pub fn eval(self, a: i32, b: i32) -> Option<i32> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            AluOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Shr => ((a as u32) >> (b as u32 & 31)) as i32,
            AluOp::Sar => a >> (b as u32 & 31),
            AluOp::Slt => i32::from(a < b),
            AluOp::Sltu => i32::from((a as u32) < (b as u32)),
            AluOp::Sle => i32::from(a <= b),
            AluOp::Seq => i32::from(a == b),
            AluOp::Sne => i32::from(a != b),
        })
    }
}

/// Condition of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
}

impl BranchCond {
    pub(crate) const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Le,
        BranchCond::Gt,
    ];

    /// Mnemonic suffix (`beq`, `bne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
        }
    }

    /// Evaluates the condition.
    #[must_use]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }

    /// The negated condition, such that
    /// `self.eval(a, b) == !self.negate().eval(a, b)`.
    #[must_use]
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Le => BranchCond::Gt,
            BranchCond::Gt => BranchCond::Le,
        }
    }
}

/// System calls. Every system call is an *unsafe event* for an NT-path
/// (paper §4.2): the sandbox cannot contain its side effects, so the NT-path
/// is squashed when it reaches one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallCode {
    /// Terminate the program. Argument in `A0` is the exit code.
    Exit,
    /// Write the low byte of `A0` to the output stream.
    PutChar,
    /// Read a byte from the input stream into `RV` (-1 on EOF).
    GetChar,
    /// Write the decimal representation of `A0` to the output stream.
    PrintInt,
    /// Read a whitespace-delimited decimal integer into `RV` (-1 on EOF).
    ReadInt,
    /// Pseudo-random 31-bit non-negative integer into `RV` (deterministic,
    /// machine-seeded).
    Rand,
    /// Current simulated cycle count (low 31 bits) into `RV`.
    Time,
}

impl SyscallCode {
    pub(crate) const ALL: [SyscallCode; 7] = [
        SyscallCode::Exit,
        SyscallCode::PutChar,
        SyscallCode::GetChar,
        SyscallCode::PrintInt,
        SyscallCode::ReadInt,
        SyscallCode::Rand,
        SyscallCode::Time,
    ];

    /// Mnemonic used by the assembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            SyscallCode::Exit => "exit",
            SyscallCode::PutChar => "putc",
            SyscallCode::GetChar => "getc",
            SyscallCode::PrintInt => "printi",
            SyscallCode::ReadInt => "readi",
            SyscallCode::Rand => "rand",
            SyscallCode::Time => "time",
        }
    }
}

/// What kind of dynamic checker emitted a [`Instruction::Check`].
///
/// The machine routes failed checks to the monitor memory area so they
/// survive NT-path squashes (paper §4.1); the `px-detect` crate turns them
/// into classified bug reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// A programmer-written assertion (the paper's third detection method).
    Assertion,
    /// A CCured-style array bounds check.
    CcuredBound,
    /// A CCured-style null / wild pointer check.
    CcuredNull,
}

impl CheckKind {
    pub(crate) const ALL: [CheckKind; 3] = [
        CheckKind::Assertion,
        CheckKind::CcuredBound,
        CheckKind::CcuredNull,
    ];

    /// Mnemonic used by the assembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CheckKind::Assertion => "assert",
            CheckKind::CcuredBound => "bound",
            CheckKind::CcuredNull => "nullchk",
        }
    }
}

/// A PXVM-32 instruction.
///
/// The program counter is an index into [`crate::Program::code`]; branch and
/// call targets are absolute instruction indices (the assembler resolves
/// labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `rd = rs1 <op> rs2`
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `rd = rs1 <op> imm`
    AluI {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// `rd = mem[rs(base) + offset]`
    Load {
        width: Width,
        rd: Reg,
        base: Reg,
        offset: i32,
    },
    /// `mem[rs(base) + offset] = rs`
    Store {
        width: Width,
        rs: Reg,
        base: Reg,
        offset: i32,
    },
    /// Conditional branch: if `cond(rs1, rs2)`, `pc = target`, else fall
    /// through. This is the instruction the BTB exercise counters and the
    /// PathExpander NT-path selector observe.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: u32,
    },
    /// Unconditional jump to an instruction index.
    Jump { target: u32 },
    /// `ra = pc + 1; pc = target`
    Call { target: u32 },
    /// `pc = ra`
    Ret,
    /// System call (always an unsafe event inside an NT-path).
    Syscall { code: SyscallCode },
    /// Dynamic-checker probe: if the value of `cond` is zero, a bug report
    /// with site identifier `site` is written to the monitor memory area.
    /// Execution continues either way.
    Check {
        kind: CheckKind,
        cond: Reg,
        site: u32,
    },
    /// iWatcher-style: watch `len` bytes at address `base`+`A1`... registers a
    /// watch range `[rs(base), rs(base)+rs(len))` tagged `tag`.
    SetWatch { base: Reg, len: Reg, tag: u32 },
    /// Removes all watch ranges with tag `tag`.
    ClearWatch { tag: u32 },
    /// Predicated `rd = imm`: executes only while the NT-entry predicate is
    /// set; a NOP otherwise (paper §4.4 variable fixing).
    PMovI { rd: Reg, imm: i32 },
    /// Predicated `rd = rs`.
    PMov { rd: Reg, rs: Reg },
    /// Predicated `rd = rs1 <op> imm` (for boundary fixes such as `x = y-1`).
    PAluI {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Predicated store, for fixing condition variables that live in memory.
    PStore {
        width: Width,
        rs: Reg,
        base: Reg,
        offset: i32,
    },
    /// No operation.
    Nop,
}

impl Instruction {
    /// Whether this is a control-transfer instruction. Executing any of these
    /// clears the NT-entry predicate, bounding the variable-fixing window to
    /// the entry basic block of an NT-path (design decision D1).
    #[must_use]
    pub fn is_control_transfer(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. }
                | Instruction::Jump { .. }
                | Instruction::Call { .. }
                | Instruction::Ret
        )
    }

    /// Whether this is one of the predicated variable-fixing instructions.
    #[must_use]
    pub fn is_predicated(&self) -> bool {
        matches!(
            self,
            Instruction::PMovI { .. }
                | Instruction::PMov { .. }
                | Instruction::PAluI { .. }
                | Instruction::PStore { .. }
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instruction::AluI { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instruction::Load {
                width: Width::Word,
                rd,
                base,
                offset,
            } => {
                write!(f, "lw {rd}, {offset}({base})")
            }
            Instruction::Load {
                width: Width::Byte,
                rd,
                base,
                offset,
            } => {
                write!(f, "lb {rd}, {offset}({base})")
            }
            Instruction::Store {
                width: Width::Word,
                rs,
                base,
                offset,
            } => {
                write!(f, "sw {rs}, {offset}({base})")
            }
            Instruction::Store {
                width: Width::Byte,
                rs,
                base,
                offset,
            } => {
                write!(f, "sb {rs}, {offset}({base})")
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "{} {rs1}, {rs2}, @{target}", cond.mnemonic())
            }
            Instruction::Jump { target } => write!(f, "jmp @{target}"),
            Instruction::Call { target } => write!(f, "call @{target}"),
            Instruction::Ret => write!(f, "ret"),
            Instruction::Syscall { code } => write!(f, "{}", code.mnemonic()),
            Instruction::Check { kind, cond, site } => {
                write!(f, "{} {cond}, #{site}", kind.mnemonic())
            }
            Instruction::SetWatch { base, len, tag } => {
                write!(f, "watch {base}, {len}, #{tag}")
            }
            Instruction::ClearWatch { tag } => write!(f, "unwatch #{tag}"),
            Instruction::PMovI { rd, imm } => write!(f, "pli {rd}, {imm}"),
            Instruction::PMov { rd, rs } => write!(f, "pmov {rd}, {rs}"),
            Instruction::PAluI { op, rd, rs1, imm } => {
                write!(f, "p{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instruction::PStore {
                width: Width::Word,
                rs,
                base,
                offset,
            } => {
                write!(f, "psw {rs}, {offset}({base})")
            }
            Instruction::PStore {
                width: Width::Byte,
                rs,
                base,
                offset,
            } => {
                write!(f, "psb {rs}, {offset}({base})")
            }
            Instruction::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_matches_semantics() {
        assert_eq!(AluOp::Add.eval(2, 3), Some(5));
        assert_eq!(AluOp::Add.eval(i32::MAX, 1), Some(i32::MIN));
        assert_eq!(AluOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(AluOp::Mul.eval(-4, 3), Some(-12));
        assert_eq!(AluOp::Div.eval(7, 2), Some(3));
        assert_eq!(AluOp::Div.eval(7, 0), None);
        assert_eq!(AluOp::Rem.eval(7, 0), None);
        assert_eq!(AluOp::Div.eval(i32::MIN, -1), Some(i32::MIN));
        assert_eq!(AluOp::Shl.eval(1, 33), Some(2), "shift masked to 5 bits");
        assert_eq!(AluOp::Shr.eval(-1, 28), Some(0xF));
        assert_eq!(AluOp::Sar.eval(-8, 2), Some(-2));
        assert_eq!(AluOp::Slt.eval(-1, 0), Some(1));
        assert_eq!(AluOp::Sltu.eval(-1, 0), Some(0), "unsigned compare");
        assert_eq!(AluOp::Sle.eval(3, 3), Some(1));
        assert_eq!(AluOp::Seq.eval(3, 4), Some(0));
        assert_eq!(AluOp::Sne.eval(3, 4), Some(1));
    }

    #[test]
    fn branch_negation_is_involutive_and_correct() {
        for cond in BranchCond::ALL {
            assert_eq!(cond.negate().negate(), cond);
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 5), (i32::MIN, i32::MAX)] {
                assert_eq!(cond.eval(a, b), !cond.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn control_transfer_classification() {
        assert!(Instruction::Ret.is_control_transfer());
        assert!(Instruction::Jump { target: 0 }.is_control_transfer());
        assert!(!Instruction::Nop.is_control_transfer());
        assert!(!Instruction::Syscall {
            code: SyscallCode::Exit
        }
        .is_control_transfer());
        assert!(Instruction::PMovI {
            rd: Reg::RV,
            imm: 3
        }
        .is_predicated());
        assert!(!Instruction::Nop.is_predicated());
    }

    #[test]
    fn display_is_stable() {
        let i = Instruction::Branch {
            cond: BranchCond::Lt,
            rs1: Reg::new(4),
            rs2: Reg::ZERO,
            target: 17,
        };
        assert_eq!(i.to_string(), "blt r4, zero, @17");
        let l = Instruction::Load {
            width: Width::Word,
            rd: Reg::RV,
            base: Reg::SP,
            offset: -8,
        };
        assert_eq!(l.to_string(), "lw r1, -8(sp)");
    }
}
