//! Human-readable run reports for `pxc`.

use pathexpander::PxRunResult;
use px_detect::{report as detections, Tool};
use px_lang::CompiledProgram;
use px_mach::RunResult;

use crate::options::Options;

/// Prints a plain monitored-run report.
pub fn print_baseline(compiled: &CompiledProgram, r: &RunResult, tool: Tool, opts: &Options) {
    println!("exit:         {:?}", r.exit);
    println!("instructions: {}", r.instructions);
    println!("cycles:       {}", r.cycles);
    let analysis = px_analyze::Analysis::of(&compiled.program);
    println!(
        "coverage:     {:.1}% of {} branch edges ({:.1}% of {} feasible)",
        r.coverage.branch_coverage(&compiled.program) * 100.0,
        compiled.program.static_edge_count(),
        r.coverage
            .branch_coverage_feasible(&compiled.program, analysis.feasible_edges())
            * 100.0,
        analysis.feasible_edge_count()
    );
    print_output(r.io.output());
    print_detections(compiled, &r.monitor, tool, opts);
}

/// Prints a PathExpander run report.
pub fn print_px(compiled: &CompiledProgram, r: &PxRunResult, tool: Tool, opts: &Options) {
    println!("exit:         {:?}", r.exit);
    println!("cycles:       {}", r.cycles);
    let analysis = px_analyze::Analysis::of(&compiled.program);
    println!(
        "coverage:     {:.1}% taken, {:.1}% with NT-paths ({:.1}% of {} feasible edges)",
        r.taken_coverage.branch_coverage(&compiled.program) * 100.0,
        r.total_coverage.branch_coverage(&compiled.program) * 100.0,
        r.total_coverage
            .branch_coverage_feasible(&compiled.program, analysis.feasible_edges())
            * 100.0,
        analysis.feasible_edge_count()
    );
    println!(
        "NT-paths:     {} spawned ({} instructions explored, {} skipped hot)",
        r.stats.spawns, r.stats.nt_instructions, r.stats.skipped_hot
    );
    if r.stats.skipped_static > 0 {
        println!(
            "  static-filter vetoes: {} spawn(s) suppressed",
            r.stats.skipped_static
        );
    }
    if opts.verbose {
        for class in [
            "max-length",
            "crash",
            "unsafe",
            "program-end",
            "sandbox-overflow",
        ] {
            let n = r.stats.stops_of(class);
            if n > 0 {
                println!("  stops[{class}]: {n}");
            }
        }
        if r.stats.random_spawns > 0 {
            println!("  random-factor spawns: {}", r.stats.random_spawns);
        }
        if r.stats.nt_syscalls_sandboxed > 0 {
            println!("  OS-sandboxed syscalls: {}", r.stats.nt_syscalls_sandboxed);
        }
    }
    print_output(r.io.output());
    print_detections(compiled, &r.monitor, tool, opts);
    if opts.annotate {
        println!("--- coverage-annotated disassembly (T taken, N NT-only, - infeasible) ---");
        print!(
            "{}",
            px_mach::Coverage::annotated_listing_feasible(
                &compiled.program,
                &r.taken_coverage,
                &r.total_coverage,
                Some(analysis.feasible_edges()),
            )
        );
    }
}

fn print_output(bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    let text = String::from_utf8_lossy(bytes);
    println!("--- program output ({} bytes) ---", bytes.len());
    for line in text.lines().take(20) {
        println!("{line}");
    }
    if text.lines().count() > 20 {
        println!("... (truncated)");
    }
    println!("---------------------------------");
}

fn print_detections(
    compiled: &CompiledProgram,
    monitor: &px_mach::MonitorArea,
    tool: Tool,
    opts: &Options,
) {
    let dets = detections(compiled, monitor, tool);
    if dets.is_empty() {
        println!("detections:   none");
        return;
    }
    println!("detections ({}):", tool.name());
    for d in &dets {
        let origin = match (d.on_taken_path, d.on_nt_path) {
            (true, true) => "taken path + NT-paths",
            (true, false) => "taken path",
            _ => "NT-paths only",
        };
        let verdict = if opts.bug_lines.is_empty() {
            String::new()
        } else if opts.bug_lines.contains(&d.line) {
            "  [SEEDED BUG]".to_owned()
        } else {
            "  [not in manifest]".to_owned()
        };
        println!("  line {:4}  x{:<5} {origin}{verdict}", d.line, d.count);
    }
}
