//! Command-line parsing for `pxc` (no external dependencies).

use pathexpander::PxConfig;
use px_detect::Tool;
use px_mach::{FaultMix, FaultPlan, IoState};

/// Usage text.
pub const USAGE: &str = "\
pxc — PathExpander command-line driver

USAGE:
    pxc run   <file.pxc|file.pxs> [options]   compile + run under PathExpander
    pxc base  <file.pxc|file.pxs> [options]   compile + plain monitored run
    pxc build <file.pxc|file.pxs> [options]   compile only
    pxc bench <workload>          [options]   run a bundled workload
    pxc analyze <file|workload>   [options]   static CFG analysis + lint
    pxc list                                  list bundled workloads
    pxc zoo list                              list the generated-zoo roster
    pxc zoo generate <spec>       [options]   print a generated program
    pxc zoo run <spec>            [options]   run a generated program
    pxc campaign --cases <manifest> [opts]    crash-safe case campaign
    pxc help                                  this text

    Zoo specs name generated programs: zoo:<shape>:<seed>[:n<size>][:<mix>]
    with shapes state-machine|parser|interpreter|recursive, sizes n1..n4 and
    bug mixes full|cold|lean|none (e.g. `zoo:parser:3:n3:lean`). Zoo names
    are also accepted by `pxc bench` and `pxc analyze`.

OPTIONS:
    --tool <ccured|iwatcher|assertions>  detector to arm (default: assertions)
    --cmp                                use the CMP option (4 cores)
    --max-nt-len <n>                     MaxNTPathLength (default 1000)
    --threshold <n>                      NTPathCounterThreshold (default 5)
    --max-outstanding <n>                MaxNumNTPaths for --cmp (default 32)
    --no-fixes                           disable §4.4 variable fixing
    --os-sandbox                         sandbox unsafe events (§3.2 extension)
    --random-factor <n>                  1-in-n spawns from hot edges (§7.1(2))
    --refit                              profile-guided fix refitting (§4.4
                                         value-invariants extension): profile
                                         on the run's input, then refit
    --input <file>                       program stdin from a file
    --input-text <string>                program stdin from the argument
    --seed <n>                           input/rand seed (default 1)
    --budget <n>                         instruction budget (default 100M)
    --fault-seed <n>                     inject NT-path faults from this seed
    --fault-mix <spec>                   fault kinds to inject, e.g.
                                         bitflip,crash=3 (implies injection)
    --fault-rate <n>                     inject roughly 1-in-n NT steps
                                         (default 4)
    --static-filter <k>                  (run/bench) veto NT spawns that must
                                         hit an unsafe event within k insns
    --json                               (analyze) machine-readable output
    --disasm                             (build) print the disassembly
    --annotate                           (run) print coverage-annotated
                                         disassembly: [T./N] per branch edge
    --verbose                            print NT-path stop breakdown

CAMPAIGN OPTIONS (pxc campaign):
    --cases <manifest>                   case manifest: `+`-joined generators
                                         fault:<seed>:<n>[:<mix>],
                                         zoo:<spec>[*K], zoo-roster[:quick],
                                         chaos:<seed>:<n>
    --journal <path>                     NDJSON journal (default
                                         px-campaign.ndjson); an existing
                                         journal for the same manifest is
                                         resumed, torn tail healed
    --timeout <n>                        per-case instruction watchdog
    --workers <n>                        worker threads (default: cores)
    --max-quarantine <n>                 abort (resumably) past n quarantined
    --only <id>                          replay one case inline, no journal
    --no-resume                          start fresh, overwriting any journal
    --json                               machine-readable report
";

/// What to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    Run(String),
    Base(String),
    Build(String),
    Bench(String),
    Analyze(String),
    List,
    Zoo(ZooCmd),
    Campaign(CampaignOpts),
    Help,
}

/// Options for `pxc campaign` (parsed by a dedicated loop — campaign flags
/// describe a whole fleet of runs, not one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOpts {
    /// The case manifest spec (`fault:…+zoo:…+chaos:…`).
    pub cases: String,
    /// Journal path (default `px-campaign.ndjson`).
    pub journal: String,
    /// Per-case instruction watchdog.
    pub timeout: u64,
    /// Worker threads (0 = one per core).
    pub workers: usize,
    /// Abort (resumably) once more than this many cases are quarantined.
    pub max_quarantine: Option<u64>,
    /// Replay a single case id inline (the quarantine replay command).
    pub only: Option<u64>,
    /// Start fresh, overwriting any existing journal.
    pub no_resume: bool,
    /// Emit the report as JSON.
    pub json: bool,
}

/// `pxc zoo` subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZooCmd {
    /// Print the E15 roster.
    List,
    /// Print the generated program and its bug manifest.
    Generate(String),
    /// Run the generated program under PathExpander.
    Run(String),
}

/// Parsed options.
#[derive(Debug, Clone)]
pub struct Options {
    pub action: Action,
    pub tool: Option<Tool>,
    pub px: PxConfig,
    pub input_file: Option<String>,
    pub input_text: Option<String>,
    pub seed: u64,
    pub disasm: bool,
    pub verbose: bool,
    pub refit: bool,
    pub annotate: bool,
    /// Emit machine-readable JSON (`analyze`).
    pub json: bool,
    /// Seed for NT-path fault injection (enables injection when set).
    pub fault_seed: Option<u64>,
    /// Fault kinds to inject (enables injection when set).
    pub fault_mix: Option<FaultMix>,
    /// Inject roughly one fault every `fault_rate` NT steps.
    pub fault_rate: u32,
    /// Known bug lines (set by `bench` from the workload manifest).
    pub bug_lines: Vec<u32>,
}

impl Options {
    /// Parses a raw argument list.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for unknown flags or missing values.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut it = args.iter().peekable();
        let action = match it.next().map(String::as_str) {
            None | Some("help" | "--help" | "-h") => Action::Help,
            Some("list") => Action::List,
            Some(verb @ ("run" | "base" | "build" | "bench" | "analyze")) => {
                let target = it
                    .next()
                    .ok_or_else(|| format!("`{verb}` needs a file or workload name"))?
                    .clone();
                match verb {
                    "run" => Action::Run(target),
                    "base" => Action::Base(target),
                    "build" => Action::Build(target),
                    "analyze" => Action::Analyze(target),
                    _ => Action::Bench(target),
                }
            }
            Some("zoo") => match it.next().map(String::as_str) {
                Some("list") => Action::Zoo(ZooCmd::List),
                Some(sub @ ("generate" | "run")) => {
                    let spec = it
                        .next()
                        .ok_or_else(|| format!("`zoo {sub}` needs a spec (e.g. zoo:parser:3)"))?
                        .clone();
                    if sub == "generate" {
                        Action::Zoo(ZooCmd::Generate(spec))
                    } else {
                        Action::Zoo(ZooCmd::Run(spec))
                    }
                }
                Some(other) => {
                    return Err(format!(
                        "unknown zoo subcommand `{other}` (expected list, generate or run)"
                    ))
                }
                None => return Err("`zoo` needs a subcommand: list, generate or run".to_owned()),
            },
            Some("campaign") => Action::Campaign(parse_campaign(&mut it)?),
            Some(other) => return Err(format!("unknown command `{other}`")),
        };

        let mut opts = Options {
            action,
            tool: None,
            px: PxConfig::default().with_max_instructions(100_000_000),
            input_file: None,
            input_text: None,
            seed: 1,
            disasm: false,
            verbose: false,
            refit: false,
            annotate: false,
            json: false,
            fault_seed: None,
            fault_mix: None,
            fault_rate: 4,
            bug_lines: Vec::new(),
        };

        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("`{name}` needs a value"))
            };
            match flag.as_str() {
                "--tool" => {
                    opts.tool = Some(match value("--tool")?.as_str() {
                        "ccured" => Tool::Ccured,
                        "iwatcher" => Tool::Iwatcher,
                        "assertions" => Tool::Assertions,
                        other => return Err(format!("unknown tool `{other}`")),
                    });
                }
                "--cmp" => opts.px = opts.px.clone().cmp(),
                "--max-nt-len" => {
                    opts.px = opts
                        .px
                        .clone()
                        .with_max_nt_path_len(parse_num(&value("--max-nt-len")?)?);
                }
                "--threshold" => {
                    let n: u32 = parse_num(&value("--threshold")?)?;
                    opts.px = opts.px.clone().with_counter_threshold(n.min(255) as u8);
                }
                "--max-outstanding" => {
                    opts.px = opts
                        .px
                        .clone()
                        .with_max_outstanding(parse_num(&value("--max-outstanding")?)?);
                }
                "--no-fixes" => opts.px = opts.px.clone().with_fixes(false),
                "--os-sandbox" => opts.px = opts.px.clone().with_os_sandbox(true),
                "--random-factor" => {
                    opts.px = opts
                        .px
                        .clone()
                        .with_random_factor(Some(parse_num(&value("--random-factor")?)?));
                }
                "--input" => opts.input_file = Some(value("--input")?),
                "--input-text" => opts.input_text = Some(value("--input-text")?),
                "--seed" => opts.seed = parse_u64("--seed", &value("--seed")?)?,
                "--budget" => {
                    let n = parse_u64("--budget", &value("--budget")?)?;
                    if n == 0 {
                        return Err("`--budget` must be at least 1 instruction".to_owned());
                    }
                    opts.px = opts.px.clone().with_max_instructions(n);
                }
                "--fault-seed" => {
                    opts.fault_seed = Some(parse_u64("--fault-seed", &value("--fault-seed")?)?);
                }
                "--fault-mix" => {
                    let spec = value("--fault-mix")?;
                    opts.fault_mix =
                        Some(FaultMix::parse(&spec).map_err(|e| format!("`--fault-mix`: {e}"))?);
                }
                "--fault-rate" => {
                    let n: u32 = parse_num(&value("--fault-rate")?)?;
                    if n == 0 {
                        return Err(
                            "`--fault-rate` must be at least 1 (one fault per NT step)".to_owned()
                        );
                    }
                    opts.fault_rate = n;
                }
                "--static-filter" => {
                    let k: u32 = parse_num(&value("--static-filter")?)?;
                    if k == 0 {
                        return Err("`--static-filter` must be at least 1".to_owned());
                    }
                    opts.px = opts.px.clone().with_static_nt_filter(Some(k));
                }
                "--json" => opts.json = true,
                "--disasm" => opts.disasm = true,
                "--verbose" => opts.verbose = true,
                "--refit" => opts.refit = true,
                "--annotate" => opts.annotate = true,
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    /// Builds the run's fault-injection plan, if any fault flag was given.
    ///
    /// `--fault-mix` alone injects with the run seed; `--fault-seed` alone
    /// injects a uniform mix.
    #[must_use]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.fault_seed.is_none() && self.fault_mix.is_none() {
            return None;
        }
        let seed = self.fault_seed.unwrap_or(self.seed);
        let mix = self.fault_mix.unwrap_or_else(FaultMix::uniform);
        Some(FaultPlan::new(seed, mix, self.fault_rate))
    }

    /// Builds the program's input state.
    ///
    /// # Errors
    ///
    /// Reports unreadable input files.
    pub fn io(&self) -> Result<IoState, String> {
        let bytes = if let Some(path) = &self.input_file {
            std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        } else if let Some(text) = &self.input_text {
            text.clone().into_bytes()
        } else {
            Vec::new()
        };
        Ok(IoState::new(bytes, self.seed))
    }
}

/// Drains the remaining arguments as `pxc campaign` flags.
fn parse_campaign(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
) -> Result<CampaignOpts, String> {
    let mut c = CampaignOpts {
        cases: String::new(),
        journal: "px-campaign.ndjson".to_owned(),
        timeout: px_campaign::Watchdog::DEFAULT_TIMEOUT,
        workers: 0,
        max_quarantine: None,
        only: None,
        no_resume: false,
        json: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        match flag.as_str() {
            "--cases" => c.cases = value("--cases")?,
            "--journal" => c.journal = value("--journal")?,
            "--timeout" => {
                let n = parse_u64("--timeout", &value("--timeout")?)?;
                if n == 0 {
                    return Err("`--timeout` must be at least 1 instruction".to_owned());
                }
                c.timeout = n;
            }
            "--workers" => c.workers = parse_num(&value("--workers")?)? as usize,
            "--max-quarantine" => {
                c.max_quarantine =
                    Some(parse_u64("--max-quarantine", &value("--max-quarantine")?)?);
            }
            "--only" => c.only = Some(parse_u64("--only", &value("--only")?)?),
            "--no-resume" => c.no_resume = true,
            "--json" => c.json = true,
            other => return Err(format!("unknown campaign option `{other}`")),
        }
    }
    if c.cases.is_empty() {
        return Err(
            "`campaign` needs `--cases <manifest>` (e.g. --cases chaos:1:64+zoo:parser:3)"
                .to_owned(),
        );
    }
    Ok(c)
}

fn parse_num(s: &str) -> Result<u32, String> {
    s.replace('_', "")
        .parse()
        .map_err(|_| format!("`{s}` is not a number"))
}

fn parse_u64(flag: &str, s: &str) -> Result<u64, String> {
    s.replace('_', "")
        .parse()
        .map_err(|_| format!("`{flag}` expects an unsigned integer, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Options::parse(&owned)
    }

    #[test]
    fn verbs_parse() {
        assert_eq!(parse(&["help"]).unwrap().action, Action::Help);
        assert_eq!(parse(&[]).unwrap().action, Action::Help);
        assert_eq!(parse(&["list"]).unwrap().action, Action::List);
        assert_eq!(
            parse(&["run", "x.pxc"]).unwrap().action,
            Action::Run("x.pxc".into())
        );
        assert_eq!(
            parse(&["bench", "bc"]).unwrap().action,
            Action::Bench("bc".into())
        );
        assert_eq!(
            parse(&["analyze", "bc"]).unwrap().action,
            Action::Analyze("bc".into())
        );
        assert!(parse(&["analyze"]).is_err());
        assert!(parse(&["run"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }

    #[test]
    fn zoo_verbs_parse() {
        assert_eq!(
            parse(&["zoo", "list"]).unwrap().action,
            Action::Zoo(ZooCmd::List)
        );
        assert_eq!(
            parse(&["zoo", "generate", "zoo:parser:3"]).unwrap().action,
            Action::Zoo(ZooCmd::Generate("zoo:parser:3".into()))
        );
        let o = parse(&[
            "zoo",
            "run",
            "zoo:recursive:1",
            "--tool",
            "ccured",
            "--json",
        ])
        .unwrap();
        assert_eq!(o.action, Action::Zoo(ZooCmd::Run("zoo:recursive:1".into())));
        assert_eq!(o.tool, Some(Tool::Ccured));
        assert!(o.json);
        assert!(parse(&["zoo"]).is_err());
        assert!(parse(&["zoo", "generate"]).is_err());
        assert!(parse(&["zoo", "feed"]).is_err());
    }

    #[test]
    fn campaign_flags_parse() {
        let o = parse(&[
            "campaign",
            "--cases",
            "chaos:1:8+zoo:parser:3*2",
            "--journal",
            "j.ndjson",
            "--timeout",
            "50000",
            "--workers",
            "3",
            "--max-quarantine",
            "10",
            "--no-resume",
            "--json",
        ])
        .unwrap();
        let Action::Campaign(c) = o.action else {
            panic!("expected a campaign action");
        };
        assert_eq!(c.cases, "chaos:1:8+zoo:parser:3*2");
        assert_eq!(c.journal, "j.ndjson");
        assert_eq!(c.timeout, 50_000);
        assert_eq!(c.workers, 3);
        assert_eq!(c.max_quarantine, Some(10));
        assert!(c.no_resume && c.json && c.only.is_none());

        let c = match parse(&["campaign", "--cases", "fault:1:4", "--only", "2"])
            .unwrap()
            .action
        {
            Action::Campaign(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(c.only, Some(2));
        assert_eq!(c.timeout, px_campaign::Watchdog::DEFAULT_TIMEOUT);
        assert_eq!(c.journal, "px-campaign.ndjson");

        assert!(parse(&["campaign"]).is_err(), "--cases is mandatory");
        assert!(parse(&["campaign", "--cases", "x", "--timeout", "0"]).is_err());
        assert!(parse(&["campaign", "--cases", "x", "--wat"]).is_err());
    }

    #[test]
    fn options_apply() {
        let o = parse(&[
            "run",
            "x.pxc",
            "--tool",
            "ccured",
            "--cmp",
            "--max-nt-len",
            "50",
            "--threshold",
            "2",
            "--no-fixes",
            "--os-sandbox",
            "--random-factor",
            "9",
            "--seed",
            "7",
            "--verbose",
        ])
        .unwrap();
        assert_eq!(o.tool, Some(Tool::Ccured));
        assert_eq!(o.px.mode, pathexpander::Mode::Cmp);
        assert_eq!(o.px.max_nt_path_len, 50);
        assert_eq!(o.px.counter_threshold, 2);
        assert!(!o.px.apply_fixes);
        assert!(o.px.os_sandbox_unsafe);
        assert_eq!(o.px.random_factor, Some(9));
        assert_eq!(o.seed, 7);
        assert!(o.verbose);
    }

    #[test]
    fn bad_values_rejected() {
        assert!(parse(&["run", "x", "--tool", "purify"]).is_err());
        assert!(parse(&["run", "x", "--threshold"]).is_err());
        assert!(parse(&["run", "x", "--seed", "abc"]).is_err());
        assert!(parse(&["run", "x", "--wat"]).is_err());
    }

    #[test]
    fn seeds_accept_full_u64_range() {
        let o = parse(&["run", "x", "--seed", "18446744073709551615"]).unwrap();
        assert_eq!(o.seed, u64::MAX);
        let e = parse(&["run", "x", "--seed", "-1"]).unwrap_err();
        assert!(e.contains("--seed") && e.contains("-1"), "{e}");
    }

    #[test]
    fn fault_flags_build_a_plan() {
        assert!(parse(&["run", "x"]).unwrap().fault_plan().is_none());
        let o = parse(&["run", "x", "--fault-seed", "9"]).unwrap();
        assert_eq!(o.fault_seed, Some(9));
        assert!(o.fault_plan().is_some(), "--fault-seed alone injects");
        let o = parse(&["run", "x", "--fault-mix", "crash=2,bitflip"]).unwrap();
        assert!(o.fault_plan().is_some(), "--fault-mix alone injects");
        assert_eq!(o.fault_rate, 4);
        let o = parse(&["run", "x", "--fault-seed", "1", "--fault-rate", "2"]).unwrap();
        assert_eq!(o.fault_rate, 2);
    }

    #[test]
    fn bad_fault_flags_give_helpful_errors() {
        let e = parse(&["run", "x", "--fault-mix", "gremlins"]).unwrap_err();
        assert!(e.contains("--fault-mix") && e.contains("gremlins"), "{e}");
        let e = parse(&["run", "x", "--fault-mix", "crash=zero"]).unwrap_err();
        assert!(e.contains("--fault-mix"), "{e}");
        let e = parse(&["run", "x", "--fault-rate", "0"]).unwrap_err();
        assert!(e.contains("--fault-rate"), "{e}");
        let e = parse(&["run", "x", "--fault-seed", "soon"]).unwrap_err();
        assert!(e.contains("--fault-seed") && e.contains("soon"), "{e}");
        assert!(parse(&["run", "x", "--budget", "0"]).is_err());
    }

    #[test]
    fn static_filter_and_json_flags() {
        let o = parse(&["run", "x", "--static-filter", "16"]).unwrap();
        assert_eq!(o.px.static_nt_filter, Some(16));
        assert!(parse(&["run", "x", "--static-filter", "0"]).is_err());
        let o = parse(&["analyze", "x", "--json"]).unwrap();
        assert!(o.json);
        assert_eq!(
            parse(&["run", "x"]).unwrap().px.static_nt_filter,
            None,
            "filter is opt-in"
        );
    }

    #[test]
    fn io_from_text() {
        let o = parse(&["run", "x", "--input-text", "41 1"]).unwrap();
        let mut io = o.io().unwrap();
        assert_eq!(io.read_int(), 41);
        assert_eq!(io.read_int(), 1);
    }
}
