//! `pxc` — compile and run PXC (or PXVM assembly) programs under
//! PathExpander from the command line.
//!
//! ```text
//! pxc run   prog.pxc [options]     compile + run with PathExpander
//! pxc base  prog.pxc [options]     compile + plain monitored run
//! pxc build prog.pxc [options]     compile only; print stats / disassembly
//! pxc bench <workload> [options]   run a bundled workload by name
//! pxc list                         list bundled workloads
//! ```
//!
//! See `pxc help` for the full option list.

use std::process::ExitCode;

use pathexpander::{Mode, PxConfig};
use px_detect::Tool;
use px_lang::{CompileOptions, CompiledProgram};
use px_mach::{IoState, MachConfig};

mod analyze;
mod campaign;
mod options;
mod report;
mod zoo;

use options::{Action, Options, ZooCmd};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("pxc: {msg}");
            eprintln!("{}", options::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pxc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    match &opts.action {
        Action::Help => {
            println!("{}", options::USAGE);
            Ok(ExitCode::SUCCESS)
        }
        Action::List => {
            println!("bundled workloads:");
            for w in px_workloads::all() {
                let bugs = w.bugs.len();
                let tools: Vec<&str> = w.tools.iter().map(|t| t.name()).collect();
                println!(
                    "  {:16} {:4} LOC, {} seeded bug(s), tools: {}",
                    w.name,
                    w.loc(),
                    bugs,
                    tools.join("/")
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Action::Build(path) => {
            let compiled = load(path, opts)?;
            println!(
                "{}: {} instructions, {} static branches ({} edges), {} check sites, {} watch tags",
                path,
                compiled.program.code.len(),
                compiled.program.static_branch_count(),
                compiled.program.static_edge_count(),
                compiled.sites.len(),
                compiled.watches.len()
            );
            if opts.disasm {
                println!("\n{}", compiled.program.disassemble());
            }
            Ok(ExitCode::SUCCESS)
        }
        Action::Run(path) | Action::Base(path) => {
            let mut compiled = load(path, opts)?;
            let io = opts.io()?;
            if opts.refit {
                refit(&mut compiled, io.clone(), opts);
            }
            let with_px = matches!(opts.action, Action::Run(_));
            execute(&compiled, io, opts, with_px)
        }
        Action::Analyze(target) => {
            // A workload name resolves through the bundle; anything else is
            // loaded (and compiled, for `.pxc`) like `run` would.
            let compiled = if let Some(workload) = px_workloads::by_name(target) {
                let tool = opts.tool.unwrap_or(workload.tools[0]);
                workload
                    .compile_for(tool)
                    .map_err(|e| format!("compile error: {e}"))?
            } else {
                load(target, opts)?
            };
            let analysis = px_analyze::Analysis::of(&compiled.program);
            if opts.json {
                println!(
                    "{}",
                    analyze::render_json(target, &compiled.program, &analysis)
                );
            } else {
                print!(
                    "{}",
                    analyze::render_human(target, &compiled.program, &analysis)
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Action::Zoo(cmd) => {
            let text = match cmd {
                ZooCmd::List => zoo::list(opts.json),
                ZooCmd::Generate(spec) => zoo::generate(spec, opts.json)?,
                ZooCmd::Run(spec) => zoo::run(spec, opts)?,
            };
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
            Ok(ExitCode::SUCCESS)
        }
        Action::Campaign(c) => campaign::campaign(c),
        Action::Bench(name) => {
            let workload = px_workloads::by_name(name)
                .ok_or_else(|| format!("unknown workload `{name}` (try `pxc list`)"))?;
            let tool = opts.tool.unwrap_or(workload.tools[0]);
            let compiled = workload
                .compile_for(tool)
                .map_err(|e| format!("compile error: {e}"))?;
            let io = IoState::new(workload.general_input(opts.seed), opts.seed);
            let mut opts = opts.clone();
            // Pin the resolved tool so `execute` reports with the same tool
            // the workload was compiled for (not the Assertions default).
            opts.tool = Some(tool);
            if opts.px.max_nt_path_len == PxConfig::default().max_nt_path_len {
                opts.px.max_nt_path_len = workload.max_nt_path_len;
            }
            opts.bug_lines = workload.bug_lines_for(tool);
            let mut compiled = compiled;
            if opts.refit {
                refit(&mut compiled, io.clone(), &opts);
            }
            execute(&compiled, io, &opts, true)
        }
    }
}

fn load(path: &str, opts: &Options) -> Result<CompiledProgram, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".pxs") || path.ends_with(".s") {
        let program = px_isa::asm::assemble(&source).map_err(|e| format!("assembly error: {e}"))?;
        return Ok(CompiledProgram {
            program,
            sites: Vec::new(),
            watches: Vec::new(),
            fix_sites: Vec::new(),
        });
    }
    let tool = opts.tool.unwrap_or(Tool::Assertions);
    let mut copts: CompileOptions = tool.compile_options();
    copts.insert_fixes = opts.px.apply_fixes || copts.insert_fixes;
    px_lang::compile(&source, &copts).map_err(|e| format!("compile error: {e}"))
}

fn execute(
    compiled: &CompiledProgram,
    io: IoState,
    opts: &Options,
    with_px: bool,
) -> Result<ExitCode, String> {
    let tool = opts.tool.unwrap_or(Tool::Assertions);
    let mut plan = opts.fault_plan();
    if !with_px {
        let r = px_mach::run_baseline_with(
            &compiled.program,
            &MachConfig::single_core(),
            io,
            opts.px.max_instructions,
            plan.as_mut().map(|p| p as &mut dyn px_mach::FaultHook),
        );
        report::print_baseline(compiled, &r, tool, opts);
        if let Some(plan) = &plan {
            println!("faults:       {} injected", plan.stats.total());
        }
        return Ok(exit_code(matches!(r.exit, px_mach::RunExit::Exited(0))));
    }
    let mach = match opts.px.mode {
        Mode::Standard => MachConfig::single_core(),
        Mode::Cmp => MachConfig::default(),
    };
    let r = pathexpander::run_with(
        &compiled.program,
        &mach,
        &opts.px,
        io,
        plan.as_mut().map(|p| p as &mut dyn px_mach::FaultHook),
    );
    report::print_px(compiled, &r, tool, opts);
    if plan.is_some() {
        println!(
            "faults:       {} injected into NT-paths (committed state unaffected)",
            r.stats.faults_injected
        );
    }
    Ok(exit_code(matches!(r.exit, px_mach::RunExit::Exited(0))))
}

fn refit(compiled: &mut CompiledProgram, io: IoState, opts: &Options) {
    let profile = px_lang::refit::collect_branch_profile(
        &compiled.program,
        &MachConfig::single_core(),
        io,
        opts.px.max_instructions,
    );
    let patched = px_lang::refit_fixes(compiled, &profile);
    println!("refit:        {patched} fix value(s) moved into observed ranges");
}

fn exit_code(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
