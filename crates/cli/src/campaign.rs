//! `pxc campaign` — the crash-safe campaign runner as a CLI verb.
//!
//! Drives [`px_campaign`] over a deterministic case manifest: work-stealing
//! workers, per-case instruction watchdogs, panic quarantine, an
//! append-only NDJSON journal with checkpoints, and SIGINT drain. A killed
//! or interrupted campaign resumes from its journal with a byte-identical
//! aggregate digest.
//!
//! `--only <id>` replays a single case inline with the same containment —
//! the exact command the quarantine file emits next to each entry.

use std::path::PathBuf;
use std::process::ExitCode;

use px_campaign::{
    run_only, run_with_shutdown, CampaignConfig, CampaignReport, CaseOutcome, Manifest,
};

use crate::options::CampaignOpts;

/// Runs `pxc campaign`.
///
/// # Errors
///
/// Reports bad manifest specs, journal I/O failures, journal corruption,
/// and journals belonging to a different campaign.
pub fn campaign(o: &CampaignOpts) -> Result<ExitCode, String> {
    let manifest = Manifest::parse(&o.cases).map_err(|e| format!("--cases: {e}"))?;
    if let Some(id) = o.only {
        return replay(&manifest, o, id);
    }

    let mut cfg = CampaignConfig::new(manifest, PathBuf::from(&o.journal));
    cfg.timeout = o.timeout;
    cfg.workers = o.workers;
    cfg.max_quarantine = o.max_quarantine;
    cfg.resume = !o.no_resume;
    let shutdown = px_campaign::signal::install();
    let report = run_with_shutdown(&cfg, shutdown).map_err(|e| e.to_string())?;

    if o.json {
        println!("{}", report.to_json().dump());
    } else {
        print_human(&cfg, &report, o);
    }
    Ok(if report.complete() && !report.quarantine_limit_hit {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `--only <id>`: one case, inline, no journal. Exits non-zero unless the
/// case completed cleanly, so replays of quarantined cases "fail" visibly.
fn replay(manifest: &Manifest, o: &CampaignOpts, id: u64) -> Result<ExitCode, String> {
    let total = manifest.total();
    if id >= total {
        return Err(format!(
            "--only {id} is out of range: manifest `{manifest}` has {total} case(s)"
        ));
    }
    let rec = run_only(manifest, o.timeout, id);
    if o.json {
        println!("{}", rec.to_line());
    } else {
        println!("case {}  ({})", rec.id, rec.case);
        println!("  outcome: {}  exit: {}", rec.outcome.name(), rec.exit);
        if !rec.detail.is_empty() {
            println!("  detail:  {}", rec.detail);
        }
    }
    Ok(if rec.outcome == CaseOutcome::Done {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn print_human(cfg: &CampaignConfig, r: &CampaignReport, o: &CampaignOpts) {
    let state = if r.complete() {
        "complete"
    } else if r.quarantine_limit_hit {
        "ABORTED (quarantine limit)"
    } else if r.interrupted {
        "interrupted (journal is resumable)"
    } else {
        "incomplete"
    };
    println!("campaign `{}`: {}", r.manifest, state);
    println!(
        "  cases:      {}/{} journaled ({} resumed, {} run now, {} steals)",
        r.aggregate.total, r.total, r.resumed, r.ran, r.steals
    );
    let [done, panicked, timed_out, violated] = r.aggregate.outcomes;
    println!(
        "  outcomes:   {done} done, {panicked} panicked, {timed_out} timed out, \
         {violated} violated"
    );
    println!(
        "  aggregate:  {} faults, {} NT-paths, {} detections, {} edges covered, \
         digest {:016x}",
        r.aggregate.faults,
        r.aggregate.nt_paths,
        r.aggregate.detections,
        r.aggregate.covered_edges,
        r.digest()
    );
    println!("  journal:    {}", cfg.journal.display());
    if r.quarantined.is_empty() {
        println!("  quarantine: empty");
    } else {
        println!(
            "  quarantine: {} case(s) -> {}",
            r.quarantined.len(),
            cfg.quarantine_path().display()
        );
        for rec in &r.quarantined {
            println!(
                "    #{} {} [{}] replay: pxc campaign --cases {} --timeout {} --only {}",
                rec.id,
                rec.case,
                rec.outcome.name(),
                r.manifest,
                o.timeout,
                rec.id
            );
        }
    }
}
