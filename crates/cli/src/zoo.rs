//! `pxc zoo` — list, generate and run programs from the generated workload
//! zoo.
//!
//! All three subcommands share the determinism contract of the rest of the
//! CLI: `--json` output is rendered with px-util's insertion-ordered
//! emitter and contains only simulated (machine-independent) quantities, so
//! two invocations with the same arguments are byte-identical — the golden
//! test in `tests/zoo_golden.rs` pins the `generate` format.

use pathexpander::Mode;
use px_analyze::Analysis;
use px_detect::{classify, first_true_positive_cycle, report, Tool};
use px_mach::{run_baseline, IoState, MachConfig};
use px_util::Json;
use px_workloads::zoo::{self, ZooSpec};
use px_workloads::Workload;

use crate::options::Options;

/// Renders `pxc zoo list`.
#[must_use]
pub fn list(json: bool) -> String {
    let specs = zoo::roster();
    if json {
        let rows: Vec<Json> = specs
            .iter()
            .map(|spec| {
                let w = zoo::generate(spec);
                Json::obj([
                    ("spec", Json::Str(spec.to_string())),
                    ("shape", Json::Str(spec.shape.name().to_owned())),
                    ("seed", Json::UInt(spec.seed)),
                    ("size", Json::UInt(u64::from(spec.size))),
                    ("mix", Json::Str(spec.mix.name().to_owned())),
                    ("loc", Json::UInt(w.loc() as u64)),
                    ("bugs", Json::UInt(w.bugs.len() as u64)),
                    (
                        "expected_detected",
                        Json::UInt(
                            w.bugs
                                .iter()
                                .filter(|b| b.escape.expected_detected())
                                .count() as u64,
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str("pxc/zoo-list-v1".to_owned())),
            ("families", Json::Arr(rows)),
        ])
        .dump()
    } else {
        let mut out = String::new();
        out.push_str("generated zoo roster (E15):\n");
        for spec in &specs {
            let w = zoo::generate(spec);
            out.push_str(&format!(
                "  {:28} {:4} LOC, {} bug(s), {} expected detected\n",
                spec.to_string(),
                w.loc(),
                w.bugs.len(),
                w.bugs
                    .iter()
                    .filter(|b| b.escape.expected_detected())
                    .count()
            ));
        }
        out.push_str(&format!("{} families\n", specs.len()));
        out
    }
}

/// Bug manifest rows shared by `generate` and `run` JSON.
fn bug_rows(w: &Workload) -> Vec<Json> {
    w.bugs
        .iter()
        .map(|b| {
            let class = zoo::bug_class_of(&b.id).map_or("?", |c| c.name());
            Json::obj([
                ("id", Json::Str(b.id.clone())),
                ("class", Json::Str(class.to_owned())),
                ("tool", Json::Str(b.tool.name().to_owned())),
                ("line", Json::UInt(u64::from(w.marker_line(&b.marker)))),
                (
                    "expected_detected",
                    Json::Bool(b.escape.expected_detected()),
                ),
                ("description", Json::Str(b.description.clone())),
            ])
        })
        .collect()
}

/// Renders `pxc zoo generate <spec>`.
///
/// # Errors
///
/// Reports malformed specs.
pub fn generate(spec_str: &str, json: bool) -> Result<String, String> {
    let spec = ZooSpec::parse(spec_str)?;
    let w = zoo::generate(&spec);
    if json {
        Ok(Json::obj([
            ("schema", Json::Str("pxc/zoo-generate-v1".to_owned())),
            ("spec", Json::Str(spec.to_string())),
            ("shape", Json::Str(spec.shape.name().to_owned())),
            ("seed", Json::UInt(spec.seed)),
            ("size", Json::UInt(u64::from(spec.size))),
            ("mix", Json::Str(spec.mix.name().to_owned())),
            ("loc", Json::UInt(w.loc() as u64)),
            ("max_nt_path_len", Json::UInt(u64::from(w.max_nt_path_len))),
            ("bugs", Json::Arr(bug_rows(&w))),
            ("source", Json::Str(w.source.clone())),
        ])
        .dump())
    } else {
        let mut out = String::new();
        out.push_str(&w.source);
        out.push_str(&format!(
            "\n/* {} — {} LOC, {} injected bug(s):\n",
            w.name,
            w.loc(),
            w.bugs.len()
        ));
        for b in &w.bugs {
            out.push_str(&format!(
                " *   {:8} line {:3} [{}] {} — {}\n",
                b.id,
                w.marker_line(&b.marker),
                b.tool.name(),
                if b.escape.expected_detected() {
                    "expect detect"
                } else {
                    "expect escape"
                },
                b.description
            ));
        }
        out.push_str(" */\n");
        Ok(out)
    }
}

/// Runs one generated program for every tool and renders the result.
///
/// # Errors
///
/// Reports malformed specs (compiles cannot fail for generated programs).
pub fn run(spec_str: &str, opts: &Options) -> Result<String, String> {
    let spec = ZooSpec::parse(spec_str)?;
    let w = zoo::generate(&spec);
    let mut px = opts.px.clone();
    if px.max_nt_path_len == pathexpander::PxConfig::default().max_nt_path_len {
        px.max_nt_path_len = w.max_nt_path_len;
    }
    let mach = match px.mode {
        Mode::Standard => MachConfig::single_core(),
        Mode::Cmp => MachConfig::default(),
    };
    let engine = match px.mode {
        Mode::Standard => "standard",
        Mode::Cmp => "cmp",
    };
    let input = w.general_input(opts.seed);

    let tools: Vec<Tool> = match opts.tool {
        Some(t) => vec![t],
        None => Tool::ALL.to_vec(),
    };
    let mut tool_rows = Vec::new();
    let mut human = String::new();
    human.push_str(&format!(
        "zoo run {} — engine {engine}, seed {}, {} LOC, {} bug(s)\n",
        w.name,
        opts.seed,
        w.loc(),
        w.bugs.len()
    ));
    for tool in tools {
        let compiled = w
            .compile_for(tool)
            .map_err(|e| format!("compile error: {e}"))?;
        let analysis = Analysis::of(&compiled.program);
        let feasible = analysis.feasible_edge_count();
        let io = IoState::new(input.clone(), opts.seed);
        let base = run_baseline(
            &compiled.program,
            &MachConfig::single_core(),
            io.clone(),
            px.max_instructions,
        );
        let r = pathexpander::run_with(&compiled.program, &mach, &px, io, None);

        // Classify against the union of all bug lines: an off-by-one bug
        // line also trips CCured's bounds check, and crediting it as a true
        // positive under either tool matches how the paper counts bugs.
        let all_lines: Vec<u32> = w.bugs.iter().map(|b| w.marker_line(&b.marker)).collect();
        let dets = report(&compiled, &r.monitor, tool);
        let base_dets = report(&compiled, &base.monitor, tool);
        let c = classify(&dets, &all_lines, false);
        let base_c = classify(&base_dets, &all_lines, false);
        let latency = first_true_positive_cycle(&compiled, &r.monitor, tool, &all_lines);

        let bug_rows: Vec<Json> = w
            .bugs
            .iter()
            .filter(|b| b.tool == tool)
            .map(|b| {
                let line = w.marker_line(&b.marker);
                let detected = c.true_positive_lines.contains(&line);
                Json::obj([
                    ("id", Json::Str(b.id.clone())),
                    ("line", Json::UInt(u64::from(line))),
                    (
                        "expected_detected",
                        Json::Bool(b.escape.expected_detected()),
                    ),
                    ("detected", Json::Bool(detected)),
                ])
            })
            .collect();
        human.push_str(&format!(
            "  [{}] taken {}/{} feasible edges, px {}/{}; \
             base TPs {}, px TPs {}, FPs {}, spawns {}{}\n",
            tool.name(),
            r.taken_coverage
                .covered_feasible_edges(&compiled.program, analysis.feasible_edges()),
            feasible,
            r.total_coverage
                .covered_feasible_edges(&compiled.program, analysis.feasible_edges()),
            feasible,
            base_c.true_positive_lines.len(),
            c.true_positive_lines.len(),
            c.false_positive_lines.len(),
            r.stats.spawns,
            latency.map_or(String::new(), |c| format!(", first TP @cycle {c}")),
        ));
        for b in w.bugs.iter().filter(|b| b.tool == tool) {
            let line = w.marker_line(&b.marker);
            let detected = c.true_positive_lines.contains(&line);
            human.push_str(&format!(
                "      {:8} line {:3} expected={} detected={}\n",
                b.id,
                line,
                b.escape.expected_detected(),
                detected
            ));
        }
        tool_rows.push(Json::obj([
            ("tool", Json::Str(tool.name().to_owned())),
            ("exit", Json::Str(format!("{:?}", r.exit))),
            ("cycles", Json::UInt(r.cycles)),
            ("spawns", Json::UInt(r.stats.spawns)),
            ("feasible_edges", Json::UInt(u64::from(feasible))),
            (
                "taken_feasible_covered",
                Json::UInt(u64::from(r.taken_coverage.covered_feasible_edges(
                    &compiled.program,
                    analysis.feasible_edges(),
                ))),
            ),
            (
                "total_feasible_covered",
                Json::UInt(u64::from(r.total_coverage.covered_feasible_edges(
                    &compiled.program,
                    analysis.feasible_edges(),
                ))),
            ),
            (
                "baseline_true_positives",
                Json::UInt(base_c.true_positive_lines.len() as u64),
            ),
            (
                "true_positives",
                Json::UInt(c.true_positive_lines.len() as u64),
            ),
            (
                "false_positives",
                Json::UInt(c.false_positive_lines.len() as u64),
            ),
            ("first_tp_cycle", latency.map_or(Json::Null, Json::UInt)),
            ("bugs", Json::Arr(bug_rows)),
        ]));
    }
    if opts.json {
        Ok(Json::obj([
            ("schema", Json::Str("pxc/zoo-run-v1".to_owned())),
            ("spec", Json::Str(spec.to_string())),
            ("engine", Json::Str(engine.to_owned())),
            ("seed", Json::UInt(opts.seed)),
            ("tools", Json::Arr(tool_rows)),
        ])
        .dump())
    } else {
        Ok(human)
    }
}
