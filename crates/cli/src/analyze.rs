//! `pxc analyze` — render px-analyze results for a program or workload.
//!
//! Human output summarises the CFG, feasibility, NT-safety and lint
//! findings; `--json` emits one canonical object (px-util's deterministic
//! emitter: insertion-ordered keys, byte-identical across runs) so the
//! golden test in `tests/analyze_golden.rs` can gate the format.

use px_analyze::{Analysis, BranchEdge};
use px_isa::{Instruction, Program};
use px_util::Json;

/// Per-branch summary row used by both renderers.
struct BranchRow {
    pc: u32,
    line: u32,
    feasible: [bool; 2],
    /// Shortest static distance to an unsafe event per edge.
    unsafe_dist: [Option<u32>; 2],
}

fn branch_rows(program: &Program, analysis: &Analysis) -> Vec<BranchRow> {
    program
        .code
        .iter()
        .enumerate()
        .filter(|(_, insn)| matches!(insn, Instruction::Branch { .. }))
        .map(|(pc, _)| {
            let pc = pc as u32;
            let per_edge = |edge: BranchEdge| {
                (
                    analysis.edge_feasible(pc, edge),
                    analysis.edge_unsafe_distance(program, pc, edge),
                )
            };
            let (ft, dt) = per_edge(BranchEdge::Taken);
            let (fn_, dn) = per_edge(BranchEdge::NotTaken);
            BranchRow {
                pc,
                line: program.source_line(pc),
                feasible: [ft, fn_],
                unsafe_dist: [dt, dn],
            }
        })
        .collect()
}

/// Renders the analysis as deterministic JSON.
#[must_use]
pub fn render_json(name: &str, program: &Program, analysis: &Analysis) -> String {
    let opt_u32 = |v: Option<u32>| v.map_or(Json::Null, |d| Json::UInt(u64::from(d)));
    let branches: Vec<Json> = branch_rows(program, analysis)
        .into_iter()
        .map(|row| {
            Json::obj([
                ("pc", Json::UInt(u64::from(row.pc))),
                ("line", Json::UInt(u64::from(row.line))),
                (
                    "feasible",
                    Json::Arr(vec![
                        Json::Bool(row.feasible[0]),
                        Json::Bool(row.feasible[1]),
                    ]),
                ),
                (
                    "unsafe_distance",
                    Json::Arr(vec![
                        opt_u32(row.unsafe_dist[0]),
                        opt_u32(row.unsafe_dist[1]),
                    ]),
                ),
            ])
        })
        .collect();
    let diagnostics: Vec<Json> = analysis
        .diagnostics()
        .iter()
        .map(|d| {
            Json::obj([
                ("kind", Json::Str(d.kind.name().to_owned())),
                ("pc", Json::UInt(u64::from(d.pc))),
                ("line", Json::UInt(u64::from(d.line))),
                ("message", Json::Str(d.message.clone())),
            ])
        })
        .collect();
    Json::obj([
        ("program", Json::Str(name.to_owned())),
        ("instructions", Json::UInt(program.code.len() as u64)),
        ("blocks", Json::UInt(analysis.cfg().blocks().len() as u64)),
        (
            "static_edges",
            Json::UInt(u64::from(program.static_edge_count())),
        ),
        (
            "feasible_edges",
            Json::UInt(u64::from(analysis.feasible_edge_count())),
        ),
        (
            "decided_branches",
            Json::UInt(u64::from(analysis.decided_branch_count(program))),
        ),
        ("branches", Json::Arr(branches)),
        ("diagnostics", Json::Arr(diagnostics)),
    ])
    .dump()
}

/// Renders the analysis for humans.
#[must_use]
pub fn render_human(name: &str, program: &Program, analysis: &Analysis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: {} instructions, {} basic blocks",
        program.code.len(),
        analysis.cfg().blocks().len()
    );
    let _ = writeln!(
        out,
        "edges:        {} static, {} feasible ({} branch outcomes decided statically)",
        program.static_edge_count(),
        analysis.feasible_edge_count(),
        analysis.decided_branch_count(program)
    );
    let rows = branch_rows(program, analysis);
    let _ = writeln!(
        out,
        "branches:     pc  line  [taken not-taken]  unsafe-distance"
    );
    for row in &rows {
        let feas = |f: bool| if f { "feasible" } else { "infeasible" };
        let dist = |d: Option<u32>| d.map_or_else(|| "-".to_owned(), |d| d.to_string());
        let _ = writeln!(
            out,
            "  {:>6} {:>5}  [{} {}]  [{} {}]",
            row.pc,
            row.line,
            feas(row.feasible[0]),
            feas(row.feasible[1]),
            dist(row.unsafe_dist[0]),
            dist(row.unsafe_dist[1]),
        );
    }
    let diags = analysis.diagnostics();
    if diags.is_empty() {
        let _ = writeln!(out, "lint:         clean");
    } else {
        let _ = writeln!(out, "lint:         {} finding(s)", diags.len());
        for d in diags {
            let _ = writeln!(
                out,
                "  {}: pc {} (line {}): {}",
                d.kind.name(),
                d.pc,
                d.line,
                d.message
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_isa::asm::assemble;

    fn sample() -> Program {
        assemble(
            r"
            .code
            main:
                li r2, 1              ; 0
                beq r2, zero, dead    ; 1
                readi                 ; 2
                beq r1, zero, out     ; 3
                nop                   ; 4
            out:
                exit                  ; 5
            dead:
                exit                  ; 6
            ",
        )
        .unwrap()
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let p = sample();
        let a1 = Analysis::of(&p);
        let a2 = Analysis::of(&p);
        let j1 = render_json("sample", &p, &a1);
        let j2 = render_json("sample", &p, &a2);
        assert_eq!(j1, j2, "byte-identical across runs");
        assert!(j1.contains("\"feasible_edges\":3"), "{j1}");
        assert!(j1.contains("\"static_edges\":4"), "{j1}");
        assert!(j1.contains("unreachable-code"), "{j1}");
    }

    #[test]
    fn human_output_summarises() {
        let p = sample();
        let a = Analysis::of(&p);
        let h = render_human("sample", &p, &a);
        assert!(h.contains("4 static, 3 feasible"), "{h}");
        assert!(h.contains("unreachable-code"), "{h}");
    }
}
