//! End-to-end tests of `pxc campaign`, driving the real binary: fresh run,
//! resume-from-journal digest identity, quarantine replay via `--only`,
//! and flag validation.

use std::path::PathBuf;
use std::process::Command;

/// A small mixed manifest: chaos cases (2 panic + 3 runaway under this
/// seed), real fault-injection cases, and one zoo family.
const MANIFEST: &str = "chaos:5:20+fault:2:6+zoo:parser:3";
const TIMEOUT: &str = "10000";

fn pxc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pxc"))
        .args(args)
        .output()
        .expect("pxc runs")
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pxc-cli-{}-{name}.ndjson", std::process::id()))
}

fn cleanup(j: &PathBuf) {
    let _ = std::fs::remove_file(j);
    let mut q = j.as_os_str().to_owned();
    q.push(".quarantine");
    let _ = std::fs::remove_file(PathBuf::from(q));
}

fn field<'a>(json: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"));
    let rest = &json[at + pat.len()..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key}"));
    rest[..end].trim_matches('"')
}

#[test]
fn campaign_runs_resumes_and_keeps_its_digest() {
    let j = journal("resume");
    cleanup(&j);
    let jarg = j.to_str().unwrap();

    let first = pxc(&[
        "campaign",
        "--cases",
        MANIFEST,
        "--journal",
        jarg,
        "--timeout",
        TIMEOUT,
        "--workers",
        "2",
        "--json",
    ]);
    assert!(first.status.success(), "{first:?}");
    let out1 = stdout_of(&first);
    assert_eq!(field(&out1, "complete"), "true");
    assert_eq!(field(&out1, "ran"), "29");
    let digest = field(&out1, "digest").to_owned();

    // A second invocation resumes the complete journal: nothing re-runs and
    // the aggregate digest is byte-identical.
    let second = pxc(&[
        "campaign",
        "--cases",
        MANIFEST,
        "--journal",
        jarg,
        "--timeout",
        TIMEOUT,
        "--json",
    ]);
    assert!(second.status.success(), "{second:?}");
    let out2 = stdout_of(&second);
    assert_eq!(field(&out2, "resumed"), "29");
    assert_eq!(field(&out2, "ran"), "0");
    assert_eq!(field(&out2, "digest"), digest);

    // The quarantine file sits next to the journal and names replay commands.
    let mut q = j.as_os_str().to_owned();
    q.push(".quarantine");
    let qtext = std::fs::read_to_string(PathBuf::from(q)).expect("quarantine file");
    assert!(
        qtext.contains(&format!(
            "pxc campaign --cases {MANIFEST} --timeout {TIMEOUT} --only"
        )),
        "{qtext}"
    );

    // A different campaign must refuse the same journal.
    let wrong = pxc(&[
        "campaign",
        "--cases",
        "chaos:9:4",
        "--journal",
        jarg,
        "--timeout",
        TIMEOUT,
    ]);
    assert!(!wrong.status.success());
    let err = String::from_utf8_lossy(&wrong.stderr).into_owned();
    assert!(err.contains("belongs to campaign"), "{err}");
    cleanup(&j);
}

#[test]
fn only_replays_a_quarantined_case_with_containment() {
    // Chaos case 1 under seed 5 panics by design; the replay command the
    // quarantine file emits must reproduce that verdict inline and "fail".
    let out = pxc(&[
        "campaign",
        "--cases",
        MANIFEST,
        "--timeout",
        TIMEOUT,
        "--only",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout_of(&out);
    assert!(text.contains("panicked"), "{text}");

    // A clean case replays successfully.
    let ok = pxc(&[
        "campaign",
        "--cases",
        MANIFEST,
        "--timeout",
        TIMEOUT,
        "--only",
        "2",
        "--json",
    ]);
    assert!(ok.status.success(), "{ok:?}");
    assert_eq!(field(&stdout_of(&ok), "outcome"), "done");
}

#[test]
fn campaign_flag_errors_are_usage_errors() {
    let out = pxc(&["campaign"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cases"));

    let out = pxc(&["campaign", "--cases", "gremlins:1:2"]);
    assert_eq!(out.status.code(), Some(1), "bad manifests fail loudly");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cases"));

    let out = pxc(&["campaign", "--cases", MANIFEST, "--only", "999"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    let out = pxc(&["campaign", "--cases", MANIFEST, "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("campaign option"));
}
