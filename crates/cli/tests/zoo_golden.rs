//! Golden test for `pxc zoo --json`: the generate output is the zoo's
//! machine interface (the E15 harness and external scripts parse it), so
//! its exact bytes are pinned against a committed fixture, and the three
//! subcommands are re-verified byte-identical across process invocations
//! for one family of every sampled shape.

use std::process::Command;

fn pxc(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_pxc"))
        .args(args)
        .output()
        .expect("spawn pxc");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.success(),
    )
}

#[test]
fn zoo_generate_json_matches_the_committed_golden() {
    let (stdout, ok) = pxc(&["zoo", "generate", "zoo:parser:1", "--json"]);
    assert!(ok, "pxc zoo generate failed:\n{stdout}");
    let golden = include_str!("golden/zoo_parser_1.json");
    assert_eq!(
        stdout, golden,
        "pxc zoo generate --json drifted from the golden file; if the \
         change is intentional, regenerate tests/golden/zoo_parser_1.json"
    );
    // The fixture must keep pinning the interface surface: the schema tag,
    // ground-truth bug manifest with taxonomy classes, and the source.
    for needle in [
        "\"schema\":\"pxc/zoo-generate-v1\"",
        "\"expected_detected\":true",
        "\"expected_detected\":false",
        "\"class\":\"panic-safety\"",
        "\"class\":\"lifetime-confusion\"",
        "/*ZBUG:bo-cold*/",
    ] {
        assert!(golden.contains(needle), "golden lost coverage of {needle}");
    }
}

#[test]
fn zoo_json_is_byte_identical_across_invocations() {
    for spec in [
        "zoo:parser:1",
        "zoo:state-machine:2:n3",
        "zoo:recursive:5:lean",
    ] {
        for verb in ["generate", "run"] {
            let (first, ok1) = pxc(&["zoo", verb, spec, "--json"]);
            let (second, ok2) = pxc(&["zoo", verb, spec, "--json"]);
            assert!(ok1 && ok2, "pxc zoo {verb} {spec} failed");
            assert!(!first.is_empty(), "{spec}: empty {verb} output");
            assert_eq!(
                first, second,
                "{spec}: zoo {verb} --json must be deterministic across runs"
            );
        }
    }
    let (first, ok1) = pxc(&["zoo", "list", "--json"]);
    let (second, ok2) = pxc(&["zoo", "list", "--json"]);
    assert!(ok1 && ok2, "pxc zoo list failed");
    assert_eq!(first, second, "zoo list --json must be deterministic");
}
