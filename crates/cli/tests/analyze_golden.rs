//! Golden test for `pxc analyze --json`: the emitted JSON is a stable,
//! deterministic interface (scripts parse it), so its exact bytes are
//! pinned against a committed fixture — and re-verified to be identical
//! across process invocations for several bundled workloads.

use std::process::Command;

fn pxc(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_pxc"))
        .args(args)
        .output()
        .expect("spawn pxc");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.success(),
    )
}

#[test]
fn analyze_json_matches_the_committed_golden() {
    // Integration tests run with the crate root as cwd, so this relative
    // path resolves and is embedded verbatim in the "program" field.
    let fixture = "tests/golden/analyze_sample.pxs";
    let (stdout, ok) = pxc(&["analyze", fixture, "--json"]);
    assert!(ok, "pxc analyze failed:\n{stdout}");
    let golden = include_str!("golden/analyze_sample.json");
    assert_eq!(
        stdout, golden,
        "pxc analyze --json drifted from the golden file; if the change is \
         intentional, regenerate tests/golden/analyze_sample.json"
    );
    // The fixture must exercise every diagnostic surface the golden pins.
    for needle in [
        "\"feasible\":[false,true]",
        "dead-check",
        "const-addr-out-of-bounds",
        "unreachable-code",
    ] {
        assert!(golden.contains(needle), "golden lost coverage of {needle}");
    }
}

#[test]
fn analyze_json_is_byte_identical_across_invocations() {
    for workload in ["bc", "schedule", "print_tokens"] {
        let (first, ok1) = pxc(&["analyze", workload, "--json"]);
        let (second, ok2) = pxc(&["analyze", workload, "--json"]);
        assert!(ok1 && ok2, "pxc analyze {workload} failed");
        assert!(!first.is_empty(), "{workload}: empty analysis");
        assert_eq!(
            first, second,
            "{workload}: analyze --json must be deterministic across runs"
        );
    }
}
