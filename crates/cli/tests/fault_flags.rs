//! End-to-end tests of `pxc`'s fault-injection and validation flags,
//! driving the real binary (no network, no external crates).

use std::process::Command;

fn pxc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pxc"))
        .args(args)
        .output()
        .expect("pxc runs")
}

fn stderr_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_fault_mix_is_a_usage_error_with_the_offending_spec() {
    let out = pxc(&["run", "nowhere.pxs", "--fault-mix", "gremlins"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = stderr_of(&out);
    assert!(
        err.contains("--fault-mix") && err.contains("gremlins"),
        "stderr names the flag and the bad value: {err}"
    );
}

#[test]
fn bad_seed_is_a_usage_error_naming_the_flag() {
    let out = pxc(&["run", "nowhere.pxs", "--seed", "tuesday"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(
        err.contains("--seed") && err.contains("tuesday"),
        "stderr names the flag and the bad value: {err}"
    );
}

#[test]
fn zero_fault_rate_is_rejected() {
    let out = pxc(&["run", "nowhere.pxs", "--fault-rate", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--fault-rate"));
}

#[test]
fn injected_run_still_exits_cleanly() {
    // A program with an NT-heavy branch: injection lands in the NT-path,
    // the committed run is unaffected, and pxc reports the fault count.
    let src = r"
        .code
        main:
            li r1, 1
            li r4, 30
        loop:
            bne r1, zero, ok
            addi r8, r8, 1
        ok:
            subi r4, r4, 1
            bgt r4, zero, loop
            li r2, 0
            exit
    ";
    let dir = std::env::temp_dir().join("pxc-fault-flags-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("nt.pxs");
    std::fs::write(&path, src).unwrap();

    let out = pxc(&[
        "run",
        path.to_str().unwrap(),
        "--fault-seed",
        "7",
        "--fault-mix",
        "crash=2,bitflip",
        "--fault-rate",
        "2",
        "--threshold",
        "1",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "faulted NT-paths must not affect the committed exit\nstdout: {stdout}\nstderr: {}",
        stderr_of(&out)
    );
    assert!(
        stdout.contains("injected into NT-paths"),
        "fault summary line present: {stdout}"
    );
}
