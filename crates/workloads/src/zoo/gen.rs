//! Shape emitters — the program synthesizer proper.
//!
//! Each [`ZooShape`] has one emitter that renders a complete PXC program
//! from a [`ZooSpec`]. All four shapes share the evaluation's driver idiom
//! (an integer op stream decoded as `op = v % 16`, a flat `if (op == K)`
//! dispatch chain) because that is the structure PathExpander's NT-spawning
//! exploits: every rare opcode arm is a cold edge, and every injected bug
//! sits within `MaxNTPathLength` of one — or, for *deep* placements,
//! deliberately beyond it.
//!
//! Determinism contract: the emitted text is a pure function of the spec.
//! No clock, no global RNG — structural choices (which opcode hosts which
//! bug, helper constants) come from a `SplitMix64` seeded from the spec.

use px_detect::BugClass;
use px_util::{Rng, SplitMix64};

use super::{ZooShape, ZooSpec};

/// One injected bug, positionally resolved by its `/*ZBUG:id*/` marker.
pub(crate) struct ZooBug {
    /// Taxonomy class (decides the detecting tool).
    pub class: BugClass,
    /// Stable id within the program, e.g. `"bo-cold"`.
    pub id: String,
    /// Deep placement: a scan loop longer than the zoo's `MaxNTPathLength`
    /// precedes the bug, so NT-paths stop before reaching it.
    pub deep: bool,
}

/// Short tag a bug class uses in ids and markers.
fn short(class: BugClass) -> &'static str {
    match class {
        BugClass::BufferOverflow => "bo",
        BugClass::UncheckedIndex => "ui",
        BugClass::OffByOne => "obo",
        BugClass::LifetimeConfusion => "lc",
        BugClass::PanicSafety => "ps",
        BugClass::StateDesync => "sd",
    }
}

/// Emits the program for a spec. Returns the source text and the injected
/// bugs in opcode order.
pub(crate) fn emit(spec: &ZooSpec) -> (String, Vec<ZooBug>) {
    let shape_salt = match spec.shape {
        ZooShape::StateMachine => 0x5A53_4D31_u64,
        ZooShape::Parser => 0x5A50_5253,
        ZooShape::Interpreter => 0x5A49_4E54,
        ZooShape::Recursive => 0x5A52_4543,
    };
    let mut rng = SplitMix64::new(spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ shape_salt);

    // Assign each injected bug a rare opcode (6..16) by seeded shuffle, so
    // distinct seeds produce structurally distinct dispatch chains.
    let mut rare: Vec<u32> = (6..16).collect();
    for i in (1..rare.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        rare.swap(i, j);
    }
    let plan = spec.mix.classes();
    let bugs: Vec<(u32, ZooBug)> = plan
        .iter()
        .enumerate()
        .map(|(i, &(class, deep))| {
            let id = format!("{}-{}", short(class), if deep { "deep" } else { "cold" });
            (rare[i], ZooBug { class, id, deep })
        })
        .collect();

    let mut s = String::new();
    let p = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };

    p(&mut s, &format!("/* {spec} — generated zoo program */"));
    p(&mut s, "int ztick = 0;");
    p(&mut s, "int zsum = 0;");
    p(&mut s, "int zcheck = 0;");
    p(&mut s, "int zacc = 0;");

    // Support globals for the bug classes present in this program.
    let has = |class: BugClass| bugs.iter().any(|(_, b)| b.class == class);
    if has(BugClass::BufferOverflow) {
        p(&mut s, "int zb_data[12];");
        p(&mut s, "int zb_datapad[8];");
    }
    if has(BugClass::UncheckedIndex) {
        p(&mut s, "int zt_tbl[10];");
        p(&mut s, "int zt_tblpad[8];");
    }
    if has(BugClass::OffByOne) {
        p(&mut s, "int zb_buf[8];");
        p(&mut s, "int zb_bufpad[8];");
    }
    if has(BugClass::LifetimeConfusion) {
        p(&mut s, "int zslot_gen[4];");
        p(&mut s, "int zslot_live[4];");
    }
    if has(BugClass::PanicSafety) {
        p(&mut s, "int zops_started = 0;");
        p(&mut s, "int zops_done = 0;");
    }

    emit_shape_globals(&mut s, spec, &mut rng);

    if has(BugClass::LifetimeConfusion) {
        p(&mut s, "int zalloc() {");
        p(&mut s, "    int i;");
        p(&mut s, "    for (i = 0; i < 4; i = i + 1) {");
        p(
            &mut s,
            "        if (zslot_live[i] == 0) { zslot_live[i] = 1; return i; }",
        );
        p(&mut s, "    }");
        p(&mut s, "    return -1;");
        p(&mut s, "}");
        p(&mut s, "void zfree(int h) {");
        p(&mut s, "    zslot_live[h] = 0;");
        p(&mut s, "    zslot_gen[h] = zslot_gen[h] + 1;");
        p(&mut s, "}");
    }

    emit_shape_helpers(&mut s, spec);

    p(&mut s, "int main() {");
    p(&mut s, "    int v = readint();");
    p(&mut s, "    while (v >= 0) {");
    p(&mut s, "        int op = v % 16;");
    p(&mut s, "        int arg = v / 16;");
    p(&mut s, "        ztick = ztick + 1;");
    p(&mut s, "        zsum = zsum + 1;");
    p(
        &mut s,
        "        zcheck = (zcheck * 31 + v % 997 + op) % 1000003;",
    );
    emit_shape_handlers(&mut s, spec);
    for (op, bug) in &bugs {
        emit_bug_arm(&mut s, *op, bug);
    }
    p(&mut s, "        v = readint();");
    p(&mut s, "    }");
    p(&mut s, "    printint(zcheck);");
    p(&mut s, "    printint(ztick);");
    emit_shape_epilogue(&mut s, spec);
    p(&mut s, "    assert(zsum == ztick);");
    p(&mut s, "    return 0;");
    p(&mut s, "}");

    let ordered = bugs.into_iter().map(|(_, b)| b).collect();
    (s, ordered)
}

/// One rare-opcode arm hosting one bug. Cold placements put the buggy
/// statement first (well within `MaxNTPathLength` of the spawn edge); deep
/// placements prefix a 90-iteration scan loop that exhausts the NT budget
/// first.
fn emit_bug_arm(s: &mut String, op: u32, bug: &ZooBug) {
    let p = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    p(s, &format!("        if (op == {op}) {{"));
    if bug.deep {
        p(s, "            int zj;");
        p(
            s,
            "            for (zj = 0; zj < 90; zj = zj + 1) { zacc = (zacc + zj % 7) % 100000; }",
        );
    }
    let m = format!("/*ZBUG:{}*/", bug.id);
    match bug.class {
        BugClass::BufferOverflow => {
            p(s, &format!("            zb_data[14] = arg; {m}"));
        }
        BugClass::UncheckedIndex => {
            p(
                s,
                &format!("            zt_tbl[10 + arg % 4] = arg + 1; {m}"),
            );
        }
        BugClass::OffByOne => {
            p(s, "            int zi;");
            p(s, "            for (zi = 0; zi <= 8; zi = zi + 1) {");
            p(s, &format!("                zb_buf[zi] = zi + op; {m}"));
            p(s, "            }");
        }
        BugClass::LifetimeConfusion => {
            p(s, "            int zh = zalloc();");
            p(s, "            if (zh >= 0) {");
            p(s, "                int zg = zslot_gen[zh];");
            p(s, "                zfree(zh);");
            p(
                s,
                &format!("                assert(zslot_gen[zh] == zg); {m}"),
            );
            p(s, "            }");
        }
        BugClass::PanicSafety => {
            p(s, "            zops_started = zops_started + 1;");
            p(
                s,
                &format!("            assert(zops_started == zops_done); {m}"),
            );
            p(s, "            zops_done = zops_done + 1;");
        }
        BugClass::StateDesync => {
            p(s, "            zsum = zsum + 1;");
            p(s, &format!("            assert(zsum == ztick); {m}"));
            p(s, "            zsum = zsum - 1;");
        }
    }
    p(s, "        }");
}

/// Number of states a state machine of this size has.
fn nstates(spec: &ZooSpec) -> u32 {
    3 + spec.size
}

fn emit_shape_globals(s: &mut String, spec: &ZooSpec, rng: &mut SplitMix64) {
    let p = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    match spec.shape {
        ZooShape::StateMachine => {
            p(s, "int zstate = 0;");
            p(s, "int zvisits[8];");
            p(s, "int ztrans = 0;");
            p(s, "int zresets = 0;");
            let watermark = 40 + (rng.next_u64() % 20) as u32;
            p(s, &format!("int zwatermark = {watermark};"));
        }
        ZooShape::Parser => {
            p(s, "int zdepth = 0;");
            p(s, "int znum = 0;");
            p(s, "int zstack[16];");
            p(s, "int zouts = 0;");
            p(s, "int zerrs = 0;");
        }
        ZooShape::Interpreter => {
            p(s, "int zreg[8];");
            p(s, "int zexec = 0;");
            p(s, "int zhalts = 0;");
        }
        ZooShape::Recursive => {
            p(s, "int zkey[32];");
            p(s, "int zleft[32];");
            p(s, "int zright[32];");
            p(s, "int znodes = 0;");
            p(s, "int zroot = -1;");
            p(s, "int zhits = 0;");
        }
    }
}

fn emit_shape_helpers(s: &mut String, spec: &ZooSpec) {
    let p = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    match spec.shape {
        ZooShape::StateMachine => {
            let ns = nstates(spec);
            p(s, "int zadvance(int st, int d) {");
            p(s, "    int n = st + d;");
            p(s, &format!("    while (n >= {ns}) {{ n = n - {ns}; }}"));
            p(s, "    return n;");
            p(s, "}");
        }
        ZooShape::Parser | ZooShape::Interpreter => {}
        ZooShape::Recursive => {
            p(s, "int zinsert(int at, int k) {");
            p(s, "    if (at == -1) {");
            p(s, "        if (znodes < 32) {");
            p(s, "            zkey[znodes] = k;");
            p(s, "            zleft[znodes] = -1;");
            p(s, "            zright[znodes] = -1;");
            p(s, "            znodes = znodes + 1;");
            p(s, "            return znodes - 1;");
            p(s, "        }");
            p(s, "        return -1;");
            p(s, "    }");
            p(
                s,
                "    if (k < zkey[at]) { zleft[at] = zinsert(zleft[at], k); }",
            );
            p(
                s,
                "    else { if (k > zkey[at]) { zright[at] = zinsert(zright[at], k); } }",
            );
            p(s, "    return at;");
            p(s, "}");
            p(s, "int zfind(int at, int k) {");
            p(s, "    if (at == -1) { return 0; }");
            p(s, "    if (zkey[at] == k) { return 1; }");
            p(s, "    if (k < zkey[at]) { return zfind(zleft[at], k); }");
            p(s, "    return zfind(zright[at], k);");
            p(s, "}");
            p(s, "int zsumtree(int at) {");
            p(s, "    if (at == -1) { return 0; }");
            p(
                s,
                "    return zkey[at] + zsumtree(zleft[at]) + zsumtree(zright[at]);",
            );
            p(s, "}");
        }
    }
}

fn emit_shape_handlers(s: &mut String, spec: &ZooSpec) {
    let p = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    match spec.shape {
        ZooShape::StateMachine => {
            let ns = nstates(spec);
            p(s, "        if (op == 0) {");
            p(s, "            zstate = zadvance(zstate, 1);");
            p(s, "            zvisits[zstate] = zvisits[zstate] + 1;");
            p(s, "            ztrans = ztrans + 1;");
            p(s, "        }");
            p(s, "        if (op == 1) {");
            p(
                s,
                &format!("            zstate = zadvance(zstate, arg % {ns});"),
            );
            p(s, "            zvisits[zstate] = zvisits[zstate] + 1;");
            p(s, "            ztrans = ztrans + 1;");
            p(s, "        }");
            p(s, "        if (op == 2) {");
            p(
                s,
                &format!(
                    "            if (zstate == {}) {{ zstate = 0; zresets = zresets + 1; }}",
                    ns - 1
                ),
            );
            p(s, "        }");
            p(s, "        if (op == 3) {");
            p(s, "            putchar('a' + zstate);");
            p(s, "        }");
            if spec.size >= 2 {
                p(s, "        if (op == 4) {");
                p(
                    s,
                    &format!("            zacc = (zacc + zvisits[arg % {ns}]) % 100000;"),
                );
                p(s, "        }");
            }
            if spec.size >= 3 {
                p(s, "        if (op == 5) {");
                p(
                    s,
                    "            if (zvisits[0] > zwatermark) { zacc = zacc % 9973; }",
                );
                p(s, "        }");
            }
        }
        ZooShape::Parser => {
            p(s, "        if (op == 0) {");
            p(s, "            znum = (znum * 10 + arg % 10) % 100000;");
            p(s, "        }");
            p(s, "        if (op == 1) {");
            p(s, "            if (zdepth < 16) {");
            p(s, "                zstack[zdepth] = znum;");
            p(s, "                zdepth = zdepth + 1;");
            p(s, "                znum = 0;");
            p(s, "            }");
            p(s, "        }");
            p(s, "        if (op == 2) {");
            p(s, "            if (zdepth > 0) {");
            p(s, "                zdepth = zdepth - 1;");
            p(
                s,
                "                znum = (znum + zstack[zdepth]) % 100000;",
            );
            p(s, "            }");
            p(s, "        }");
            p(s, "        if (op == 3) {");
            p(s, "            putchar('0' + znum % 10);");
            p(s, "            zouts = zouts + 1;");
            p(s, "        }");
            if spec.size >= 2 {
                p(s, "        if (op == 4) {");
                p(
                    s,
                    "            if (znum > 90000) { zerrs = zerrs + 1; znum = 0; }",
                );
                p(s, "        }");
            }
            if spec.size >= 3 {
                p(s, "        if (op == 5) {");
                p(s, "            assert(zdepth >= 0 && zdepth <= 16);");
                p(s, "        }");
            }
        }
        ZooShape::Interpreter => {
            p(s, "        if (op == 0) {");
            p(s, "            zreg[arg % 8] = (arg / 8) % 1000;");
            p(s, "            zexec = zexec + 1;");
            p(s, "        }");
            p(s, "        if (op == 1) {");
            p(
                s,
                "            zreg[arg % 8] = (zreg[arg % 8] + zreg[(arg / 8) % 8]) % 100000;",
            );
            p(s, "            zexec = zexec + 1;");
            p(s, "        }");
            p(s, "        if (op == 2) {");
            p(s, "            zacc = (zacc + zreg[arg % 8]) % 100000;");
            p(s, "            zexec = zexec + 1;");
            p(s, "        }");
            p(s, "        if (op == 3) {");
            p(s, "            printint(zacc % 100);");
            p(s, "        }");
            if spec.size >= 2 {
                p(s, "        if (op == 4) {");
                p(
                    s,
                    "            if (zacc > 50000) { zacc = zacc - 50000; zhalts = zhalts + 1; }",
                );
                p(s, "        }");
            }
            if spec.size >= 3 {
                p(s, "        if (op == 5) {");
                p(s, "            int zt = zreg[0];");
                p(s, "            zreg[0] = zreg[arg % 8];");
                p(s, "            zreg[arg % 8] = zt;");
                p(s, "        }");
            }
        }
        ZooShape::Recursive => {
            p(s, "        if (op == 0) {");
            p(s, "            zroot = zinsert(zroot, arg % 97);");
            p(s, "        }");
            p(s, "        if (op == 1) {");
            p(s, "            zhits = zhits + zfind(zroot, arg % 97);");
            p(s, "        }");
            p(s, "        if (op == 2) {");
            p(s, "            zacc = (zacc + zsumtree(zroot)) % 100000;");
            p(s, "        }");
            p(s, "        if (op == 3) {");
            p(s, "            putchar('a' + znodes % 26);");
            p(s, "        }");
            if spec.size >= 2 {
                p(s, "        if (op == 4) {");
                p(
                    s,
                    "            zhits = zhits + zfind(zroot, (arg + 13) % 97);",
                );
                p(s, "        }");
            }
            if spec.size >= 3 {
                p(s, "        if (op == 5) {");
                p(s, "            assert(znodes <= 32);");
                p(s, "        }");
            }
        }
    }
}

fn emit_shape_epilogue(s: &mut String, spec: &ZooSpec) {
    let p = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    match spec.shape {
        ZooShape::StateMachine => {
            p(s, "    printint(ztrans);");
            p(s, "    printint(zresets);");
            p(s, "    printint(zstate);");
        }
        ZooShape::Parser => {
            p(s, "    printint(znum);");
            p(s, "    printint(zdepth);");
            p(s, "    printint(zouts);");
        }
        ZooShape::Interpreter => {
            p(s, "    printint(zacc);");
            p(s, "    printint(zexec);");
            p(s, "    printint(zhalts);");
        }
        ZooShape::Recursive => {
            p(s, "    printint(znodes);");
            p(s, "    printint(zhits);");
            p(s, "    printint(zacc);");
        }
    }
}
