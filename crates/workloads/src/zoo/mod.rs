//! # The workload zoo — a seeded, deterministic program synthesizer
//!
//! The paper evaluates PathExpander on seven buggy applications. That is
//! enough to reproduce Table 4, but far too few programs to characterise
//! *when* NT-path exploration helps. The zoo scales the benchmark suite two
//! orders of magnitude: a [`ZooSpec`] names a generated program — a shape
//! family, a structure seed, a size tier and a bug mix — and [`generate`]
//! renders it into an ordinary [`Workload`], so every engine, detection
//! tool, fault hook and `pxc analyze` pass works on zoo programs unchanged.
//!
//! ## Shapes
//!
//! Four program families, chosen to span the structural space of the
//! paper's Table 3 programs (§6.1):
//!
//! * `state-machine` — a transition ring with per-state visit counters.
//! * `parser` — a token-stream validator with a value stack and depth
//!   tracking (error paths, the Siemens texture).
//! * `interpreter` — a register VM dispatch loop (the bc texture).
//! * `recursive` — an array-encoded binary search tree with recursive
//!   insert/find/sum (deep call paths, the go texture).
//!
//! ## Bug taxonomy
//!
//! Each generated bug is an instance of a [`px_detect::BugClass`] — the
//! paper's memory-bug kinds extended with Rudra-style classes
//! (panic-safety, unchecked-index, lifetime-confusion analogues). Bugs live
//! in rare-opcode arms the general input never takes, so the baseline
//! misses all of them; *cold* placements sit within `MaxNTPathLength` of
//! the spawn edge (`expected_detected`), *deep* placements hide behind a
//! scan loop that exhausts the NT budget first (guaranteed escapes,
//! §7.1(4)).
//!
//! ## Determinism
//!
//! `spec → source text` is a pure function; the general input stream is a
//! pure function of `(spec, run seed)`. Two invocations anywhere produce
//! byte-identical programs and inputs — the property suite pins this.

mod gen;

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

/// `MaxNTPathLength` for zoo programs: long enough to reach every cold
/// bug from its spawn edge, short enough that the deep placements' 90-
/// iteration scan loops exhaust it (the guaranteed-escape construction).
pub const MAX_NT_PATH_LEN: u32 = 250;

/// Default size tier (omitted from canonical spec strings).
pub const DEFAULT_SIZE: u32 = 2;

/// A generated program family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooShape {
    /// Transition ring with visit counters.
    StateMachine,
    /// Token-stream validator with a value stack.
    Parser,
    /// Register-VM dispatch loop.
    Interpreter,
    /// Array-encoded BST with recursive traversals.
    Recursive,
}

impl ZooShape {
    /// Every shape, in canonical order.
    pub const ALL: [ZooShape; 4] = [
        ZooShape::StateMachine,
        ZooShape::Parser,
        ZooShape::Interpreter,
        ZooShape::Recursive,
    ];

    /// Canonical name as spelled in spec strings.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ZooShape::StateMachine => "state-machine",
            ZooShape::Parser => "parser",
            ZooShape::Interpreter => "interpreter",
            ZooShape::Recursive => "recursive",
        }
    }

    /// Parses a canonical shape name.
    #[must_use]
    pub fn parse(name: &str) -> Option<ZooShape> {
        ZooShape::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Which bugs a generated program carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugMix {
    /// All six classes cold, plus two deep (guaranteed-escape) placements.
    Full,
    /// All six classes, cold placements only.
    Cold,
    /// Three classes (buffer-overflow, off-by-one, state-desync), cold.
    Lean,
    /// No injected bugs.
    None,
}

impl BugMix {
    /// Every mix, in canonical order.
    pub const ALL: [BugMix; 4] = [BugMix::Full, BugMix::Cold, BugMix::Lean, BugMix::None];

    /// Canonical name as spelled in spec strings.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BugMix::Full => "full",
            BugMix::Cold => "cold",
            BugMix::Lean => "lean",
            BugMix::None => "none",
        }
    }

    /// Parses a canonical mix name.
    #[must_use]
    pub fn parse(name: &str) -> Option<BugMix> {
        BugMix::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The `(class, deep)` plan this mix injects, in id order.
    #[must_use]
    pub fn classes(self) -> Vec<(px_detect::BugClass, bool)> {
        use px_detect::BugClass as C;
        match self {
            BugMix::Full => vec![
                (C::BufferOverflow, false),
                (C::UncheckedIndex, false),
                (C::OffByOne, false),
                (C::LifetimeConfusion, false),
                (C::PanicSafety, false),
                (C::StateDesync, false),
                (C::BufferOverflow, true),
                (C::StateDesync, true),
            ],
            BugMix::Cold => vec![
                (C::BufferOverflow, false),
                (C::UncheckedIndex, false),
                (C::OffByOne, false),
                (C::LifetimeConfusion, false),
                (C::PanicSafety, false),
                (C::StateDesync, false),
            ],
            BugMix::Lean => vec![
                (C::BufferOverflow, false),
                (C::OffByOne, false),
                (C::StateDesync, false),
            ],
            BugMix::None => vec![],
        }
    }
}

/// Full name of one generated program.
///
/// Canonical string form: `zoo:<shape>:<seed>[:n<size>][:<mix>]`, where the
/// size part is omitted at [`DEFAULT_SIZE`] and the mix part at
/// [`BugMix::Full`] — so `zoo:parser:3` ≡ `zoo:parser:3:n2:full`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ZooSpec {
    /// Program family.
    pub shape: ZooShape,
    /// Structure seed: decides opcode assignment and helper constants.
    pub seed: u64,
    /// Size tier 1..=4: scales the common-handler count and input length.
    pub size: u32,
    /// Injected bug plan.
    pub mix: BugMix,
}

impl ZooSpec {
    /// A spec with default size and mix.
    #[must_use]
    pub fn new(shape: ZooShape, seed: u64) -> ZooSpec {
        ZooSpec {
            shape,
            seed,
            size: DEFAULT_SIZE,
            mix: BugMix::Full,
        }
    }

    /// Parses a spec string (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(s: &str) -> Result<ZooSpec, String> {
        let rest = s
            .strip_prefix("zoo:")
            .ok_or_else(|| format!("`{s}`: zoo specs start with `zoo:`"))?;
        let mut parts = rest.split(':');
        let shape_name = parts.next().unwrap_or("");
        let shape = ZooShape::parse(shape_name).ok_or_else(|| {
            format!(
                "`{shape_name}`: unknown shape (expected one of {})",
                ZooShape::ALL.map(ZooShape::name).join(", ")
            )
        })?;
        let seed_part = parts
            .next()
            .ok_or_else(|| format!("`{s}`: missing seed (zoo:<shape>:<seed>)"))?;
        let seed: u64 = seed_part
            .parse()
            .map_err(|_| format!("`{seed_part}`: seed must be a non-negative integer"))?;
        let mut spec = ZooSpec::new(shape, seed);
        for part in parts {
            // Mix names are checked first: `none` also starts with `n`.
            if let Some(mix) = BugMix::parse(part) {
                spec.mix = mix;
            } else if let Some(n) = part.strip_prefix('n') {
                let size: u32 = n
                    .parse()
                    .map_err(|_| format!("`{part}`: size must be n1..n4"))?;
                if !(1..=4).contains(&size) {
                    return Err(format!("`{part}`: size must be n1..n4"));
                }
                spec.size = size;
            } else {
                return Err(format!(
                    "`{part}`: expected a size (n1..n4) or a bug mix ({})",
                    BugMix::ALL.map(BugMix::name).join(", ")
                ));
            }
        }
        Ok(spec)
    }
}

impl std::fmt::Display for ZooSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zoo:{}:{}", self.shape.name(), self.seed)?;
        if self.size != DEFAULT_SIZE {
            write!(f, ":n{}", self.size)?;
        }
        if self.mix != BugMix::Full {
            write!(f, ":{}", self.mix.name())?;
        }
        Ok(())
    }
}

/// Renders a spec into an ordinary [`Workload`].
#[must_use]
pub fn generate(spec: &ZooSpec) -> Workload {
    let (source, zbugs) = gen::emit(spec);
    let bugs = zbugs
        .iter()
        .map(|zb| BugSpec {
            id: zb.id.clone(),
            tool: zb.class.tool(),
            marker: format!("/*ZBUG:{}*/", zb.id),
            escape: if zb.deep {
                EscapeClass::NeedsSpecialInput
            } else {
                EscapeClass::Helped
            },
            description: if zb.deep {
                format!(
                    "{} behind a scan loop that exhausts MaxNTPathLength — \
                     guaranteed escape",
                    zb.class.name()
                )
            } else {
                format!("{} in a cold rare-opcode arm", zb.class.name())
            },
        })
        .collect();
    Workload {
        name: spec.to_string(),
        source,
        family: Family::Zoo,
        tools: Tool::ALL.to_vec(),
        bugs,
        max_nt_path_len: MAX_NT_PATH_LEN,
        input: InputSource::Zoo(spec.clone()),
    }
}

/// The taxonomy class a zoo bug id encodes (`"bo-cold"` → buffer overflow).
#[must_use]
pub fn bug_class_of(id: &str) -> Option<px_detect::BugClass> {
    use px_detect::BugClass as C;
    Some(match id.split('-').next().unwrap_or("") {
        "bo" => C::BufferOverflow,
        "ui" => C::UncheckedIndex,
        "obo" => C::OffByOne,
        "lc" => C::LifetimeConfusion,
        "ps" => C::PanicSafety,
        "sd" => C::StateDesync,
        _ => return None,
    })
}

/// The general input stream for a spec: common opcodes only (the rare,
/// bug-hosting opcodes never occur), so every injected bug is baseline-
/// invisible. A pure function of `(spec, seed)`.
#[must_use]
pub fn input_bytes(spec: &ZooSpec, seed: u64) -> Vec<u8> {
    let salt = px_util::fnv1a64(0, spec.to_string().as_bytes());
    let mut g = InputGen::new(seed ^ salt);
    let n_ops = g.range(40 + 20 * spec.size, 70 + 20 * spec.size);
    emit_ops(&mut g, n_ops)
}

/// Like [`input_bytes`] but with an explicit op count instead of the
/// size-derived range — the throughput benchmark uses this to build op
/// streams long enough to saturate a fixed instruction budget while keeping
/// the same opcode distribution (common ops only).
#[must_use]
pub fn input_bytes_n(spec: &ZooSpec, seed: u64, n_ops: u32) -> Vec<u8> {
    let salt = px_util::fnv1a64(0, spec.to_string().as_bytes());
    let mut g = InputGen::new(seed ^ salt);
    emit_ops(&mut g, n_ops)
}

fn emit_ops(g: &mut InputGen, n_ops: u32) -> Vec<u8> {
    let mut out = Vec::new();
    for _ in 0..n_ops {
        let op = g.below(6);
        let arg = g.below(800);
        let v = op + 16 * arg;
        out.extend_from_slice(v.to_string().as_bytes());
        out.push(b' ');
    }
    out.extend_from_slice(b"-1\n");
    out
}

/// The E15 roster: every shape × structure seeds 1..=7, sizes cycling
/// through the tiers, mostly full bug mixes with one lean and one cold
/// spec per shape — 28 generated families covering all four shapes and
/// all six bug classes.
#[must_use]
pub fn roster() -> Vec<ZooSpec> {
    let mut specs = Vec::new();
    for shape in ZooShape::ALL {
        for seed in 1..=7u64 {
            let mut spec = ZooSpec::new(shape, seed);
            spec.size = 1 + (seed % 3) as u32;
            spec.mix = match seed {
                6 => BugMix::Lean,
                7 => BugMix::Cold,
                _ => BugMix::Full,
            };
            specs.push(spec);
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_string_round_trips() {
        for s in [
            "zoo:parser:3",
            "zoo:state-machine:12:n3",
            "zoo:interpreter:5:lean",
            "zoo:recursive:9:n1:none",
        ] {
            let spec = ZooSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s, "canonical form round-trips");
        }
        // Non-canonical spellings normalise.
        let spec = ZooSpec::parse("zoo:parser:3:n2:full").unwrap();
        assert_eq!(spec.to_string(), "zoo:parser:3");
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in [
            "zoo:",
            "zoo:parser",
            "zoo:parser:x",
            "zoo:quux:1",
            "zoo:parser:1:n9",
            "zoo:parser:1:bogus",
            "parser:1",
        ] {
            assert!(ZooSpec::parse(s).is_err(), "`{s}` should be rejected");
        }
    }

    #[test]
    fn roster_meets_the_e15_floor() {
        let specs = roster();
        assert!(specs.len() >= 25, "E15 needs at least 25 families");
        let shapes: std::collections::HashSet<&str> =
            specs.iter().map(|s| s.shape.name()).collect();
        assert_eq!(shapes.len(), 4, "all four shapes present");
        let classes: std::collections::HashSet<&str> = specs
            .iter()
            .flat_map(|s| s.mix.classes())
            .map(|(c, _)| c.name())
            .collect();
        assert_eq!(classes.len(), 6, "all six bug classes present");
    }

    #[test]
    fn generated_workloads_compile_for_every_tool() {
        for spec in [
            ZooSpec::parse("zoo:state-machine:1").unwrap(),
            ZooSpec::parse("zoo:parser:2:n3").unwrap(),
            ZooSpec::parse("zoo:interpreter:3:lean").unwrap(),
            ZooSpec::parse("zoo:recursive:4:n1:cold").unwrap(),
            ZooSpec::parse("zoo:recursive:5:none").unwrap(),
        ] {
            let w = generate(&spec);
            assert_eq!(w.name, spec.to_string());
            for &tool in &w.tools {
                w.compile_for(tool)
                    .unwrap_or_else(|e| panic!("{} ({}): {e}", w.name, tool.name()));
            }
            for b in &w.bugs {
                assert!(w.marker_line(&b.marker) > 0);
            }
        }
    }

    #[test]
    fn inputs_avoid_rare_opcodes() {
        let spec = ZooSpec::new(ZooShape::Parser, 1);
        let bytes = input_bytes(&spec, 7);
        let text = String::from_utf8(bytes).unwrap();
        for tok in text.split_whitespace() {
            let v: i64 = tok.parse().unwrap();
            if v >= 0 {
                assert!(v % 16 < 6, "general input uses common opcodes only");
            }
        }
    }
}
