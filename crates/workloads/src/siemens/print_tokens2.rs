//! `print_tokens2` — the second Siemens tokenizer, carrying the paper's
//! Figure 1 bug: a string-constant check that scans the token buffer for a
//! closing quote **without a terminator check**, overrunning the buffer
//! whenever the token lacks a second quote. The buggy path is entered only
//! when a token starts with `"` — which general inputs never produce — so
//! only PathExpander exposes it (version v10, detected by CCured and
//! iWatcher). Nine further semantic versions are checked by assertions
//! (5 detected, per Table 4).

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
char inbuf[600];
int inlen = 0;
char tok[6];
int tok_len = 0;
char outbuf[900];
int obi = 0;

int token_count = 0;
int ident_count = 0;
int num_count = 0;
int op_count = 0;
int cmp_count = 0;
int kw_count = 0;
int str_count = 0;
int err_count = 0;
int paren_depth = 0;
int stmt_len = 0;
int neg_count = 0;
int chk = 0;
int mode = 0;

int trace_mode = 0;

void audit(int v) {
    if (v > 901) {
        if (v > 1802) { trace_mode = 2; }
        if (v > 2703) { trace_mode = 3; }
    }
    if (v > 908) {
        if (v > 1816) { trace_mode = 2; }
        if (v > 2724) { trace_mode = 3; }
    }
    if (v > 915) {
        if (v > 1830) { trace_mode = 2; }
        if (v > 2745) { trace_mode = 3; }
    }
    if (v > 922) {
        if (v > 1844) { trace_mode = 2; }
        if (v > 2766) { trace_mode = 3; }
    }
    if (v > 929) {
        if (v > 1858) { trace_mode = 2; }
        if (v > 2787) { trace_mode = 3; }
    }
    if (v > 936) {
        if (v > 1872) { trace_mode = 2; }
        if (v > 2808) { trace_mode = 3; }
    }
    if (v > 943) {
        if (v > 1886) { trace_mode = 2; }
        if (v > 2829) { trace_mode = 3; }
    }
    if (v > 950) {
        if (v > 1900) { trace_mode = 2; }
        if (v > 2850) { trace_mode = 3; }
    }
    if (v > 957) {
        if (v > 1914) { trace_mode = 2; }
        if (v > 2871) { trace_mode = 3; }
    }
    if (v > 964) {
        if (v > 1928) { trace_mode = 2; }
        if (v > 2892) { trace_mode = 3; }
    }
    if (v > 971) {
        if (v > 1942) { trace_mode = 2; }
        if (v > 2913) { trace_mode = 3; }
    }
    if (v > 978) {
        if (v > 1956) { trace_mode = 2; }
        if (v > 2934) { trace_mode = 3; }
    }
    if (v > 985) {
        if (v > 1970) { trace_mode = 2; }
        if (v > 2955) { trace_mode = 3; }
    }
    if (v > 992) {
        if (v > 1984) { trace_mode = 2; }
        if (v > 2976) { trace_mode = 3; }
    }
}

int is_alpha(int c) {
    if (c >= 'a' && c <= 'z') { return 1; }
    if (c >= 'A' && c <= 'Z') { return 1; }
    return 0;
}

int is_digit(int c) {
    if (c >= '0' && c <= '9') { return 1; }
    return 0;
}

int is_space(int c) {
    if (c == ' ' || c == 9 || c == 10) { return 1; }
    return 0;
}

int class_sum() {
    int s = ident_count + num_count + op_count;
    s = s + cmp_count + kw_count + str_count + err_count;
    return s;
}

void emit(int code) {
    if (obi < 900) {
        outbuf[obi] = code;
        obi = obi + 1;
    }
}

int keyword_id() {
    if (tok_len == 2) {
        if (tok[0] == 'i' && tok[1] == 'f') { return 1; }
        if (tok[0] == 'd' && tok[1] == 'o') { return 2; }
    }
    if (tok_len == 3) {
        if (tok[0] == 'f' && tok[1] == 'o' && tok[2] == 'r') { return 3; }
        if (tok[0] == 'r' && tok[1] == 'e' && tok[2] == 't') { return 4; }
    }
    return 0;
}

void read_input() {
    int c = getchar();
    while (c != -1 && inlen < 600) {
        inbuf[inlen] = c;
        inlen = inlen + 1;
        c = getchar();
    }
    if (c != -1) { mode = 1; }
}

int errbuf[8];

void diagnostics(int x) {
    int e0 = 8 + x % 4;
    if (e0 < 8) { errbuf[e0] = 1; } /*FPSITE*/
    int e1 = 8 + (x / 3) % 4;
    if (e1 < 8) { errbuf[e1] = 2; } /*FPSITE*/
    int e2 = 9 + x % 3;
    if (e2 < 8) { errbuf[e2] = 3; } /*FPSITE*/
    int e3 = 8 + (x / 5) % 4;
    if (e3 < 8) { errbuf[e3] = 4; } /*FPSITE*/
    int e4 = 10 + x % 2;
    if (e4 < 8) { errbuf[e4] = 5; } /*FPSITE*/
    int e5 = 8 + (x / 7) % 4;
    if (e5 < 8) { errbuf[e5] = 6; } /*FPSITE*/
    int e6 = 9 + (x / 2) % 3;
    if (e6 < 8) { errbuf[e6] = 7; } /*FPSITE*/
    int r0 = 8 + x % 4;
    if (r0 < 8) { errbuf[r0 + 2] = 8; } /*FPRES*/
    int r1 = 9 + x % 3;
    if (r1 < 8) { errbuf[r1 + 3] = 9; } /*FPRES*/
}

int main() {
    read_input();
    int pos = 0;
    while (pos < inlen) {
        int c = inbuf[pos];
        diagnostics(c + token_count);
        if (trace_mode > 0) { audit(c + token_count); }
        if (is_space(c)) {
            pos = pos + 1;
            if (stmt_len > 12) {
                token_count = token_count + 1;
                assert(token_count == class_sum()); /*BUG:pt2-v4*/
            }
            continue;
        }
        if (c == '"') {
            int j = 0;
            while (tok[j] != '"') { j = j + 1; } /*BUG:pt2-v10*/
            str_count = str_count + 1;
            token_count = token_count + 1;
            emit('S');
            emit(j);
            pos = pos + 1;
            continue;
        }
        if (c == '@') {
            kw_count = kw_count + 2;
            token_count = token_count + 1;
            assert(token_count == class_sum()); /*BUG:pt2-v1*/
            emit('D');
            pos = pos + 1;
            continue;
        }
        if (c == '&') {
            cmp_count = cmp_count + 2;
            token_count = token_count + 1;
            assert(token_count == class_sum()); /*BUG:pt2-v2*/
            emit('A');
            pos = pos + 1;
            continue;
        }
        if (c == '~') {
            err_count = err_count + 1;
            token_count = token_count + 2;
            assert(token_count == class_sum()); /*BUG:pt2-v5*/
            emit('T');
            pos = pos + 1;
            continue;
        }
        if (c == '$') {
            int warm = 0;
            int w;
            for (w = 0; w < 40; w = w + 1) {
                warm = warm + inbuf[w % inlen];
            }
            if (warm < 0) {
                token_count = token_count + 2;
                err_count = err_count + 1;
                assert(token_count == class_sum()); /*BUG:pt2-v8*/
            }
            op_count = op_count + 1;
            token_count = token_count + 1;
            emit('$');
            pos = pos + 1;
            continue;
        }
        if (c == '(') {
            paren_depth = paren_depth + 1;
            op_count = op_count + 1;
            token_count = token_count + 1;
            if (paren_depth > 3) {
                assert(paren_depth <= 4); /*BUG:pt2-v3*/
            }
            emit('(');
            pos = pos + 1;
            continue;
        }
        if (c == ')') {
            if (paren_depth > 0) { paren_depth = paren_depth - 1; }
            op_count = op_count + 1;
            token_count = token_count + 1;
            emit(')');
            pos = pos + 1;
            continue;
        }
        if (c == '<' || c == '>' || c == '=') {
            cmp_count = cmp_count + 1;
            token_count = token_count + 1;
            stmt_len = stmt_len + 1;
            emit('C');
            pos = pos + 1;
            continue;
        }
        if (c == ';') {
            stmt_len = 0;
            op_count = op_count + 1;
            token_count = token_count + 1;
            emit(';');
            pos = pos + 1;
            continue;
        }
        if (is_alpha(c)) {
            tok_len = 0;
            while (pos < inlen && is_alpha(inbuf[pos])) {
                if (tok_len < 5) {
                    tok[tok_len] = inbuf[pos];
                    tok_len = tok_len + 1;
                }
                pos = pos + 1;
            }
            tok[tok_len] = 0;
            int kw = keyword_id();
            if (kw == 4) {
                kw_count = kw_count + 2;
                token_count = token_count + 1;
                assert(token_count == class_sum()); /*BUG:pt2-v7*/
                emit('R');
                continue;
            }
            if (kw != 0) {
                kw_count = kw_count + 1;
                token_count = token_count + 1;
                emit('K');
                continue;
            }
            ident_count = ident_count + 1;
            token_count = token_count + 1;
            stmt_len = stmt_len + 1;
            emit('I');
            continue;
        }
        if (is_digit(c) || c == '-') {
            int neg = 0;
            if (c == '-') { neg = 1; pos = pos + 1; }
            int value = 0;
            while (pos < inlen && is_digit(inbuf[pos])) {
                value = value * 10 + (inbuf[pos] - '0');
                pos = pos + 1;
            }
            if (neg == 1) { value = 0 - value; neg_count = neg_count + 1; }
            chk = chk * 31 + value;
            if (chk < 0) {
                chk = 0 - chk;
                assert(chk >= 0); /*BUG:pt2-v9*/
            }
            num_count = num_count + 1;
            token_count = token_count + 1;
            stmt_len = stmt_len + 1;
            emit('N');
            continue;
        }
        if (c == '+' || c == '*' || c == '/' || c == ',') {
            op_count = op_count + 1;
            token_count = token_count + 1;
            stmt_len = stmt_len + 1;
            emit('O');
            pos = pos + 1;
            continue;
        }
        err_count = err_count + 1;
        token_count = token_count + 1;
        emit('?');
        pos = pos + 1;
    }
    if (mode == 1) {
        int tail = 0;
        int j;
        for (j = 0; j < 60; j = j + 1) {
            if (inbuf[j] == ';') { tail = tail + 1; }
        }
        if (tail > 2) {
            token_count = token_count + 2;
            err_count = err_count + 1;
            assert(token_count == class_sum()); /*BUG:pt2-v6*/
        }
    }
    int k;
    for (k = 0; k < obi; k = k + 1) {
        putchar(outbuf[k]);
    }
    printint(token_count);
    return 0;
}
"#;

/// General input: identifiers (no `ret` keyword), short numbers, arithmetic
/// and comparison operators, shallow parens, semicolons every few tokens —
/// no quotes, directives (`@`), ampersands, tildes or dollars, and
/// statements shorter than 12 tokens.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x7072_3200);
    let mut out = Vec::new();
    let mut depth = 0u32;
    let mut stmt = 0u32;
    let words: &[&[u8]] = &[
        b"alpha", b"beta", b"cnt", b"fo", b"ifx", b"dox", b"val", b"tmp",
    ];
    let kws: &[&[u8]] = &[b"if", b"do", b"for"];
    let tokens = g.range(50, 80);
    for _ in 0..tokens {
        if stmt >= 9 {
            out.extend_from_slice(b"; ");
            stmt = 0;
            continue;
        }
        match g.below(12) {
            0..=3 => out.extend_from_slice(g.pick_bytes(words)),
            4 => out.extend_from_slice(g.pick_bytes(kws)),
            5..=7 => out.extend_from_slice(&g.number(4)),
            8 => out.push(*g.pick(b"+*/,")),
            9 => out.push(*g.pick(b"<>=")),
            10 => {
                if depth < 2 {
                    out.push(b'(');
                    depth += 1;
                } else {
                    out.extend_from_slice(g.pick_bytes(words));
                }
            }
            _ => {
                if depth > 0 {
                    out.push(b')');
                    depth -= 1;
                } else {
                    out.extend_from_slice(b"; ");
                    stmt = 0;
                    continue;
                }
            }
        }
        stmt += 1;
        out.push(if g.chance(1, 8) { b'\n' } else { b' ' });
    }
    while depth > 0 {
        out.push(b')');
        depth -= 1;
    }
    // Benign per-input diversity: unknown characters and negative numbers
    // exercise different (non-buggy) edges across the test suite.
    if g.chance(1, 3) {
        out.push(*g.pick(b"?._"));
        out.push(b' ');
    }
    if g.chance(1, 3) {
        out.push(b'-');
        out.extend_from_slice(&g.number(3));
        out.push(b' ');
    }
    out.push(b'\n');
    out
}

/// The `print_tokens2` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "print_tokens2".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::Siemens,
        tools: vec![Tool::Ccured, Tool::Iwatcher, Tool::Assertions],
        bugs: vec![
            BugSpec {
                id: "pt2-v10-ccured".to_owned(),
                tool: Tool::Ccured,
                marker: "/*BUG:pt2-v10*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "Figure 1: closing-quote scan without terminator check \
                              overruns the token buffer"
                    .to_owned(),
            },
            BugSpec {
                id: "pt2-v10-iwatcher".to_owned(),
                tool: Tool::Iwatcher,
                marker: "/*BUG:pt2-v10*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "Figure 1 overrun, caught by the red zone after tok[]".to_owned(),
            },
            BugSpec {
                id: "pt2-v1".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v1*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "directive token double-counts kw_count".to_owned(),
            },
            BugSpec {
                id: "pt2-v2".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v2*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "ampersand token double-counts cmp_count".to_owned(),
            },
            BugSpec {
                id: "pt2-v3".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v3*/".to_owned(),
                escape: EscapeClass::Inconsistency,
                description: "deep-paren bug fails only at depth >= 5; the boundary fix \
                              pins depth to 4"
                    .to_owned(),
            },
            BugSpec {
                id: "pt2-v4".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v4*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "long-statement path counts a phantom token".to_owned(),
            },
            BugSpec {
                id: "pt2-v5".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v5*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "tilde token double-counts token_count".to_owned(),
            },
            BugSpec {
                id: "pt2-v6".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v6*/".to_owned(),
                escape: EscapeClass::NeedsSpecialInput,
                description: "overflow-mode re-scan exceeds MaxNTPathLength before the \
                              buggy inner branch"
                    .to_owned(),
            },
            BugSpec {
                id: "pt2-v7".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v7*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "`ret` keyword double-counts kw_count".to_owned(),
            },
            BugSpec {
                id: "pt2-v8".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v8*/".to_owned(),
                escape: EscapeClass::NeedsSpecialInput,
                description: "dollar token: 40-iteration warm-up exceeds MaxNTPathLength \
                              before the buggy inner branch"
                    .to_owned(),
            },
            BugSpec {
                id: "pt2-v9".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt2-v9*/".to_owned(),
                escape: EscapeClass::ValueCoverage,
                description: "checksum negation is wrong only for INT_MIN — a value \
                              coverage problem, not a path coverage problem"
                    .to_owned(),
            },
        ],
        max_nt_path_len: 100,
        input: InputSource::Fn(general_input),
    }
}
