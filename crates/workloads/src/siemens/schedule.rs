//! `schedule` — a three-level priority scheduler in the style of the
//! Siemens benchmark. Operations arrive as an integer stream; the rare
//! operations (block, flush, rebalance) are the non-taken paths. Five
//! seeded assertion bugs, two detected (Table 4) — versions 1 and 3 are the
//! paper's value-coverage escapes (§7.1(1)).

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
int q0[20];
int q1[20];
int q2[20];
int blockedq[20];
int len0 = 0;
int len1 = 0;
int len2 = 0;
int blen = 0;

int added = 0;
int finished = 0;
int flushed = 0;
int promoted = 0;
int rejected = 0;
int tick = 0;
int total_wait = 0;
int quantum = 4;
int next_id = 1;

int trace_mode = 0;

void audit(int v) {
    if (v > 901) {
        if (v > 1802) { trace_mode = 2; }
        if (v > 2703) { trace_mode = 3; }
    }
    if (v > 908) {
        if (v > 1816) { trace_mode = 2; }
        if (v > 2724) { trace_mode = 3; }
    }
    if (v > 915) {
        if (v > 1830) { trace_mode = 2; }
        if (v > 2745) { trace_mode = 3; }
    }
    if (v > 922) {
        if (v > 1844) { trace_mode = 2; }
        if (v > 2766) { trace_mode = 3; }
    }
    if (v > 929) {
        if (v > 1858) { trace_mode = 2; }
        if (v > 2787) { trace_mode = 3; }
    }
}

int queued() {
    return len0 + len1 + len2;
}

int balanced() {
    int live = len0 + len1 + len2 + blen;
    if (added == finished + flushed + rejected + live) { return 1; }
    return 0;
}

void push(int prio, int id) {
    if (prio == 0) {
        if (len0 < 20) { q0[len0] = id; len0 = len0 + 1; }
        else { rejected = rejected + 1; added = added - 1; }
    } else {
        if (prio == 1) {
            if (len1 < 20) { q1[len1] = id; len1 = len1 + 1; }
            else { rejected = rejected + 1; added = added - 1; }
        } else {
            if (len2 < 20) { q2[len2] = id; len2 = len2 + 1; }
            else { rejected = rejected + 1; added = added - 1; }
        }
    }
}

int pop0() {
    int id = q0[0];
    int i;
    for (i = 1; i < len0; i = i + 1) { q0[i - 1] = q0[i]; }
    len0 = len0 - 1;
    return id;
}

int pop1() {
    int id = q1[0];
    int i;
    for (i = 1; i < len1; i = i + 1) { q1[i - 1] = q1[i]; }
    len1 = len1 - 1;
    return id;
}

int pop2() {
    int id = q2[0];
    int i;
    for (i = 1; i < len2; i = i + 1) { q2[i - 1] = q2[i]; }
    len2 = len2 - 1;
    return id;
}

int main() {
    int v = readint();
    while (v >= 0) {
        int op = v % 8;
        int arg = v / 8;
        tick = tick + 1;
        if (trace_mode > 0) { audit(tick + added); }
        if (op == 0 || op == 1) {
            int prio = arg % 3;
            added = added + 1;
            push(prio, next_id);
            next_id = next_id + 1;
            assert(balanced() == 1);
        }
        if (op == 2) {
            if (len0 > 0) {
                int id = pop0();
                finished = finished + 1;
                total_wait = total_wait + (tick - id % 16);
                putchar('0' + id % 10);
            } else { if (len1 > 0) {
                int id = pop1();
                finished = finished + 1;
                total_wait = total_wait + (tick - id % 16);
                putchar('0' + id % 10);
            } else { if (len2 > 0) {
                int id = pop2();
                finished = finished + 1;
                total_wait = total_wait + (tick - id % 16);
                putchar('0' + id % 10);
            } } }
            if (finished > 0) {
                int avg_wait = total_wait / finished;
                assert(avg_wait <= total_wait); /*BUG:sch-1*/
            }
        }
        if (op == 3) {
            if (len1 > 0) {
                int id = pop1();
                push(0, id);
                promoted = promoted + 1;
            }
            tick = tick + quantum;
            assert(tick > 0); /*BUG:sch-3*/
        }
        if (op == 4) {
            if (len0 > 0) {
                int id = q0[len0 - 1];
                len0 = len0 - 1;
                if (blen < 20) {
                    blockedq[blen] = id;
                }
                assert(balanced() == 1); /*BUG:sch-2*/
            }
        }
        if (op == 6) {
            flushed = flushed + len0 + len1 + len2 + 1;
            len0 = 0;
            len1 = 0;
            len2 = 0;
            assert(balanced() == 1); /*BUG:sch-4*/
        }
        if (op == 7) {
            int load = 0;
            int i;
            for (i = 0; i < 20; i = i + 1) {
                load = load + q0[i] + q1[i] + q2[i];
            }
            if (load < 0) {
                flushed = flushed + 2;
                assert(balanced() == 1); /*BUG:sch-5*/
            }
        }
        v = readint();
    }
    printint(finished);
    printint(queued());
    assert(balanced() == 1);
    return 0;
}
"#;

/// General input: add/run/promote operations only — block (4), flush (6)
/// and rebalance (7) never occur.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x5343_4845);
    let mut out = Vec::new();
    // Seed the queues: a few priority-0 adds first, so the early NT-paths
    // spawned from the rare-op branches see non-empty queues.
    for _ in 0..6 {
        let v = 8 * (3 * g.below(30)); // op 0, arg ≡ 0 (mod 3) → priority 0
        out.extend_from_slice(v.to_string().as_bytes());
        out.push(b' ');
    }
    let n_ops = g.range(40, 70);
    for _ in 0..n_ops {
        let op = match g.below(12) {
            0..=4 => u32::from(g.chance(1, 2)), // add (op 0 or 1)
            5..=8 => 2,                         // run
            9 | 10 => 3,                        // promote
            _ => 5,                             // unhandled no-op
        };
        let arg = g.below(100);
        let v = op + 8 * arg;
        out.extend_from_slice(v.to_string().as_bytes());
        out.push(b' ');
    }
    out.extend_from_slice(b"-1\n");
    out
}

/// The `schedule` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "schedule".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::Siemens,
        tools: vec![Tool::Assertions],
        bugs: vec![
            BugSpec {
                id: "sch-1".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch-1*/".to_owned(),
                escape: EscapeClass::ValueCoverage,
                description: "average-wait bug manifests only when total_wait overflows \
                              negative — value coverage, the paper's schedule v1"
                    .to_owned(),
            },
            BugSpec {
                id: "sch-2".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch-2*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "block path drops the process: blen never incremented".to_owned(),
            },
            BugSpec {
                id: "sch-3".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch-3*/".to_owned(),
                escape: EscapeClass::ValueCoverage,
                description: "tick accounting wrong only at integer overflow — value \
                              coverage, the paper's schedule v3"
                    .to_owned(),
            },
            BugSpec {
                id: "sch-4".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch-4*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "flush path counts one phantom process".to_owned(),
            },
            BugSpec {
                id: "sch-5".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch-5*/".to_owned(),
                escape: EscapeClass::NeedsSpecialInput,
                description: "rebalance: the 20-iteration load scan exceeds \
                              MaxNTPathLength before the buggy inner branch"
                    .to_owned(),
            },
        ],
        max_nt_path_len: 100,
        input: InputSource::Fn(general_input),
    }
}
