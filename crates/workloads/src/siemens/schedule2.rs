//! `schedule2` — the second Siemens scheduler: four queues with aging and
//! batch operations. Five seeded assertion bugs, one detected (Table 4);
//! the escapes cover value coverage (×2), fixed-state inconsistency and a
//! budget-shielded special-input bug.

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
int queues[80];
int qlen[4];
int age[80];

int added = 0;
int finished = 0;
int cancelled = 0;
int rejected = 0;
int burst = 0;
int maxburst = 0;
int tick = 0;
int credit = 0;
int next_id = 1;

int trace_mode = 0;

void audit(int v) {
    if (v > 901) {
        if (v > 1802) { trace_mode = 2; }
        if (v > 2703) { trace_mode = 3; }
    }
    if (v > 908) {
        if (v > 1816) { trace_mode = 2; }
        if (v > 2724) { trace_mode = 3; }
    }
    if (v > 915) {
        if (v > 1830) { trace_mode = 2; }
        if (v > 2745) { trace_mode = 3; }
    }
    if (v > 922) {
        if (v > 1844) { trace_mode = 2; }
        if (v > 2766) { trace_mode = 3; }
    }
}

int queued() {
    return qlen[0] + qlen[1] + qlen[2] + qlen[3];
}

int balanced() {
    int live = qlen[0] + qlen[1] + qlen[2] + qlen[3];
    if (added == finished + cancelled + rejected + live) { return 1; }
    return 0;
}

int slot(int q, int i) {
    return q * 20 + i;
}

void enqueue(int q, int id) {
    if (qlen[q] < 20) {
        queues[slot(q, qlen[q])] = id;
        age[slot(q, qlen[q])] = 0;
        qlen[q] = qlen[q] + 1;
    } else {
        rejected = rejected + 1;
        added = added - 1;
    }
}

int dequeue(int q) {
    int id = queues[slot(q, 0)];
    int i;
    for (i = 1; i < qlen[q]; i = i + 1) {
        queues[slot(q, i - 1)] = queues[slot(q, i)];
        age[slot(q, i - 1)] = age[slot(q, i)];
    }
    qlen[q] = qlen[q] - 1;
    return id;
}

void age_all(int q) {
    int i;
    for (i = 0; i < qlen[q]; i = i + 1) {
        age[slot(q, i)] = age[slot(q, i)] + 1;
        assert(age[slot(q, i)] > 0); /*BUG:sch2-2*/
    }
}

int main() {
    int v = readint();
    while (v >= 0) {
        int op = v % 8;
        int arg = v / 8;
        tick = tick + 1;
        if (trace_mode > 0) { audit(tick + added); }
        if (op == 0) {
            added = added + 1;
            enqueue(arg % 4, next_id);
            next_id = next_id + 1;
            burst = burst + 1;
            if (burst > maxburst) { maxburst = burst; }
            if (burst > 6) {
                credit = credit + 1;
                assert(burst <= 7); /*BUG:sch2-4*/
            }
        } else {
            burst = 0;
        }
        if (op == 1 || op == 2) {
            int q = 0;
            while (q < 4 && qlen[q] == 0) { q = q + 1; }
            if (q < 4) {
                int id = dequeue(q);
                finished = finished + 1;
                putchar('0' + id % 10);
                credit = credit + id % 4;
                assert(credit >= 0); /*BUG:sch2-3*/
            }
            age_all(0);
        }
        if (op == 5) {
            int q = 0;
            while (q < 4 && qlen[q] == 0) { q = q + 1; }
            if (q < 4) {
                int id = queues[q * 20 + qlen[q] - 1];
                qlen[q] = qlen[q] - 1;
                cancelled = cancelled + 2;
                int live = qlen[0] + qlen[1] + qlen[2] + qlen[3];
                assert(added == finished + cancelled + rejected + live); /*BUG:sch2-1*/
                putchar('x');
                putchar('0' + id % 10);
            }
        }
        if (op == 7) {
            int total_age = 0;
            int q;
            int i;
            for (q = 0; q < 4; q = q + 1) {
                for (i = 0; i < qlen[q]; i = i + 1) {
                    total_age = total_age + age[slot(q, i)];
                }
            }
            if (total_age < 0) {
                finished = finished + 1;
                assert(balanced() == 1); /*BUG:sch2-5*/
            }
        }
        v = readint();
    }
    printint(finished);
    printint(queued());
    assert(balanced() == 1);
    return 0;
}
"#;

/// General input: adds (bursts of at most 4), runs and no-ops — cancel (5)
/// and the aging audit (7) never occur.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x5332_3200);
    let mut out = Vec::new();
    // Early priority-0 adds so cancel NT-paths see work in queue 0.
    for _ in 0..5 {
        let v = 8 * (4 * g.below(25));
        out.extend_from_slice(v.to_string().as_bytes());
        out.push(b' ');
    }
    let n_ops = g.range(40, 70);
    let mut consecutive_adds = 0u32;
    for _ in 0..n_ops {
        let op = if consecutive_adds >= 4 {
            consecutive_adds = 0;
            1 + g.below(2) // run
        } else if g.chance(1, 2) {
            consecutive_adds += 1;
            0
        } else {
            consecutive_adds = 0;
            match g.below(6) {
                0 | 1 => 1,
                2 => 2,
                3 => 3, // no-op
                4 => 4, // no-op
                _ => 6, // no-op
            }
        };
        let arg = g.below(100);
        let v = op + 8 * arg;
        out.extend_from_slice(v.to_string().as_bytes());
        out.push(b' ');
    }
    out.extend_from_slice(b"-1\n");
    out
}

/// The `schedule2` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "schedule2".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::Siemens,
        tools: vec![Tool::Assertions],
        bugs: vec![
            BugSpec {
                id: "sch2-1".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch2-1*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "cancel path double-counts cancelled".to_owned(),
            },
            BugSpec {
                id: "sch2-2".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch2-2*/".to_owned(),
                escape: EscapeClass::ValueCoverage,
                description: "aging wraps only at INT_MAX — value coverage".to_owned(),
            },
            BugSpec {
                id: "sch2-3".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch2-3*/".to_owned(),
                escape: EscapeClass::ValueCoverage,
                description: "credit accounting wrong only at integer overflow — value \
                              coverage"
                    .to_owned(),
            },
            BugSpec {
                id: "sch2-4".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch2-4*/".to_owned(),
                escape: EscapeClass::Inconsistency,
                description: "burst bug fails only at burst >= 8; the boundary fix pins \
                              burst to 7"
                    .to_owned(),
            },
            BugSpec {
                id: "sch2-5".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:sch2-5*/".to_owned(),
                escape: EscapeClass::NeedsSpecialInput,
                description: "aging audit: the full queue scan exceeds MaxNTPathLength \
                              before the buggy inner branch"
                    .to_owned(),
            },
        ],
        max_nt_path_len: 100,
        input: InputSource::Fn(general_input),
    }
}
