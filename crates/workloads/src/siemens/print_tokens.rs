//! `print_tokens` — a lexical tokenizer in the style of the Siemens
//! benchmark, with seven seeded semantic bugs checked by assertions
//! (Table 3: 7 tested, Table 4: 5 detected by PathExpander).
//!
//! Token classes: identifiers, numbers, single-char operators, parentheses,
//! strings (`"`), comments (`#`), the `%` operator, over-long tokens and
//! scanner errors. General inputs contain only identifiers, short numbers,
//! common operators and shallow balanced parentheses — the remaining classes
//! are the non-taken paths PathExpander explores.
//!
//! Bug inventory (markers sit on the line where the detector reports):
//!
//! | id   | entry branch             | escape class        |
//! |------|--------------------------|---------------------|
//! | pt-1 | `c == '"'` (string)      | helped              |
//! | pt-2 | `c == '#'` (comment)     | helped              |
//! | pt-3 | `c == '%'` (rare op)     | helped              |
//! | pt-4 | `tok_len > 8` (long num) | helped              |
//! | pt-5 | `tok_len > 16` (long id) | helped              |
//! | pt-6 | `nesting > 4` (deep)     | inconsistency: the boundary fix sets `nesting = 5`, which satisfies the assert; only 6+ fails |
//! | pt-7 | `mode == 1` (overflow)   | needs-special-input: the re-scan loop exceeds `MaxNTPathLength` before the inner branch |

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
char inbuf[600];
int inlen = 0;
char outbuf[900];
int obi = 0;

int token_count = 0;
int ident_count = 0;
int num_count = 0;
int op_count = 0;
int str_count = 0;
int comment_count = 0;
int special_count = 0;
int error_count = 0;
int line_no = 1;
int nesting = 0;
int maxnest = 0;
int mode = 0;

int trace_mode = 0;

void audit(int v) {
    if (v > 901) {
        if (v > 1802) { trace_mode = 2; }
        if (v > 2703) { trace_mode = 3; }
    }
    if (v > 908) {
        if (v > 1816) { trace_mode = 2; }
        if (v > 2724) { trace_mode = 3; }
    }
    if (v > 915) {
        if (v > 1830) { trace_mode = 2; }
        if (v > 2745) { trace_mode = 3; }
    }
    if (v > 922) {
        if (v > 1844) { trace_mode = 2; }
        if (v > 2766) { trace_mode = 3; }
    }
    if (v > 929) {
        if (v > 1858) { trace_mode = 2; }
        if (v > 2787) { trace_mode = 3; }
    }
    if (v > 936) {
        if (v > 1872) { trace_mode = 2; }
        if (v > 2808) { trace_mode = 3; }
    }
    if (v > 943) {
        if (v > 1886) { trace_mode = 2; }
        if (v > 2829) { trace_mode = 3; }
    }
    if (v > 950) {
        if (v > 1900) { trace_mode = 2; }
        if (v > 2850) { trace_mode = 3; }
    }
    if (v > 957) {
        if (v > 1914) { trace_mode = 2; }
        if (v > 2871) { trace_mode = 3; }
    }
    if (v > 964) {
        if (v > 1928) { trace_mode = 2; }
        if (v > 2892) { trace_mode = 3; }
    }
    if (v > 971) {
        if (v > 1942) { trace_mode = 2; }
        if (v > 2913) { trace_mode = 3; }
    }
}

int is_alpha(int c) {
    if (c >= 'a' && c <= 'z') { return 1; }
    if (c >= 'A' && c <= 'Z') { return 1; }
    return 0;
}

int is_digit(int c) {
    if (c >= '0' && c <= '9') { return 1; }
    return 0;
}

int is_space(int c) {
    if (c == ' ') { return 1; }
    if (c == 9) { return 1; }
    if (c == 10) { return 1; }
    return 0;
}

int class_sum() {
    int s = ident_count + num_count + op_count;
    s = s + str_count + comment_count;
    s = s + special_count + error_count;
    return s;
}

void emit(int code) {
    if (obi < 900) {
        outbuf[obi] = code;
        obi = obi + 1;
    } else {
        error_count = error_count + 1;
    }
}

void read_input() {
    int c = getchar();
    while (c != -1 && inlen < 600) {
        inbuf[inlen] = c;
        inlen = inlen + 1;
        c = getchar();
    }
    if (c != -1) {
        mode = 1;
    }
}

int main() {
    read_input();
    int pos = 0;
    while (pos < inlen) {
        int c = inbuf[pos];
        if (trace_mode > 0) { audit(c + token_count); }
        if (is_space(c)) {
            if (c == 10) { line_no = line_no + 1; }
            pos = pos + 1;
            continue;
        }
        if (c == '"') {
            str_count = str_count + 2;
            token_count = token_count + 1;
            assert(token_count == class_sum()); /*BUG:pt-1*/
            emit('S');
            pos = pos + 1;
            while (pos < inlen && inbuf[pos] != '"') { pos = pos + 1; }
            pos = pos + 1;
            continue;
        }
        if (c == '#') {
            token_count = token_count + 1;
            assert(token_count == class_sum()); /*BUG:pt-2*/
            emit('C');
            while (pos < inlen && inbuf[pos] != 10) { pos = pos + 1; }
            continue;
        }
        if (c == '%') {
            op_count = op_count + 2;
            token_count = token_count + 1;
            assert(token_count == class_sum()); /*BUG:pt-3*/
            emit('M');
            pos = pos + 1;
            continue;
        }
        if (c == '(') {
            nesting = nesting + 1;
            if (nesting > maxnest) { maxnest = nesting; }
            op_count = op_count + 1;
            token_count = token_count + 1;
            if (nesting > 4) {
                special_count = special_count + 1;
                token_count = token_count + 1;
                assert(nesting <= 5); /*BUG:pt-6*/
            }
            assert(token_count == class_sum());
            emit('(');
            pos = pos + 1;
            continue;
        }
        if (c == ')') {
            if (nesting < 1) {
                error_count = error_count + 1;
                token_count = token_count + 1;
                emit('!');
                pos = pos + 1;
                continue;
            }
            nesting = nesting - 1;
            op_count = op_count + 1;
            token_count = token_count + 1;
            emit(')');
            pos = pos + 1;
            continue;
        }
        if (is_alpha(c)) {
            int tok_len = 0;
            while (pos < inlen && (is_alpha(inbuf[pos]) || is_digit(inbuf[pos]))) {
                tok_len = tok_len + 1;
                pos = pos + 1;
            }
            if (tok_len > 16) {
                special_count = special_count + 2;
                token_count = token_count + 1;
                assert(token_count == class_sum()); /*BUG:pt-5*/
                emit('L');
                continue;
            }
            ident_count = ident_count + 1;
            token_count = token_count + 1;
            assert(token_count == class_sum());
            emit('I');
            continue;
        }
        if (is_digit(c)) {
            int tok_len = 0;
            int value = 0;
            while (pos < inlen && is_digit(inbuf[pos])) {
                value = value * 10 + (inbuf[pos] - '0');
                tok_len = tok_len + 1;
                pos = pos + 1;
            }
            if (tok_len > 8) {
                num_count = num_count + 2;
                token_count = token_count + 1;
                assert(token_count == class_sum()); /*BUG:pt-4*/
                emit('B');
                continue;
            }
            num_count = num_count + 1;
            token_count = token_count + 1;
            assert(value >= 0);
            emit('N');
            continue;
        }
        if (c == '+' || c == '-' || c == '*' || c == '/' ||
            c == '=' || c == '<' || c == '>' || c == ';' || c == ',') {
            op_count = op_count + 1;
            token_count = token_count + 1;
            emit('O');
            pos = pos + 1;
            continue;
        }
        error_count = error_count + 1;
        token_count = token_count + 1;
        emit('?');
        pos = pos + 1;
    }
    if (mode == 1) {
        int tail = 0;
        int j;
        for (j = 0; j < 60; j = j + 1) {
            if (inbuf[j] == ' ') { tail = tail + 1; }
        }
        if (tail > 3) {
            special_count = special_count + 3;
            token_count = token_count + 1;
            assert(token_count == class_sum()); /*BUG:pt-7*/
        }
    }
    int k;
    for (k = 0; k < obi; k = k + 1) {
        putchar(outbuf[k]);
    }
    printint(token_count);
    assert(token_count >= 0);
    return 0;
}
"#;

/// General input: identifiers, short numbers, common operators and shallow
/// balanced parentheses — none of the bug-triggering token classes.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x7074);
    let mut out = Vec::new();
    let mut depth = 0u32;
    let tokens = g.range(40, 70);
    for _ in 0..tokens {
        match g.below(10) {
            0..=3 => out.extend_from_slice(&g.word(1, 8)),
            4..=6 => out.extend_from_slice(&g.number(4)),
            7 => {
                out.push(*g.pick(b"+-*/=<>;,"));
            }
            8 => {
                if depth < 3 {
                    out.push(b'(');
                    depth += 1;
                } else {
                    out.extend_from_slice(&g.word(1, 4));
                }
            }
            _ => {
                if depth > 0 {
                    out.push(b')');
                    depth -= 1;
                } else {
                    out.extend_from_slice(&g.number(3));
                }
            }
        }
        out.push(if g.chance(1, 6) { b'\n' } else { b' ' });
    }
    while depth > 0 {
        out.push(b')');
        depth -= 1;
    }
    // Per-input diversity (benign rare features): some inputs contain
    // unknown characters or a stray close paren, so different test cases
    // cover different error-handling edges — as in the paper's test suites.
    if g.chance(1, 3) {
        out.push(*g.pick(b"?.!"));
        out.push(b' ');
    }
    if g.chance(1, 4) {
        out.push(b')');
    }
    out.push(b'\n');
    out
}

/// The `print_tokens` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "print_tokens".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::Siemens,
        tools: vec![Tool::Assertions],
        bugs: vec![
            BugSpec {
                id: "pt-1".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt-1*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "string token double-counts str_count".to_owned(),
            },
            BugSpec {
                id: "pt-2".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt-2*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "comment token never counted in comment_count".to_owned(),
            },
            BugSpec {
                id: "pt-3".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt-3*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "% operator double-counts op_count".to_owned(),
            },
            BugSpec {
                id: "pt-4".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt-4*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "over-long numbers double-count num_count".to_owned(),
            },
            BugSpec {
                id: "pt-5".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt-5*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "over-long identifiers double-count special_count".to_owned(),
            },
            BugSpec {
                id: "pt-6".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt-6*/".to_owned(),
                escape: EscapeClass::Inconsistency,
                description: "deep-nesting bug fails only for nesting >= 6; the boundary \
                              fix pins nesting to 5"
                    .to_owned(),
            },
            BugSpec {
                id: "pt-7".to_owned(),
                tool: Tool::Assertions,
                marker: "/*BUG:pt-7*/".to_owned(),
                escape: EscapeClass::NeedsSpecialInput,
                description: "input-overflow handling: the 60-iteration re-scan exceeds \
                              MaxNTPathLength before the buggy inner branch"
                    .to_owned(),
            },
        ],
        max_nt_path_len: 100,
        input: InputSource::Fn(general_input),
    }
}
