//! The Siemens-suite reconstructions: semantic bugs checked by assertions,
//! `MaxNTPathLength` = 100 (paper §6.3).

pub mod print_tokens;
pub mod print_tokens2;
pub mod schedule;
pub mod schedule2;
