//! Open-source-style applications: memory bugs checked by CCured and
//! iWatcher, `MaxNTPathLength` = 1000 (paper §6.3). Each also carries the
//! seeded false-positive-prone sites behind Table 5 (`/*FPSITE*/` pruned by
//! boundary fixing, `/*FPRES*/` residual).

pub mod bc;
pub mod go;
pub mod man;
