//! `099.go` — a 9×9 go-board evaluator in the spirit of the SPEC95
//! benchmark: influence propagation sweeps, per-stone liberty counting and
//! an atari/capture handler. Pure computation after the input is buffered —
//! which is why its NT-paths almost never stop early (the paper's
//! Figure 3(a) shape: only ~0.5% stop before 1000 instructions).
//!
//! Two seeded memory bugs per tool (Table 3):
//!
//! * **go-1** (detected): the capture handler — never entered because
//!   general inputs place stones without adjacency, so no group is ever in
//!   atari — clears one entry past the end of the capture buffer.
//! * **go-2** (escapes, needs-special-input §7.1(4)): the endgame scorer is
//!   guarded by `phase == 2`, which general inputs never reach; the NT-path
//!   spawned there exhausts `MaxNTPathLength` in the two full-board scoring
//!   sweeps before the buggy inner branch, and the inner branch is never
//!   evaluated on the taken path, so it can never spawn its own NT-path.

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
int board[81];
int influence[81];
int liberties[81];
int capbuf[16];
int errbuf[8];

int stones = 0;
int black = 0;
int white = 0;
int captures = 0;
int atari_count = 0;
int phase = 0;
int score = 0;

int trace_mode = 0;

void audit(int v) {
    if (v > 901) {
        if (v > 1802) { trace_mode = 2; }
        if (v > 2703) { trace_mode = 3; }
    }
    if (v > 908) {
        if (v > 1816) { trace_mode = 2; }
        if (v > 2724) { trace_mode = 3; }
    }
    if (v > 915) {
        if (v > 1830) { trace_mode = 2; }
        if (v > 2745) { trace_mode = 3; }
    }
    if (v > 922) {
        if (v > 1844) { trace_mode = 2; }
        if (v > 2766) { trace_mode = 3; }
    }
    if (v > 929) {
        if (v > 1858) { trace_mode = 2; }
        if (v > 2787) { trace_mode = 3; }
    }
    if (v > 936) {
        if (v > 1872) { trace_mode = 2; }
        if (v > 2808) { trace_mode = 3; }
    }
    if (v > 943) {
        if (v > 1886) { trace_mode = 2; }
        if (v > 2829) { trace_mode = 3; }
    }
    if (v > 950) {
        if (v > 1900) { trace_mode = 2; }
        if (v > 2850) { trace_mode = 3; }
    }
    if (v > 957) {
        if (v > 1914) { trace_mode = 2; }
        if (v > 2871) { trace_mode = 3; }
    }
    if (v > 964) {
        if (v > 1928) { trace_mode = 2; }
        if (v > 2892) { trace_mode = 3; }
    }
}

int idx(int row, int col) {
    return row * 9 + col;
}

void place(int cell, int color) {
    if (cell >= 0 && cell < 81) {
        if (board[cell] == 0) {
            board[cell] = color;
            stones = stones + 1;
            if (color == 1) { black = black + 1; }
            else { white = white + 1; }
        }
    }
}

void spread_influence() {
    int pass;
    for (pass = 0; pass < 3; pass = pass + 1) {
        int r;
        for (r = 0; r < 9; r = r + 1) {
            int c;
            for (c = 0; c < 9; c = c + 1) {
                int cell = idx(r, c);
                int v = influence[cell];
                if (board[cell] == 1) { v = v + 8; }
                if (board[cell] == 2) { v = v - 8; }
                if (r > 0) { v = v + influence[cell - 9] / 4; }
                if (r < 8) { v = v + influence[cell + 9] / 4; }
                if (c > 0) { v = v + influence[cell - 1] / 4; }
                if (c < 8) { v = v + influence[cell + 1] / 4; }
                influence[cell] = v;
            }
        }
    }
}

int count_liberties(int cell) {
    int r = cell / 9;
    int c = cell % 9;
    int libs = 0;
    if (r > 0 && board[cell - 9] == 0) { libs = libs + 1; }
    if (r < 8 && board[cell + 9] == 0) { libs = libs + 1; }
    if (c > 0 && board[cell - 1] == 0) { libs = libs + 1; }
    if (c < 8 && board[cell + 1] == 0) { libs = libs + 1; }
    return libs;
}

void handle_capture(int cell) {
    captures = captures + 1;
    board[cell] = 0;
    int t;
    for (t = 0; t <= 16; t = t + 1) {
        capbuf[t] = 0; /*BUG:go-1*/
    }
}

void diagnostics(int x) {
    int e0 = 8 + x % 4;
    if (e0 < 8) { errbuf[e0] = 1; } /*FPSITE*/
    int e1 = 8 + (x / 3) % 4;
    if (e1 < 8) { errbuf[e1] = 2; } /*FPSITE*/
    int e2 = 9 + x % 3;
    if (e2 < 8) { errbuf[e2] = 3; } /*FPSITE*/
    int e3 = 8 + (x / 5) % 4;
    if (e3 < 8) { errbuf[e3] = 4; } /*FPSITE*/
    int e4 = 10 + x % 2;
    if (e4 < 8) { errbuf[e4] = 5; } /*FPSITE*/
    int e5 = 8 + (x / 7) % 4;
    if (e5 < 8) { errbuf[e5] = 6; } /*FPSITE*/
    int e6 = 9 + (x / 2) % 3;
    if (e6 < 8) { errbuf[e6] = 7; } /*FPSITE*/
    int e7 = 8 + (x / 11) % 4;
    if (e7 < 8) { errbuf[e7] = 8; } /*FPSITE*/
    int e8 = 8 + (x / 13) % 4;
    if (e8 < 8) { errbuf[e8] = 9; } /*FPSITE*/
    int e9 = 11 + x % 2;
    if (e9 < 8) { errbuf[e9] = 10; } /*FPSITE*/
    int e10 = 8 + (x / 17) % 4;
    if (e10 < 8) { errbuf[e10] = 11; } /*FPSITE*/
    int e11 = 9 + (x / 4) % 3;
    if (e11 < 8) { errbuf[e11] = 12; } /*FPSITE*/
    int r0 = 8 + x % 4;
    if (r0 < 8) { errbuf[r0 + 2] = 13; } /*FPRES*/
    int r1 = 9 + x % 3;
    if (r1 < 8) { errbuf[r1 + 3] = 14; } /*FPRES*/
    int r2 = 8 + (x / 5) % 4;
    if (r2 < 8) { errbuf[r2 + 4] = 15; } /*FPRES*/
    int r3 = 8 + (x / 7) % 4;
    if (r3 < 8) { errbuf[r3 + 2] = 16; } /*FPRES*/
    int r4 = 9 + (x / 2) % 3;
    if (r4 < 8) { errbuf[r4 + 3] = 17; } /*FPRES*/
}

int main() {
    // Read stone placements: pairs of (cell, color), -1 terminated.
    int v = readint();
    while (v >= 0) {
        int color = 1 + v % 2;
        place((v / 2) % 81, color);
        v = readint();
    }
    phase = 1;
    spread_influence();
    int cell;
    for (cell = 0; cell < 81; cell = cell + 1) {
        if (board[cell] != 0) {
            int libs = count_liberties(cell);
            liberties[cell] = libs;
            if (libs == 1) {
                atari_count = atari_count + 1;
            }
            if (libs == 0) {
                handle_capture(cell);
            }
            int mag = influence[cell];
            if (mag < 0) { mag = 0 - mag; }
            diagnostics(mag + cell);
            if (trace_mode > 0) { audit(mag + cell); }
        }
    }
    if (phase == 2) {
        int sweep;
        int i;
        for (sweep = 0; sweep < 2; sweep = sweep + 1) {
            for (i = 0; i < 81; i = i + 1) {
                if (influence[i] > 0) { score = score + 1; }
                if (influence[i] < 0) { score = score - 1; }
            }
        }
        if (score > 40) {
            int t;
            for (t = 0; t <= 16; t = t + 1) {
                capbuf[t] = score; /*BUG:go-2*/
            }
        }
    }
    printint(stones);
    printint(captures);
    printint(atari_count);
    return 0;
}
"#;

/// General input: stones only on cells with both coordinates even, so no
/// two stones are ever adjacent and every stone keeps at least two
/// liberties — the capture and atari paths stay cold.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x676F_3939);
    let mut out = Vec::new();
    let n = g.range(12, 30);
    // Some inputs place stones on the odd sub-lattice instead of the even
    // one — still never adjacent, but different board paths (and occasional
    // duplicate placements exercise the rejection edge).
    let offset = u32::from(g.chance(1, 3));
    for _ in 0..n {
        let row = (2 * g.below(4) + offset).min(8);
        let col = (2 * g.below(4) + offset).min(8);
        let cell = row * 9 + col;
        let color = g.below(2);
        // place() decodes cell = (v/2) % 81, color = 1 + v % 2.
        let v = cell * 2 + color;
        out.extend_from_slice(v.to_string().as_bytes());
        out.push(b' ');
    }
    out.extend_from_slice(b"-1\n");
    out
}

/// The `099.go` workload.
#[must_use]
pub fn workload() -> Workload {
    let mut bugs = Vec::new();
    for (tool, sfx) in [(Tool::Ccured, "ccured"), (Tool::Iwatcher, "iwatcher")] {
        bugs.push(BugSpec {
            id: if sfx == "ccured" {
                "go-1-ccured".to_owned()
            } else {
                "go-1-iwatcher".to_owned()
            },
            tool,
            marker: "/*BUG:go-1*/".to_owned(),
            escape: EscapeClass::Helped,
            description: "capture handler clears capbuf[0..=16] — one past the end".to_owned(),
        });
        bugs.push(BugSpec {
            id: if sfx == "ccured" {
                "go-2-ccured".to_owned()
            } else {
                "go-2-iwatcher".to_owned()
            },
            tool,
            marker: "/*BUG:go-2*/".to_owned(),
            escape: EscapeClass::NeedsSpecialInput,
            description: "endgame scorer bug: the two 81-cell sweeps exceed \
                          MaxNTPathLength before the buggy inner branch"
                .to_owned(),
        });
    }
    Workload {
        name: "099.go".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::OpenSource,
        tools: vec![Tool::Ccured, Tool::Iwatcher],
        bugs,
        max_nt_path_len: 1000,
        input: InputSource::Fn(general_input),
    }
}
