//! `bc` — an arbitrary-expression calculator in the style of GNU bc 1.06:
//! a recursive-descent evaluator with named registers, an append-only value
//! store with a growth path, and an assignment-trace history.
//!
//! Two seeded memory bugs per tool (Table 3):
//!
//! * **bc-1** (detected): the storage growth path — entered only when the
//!   value store fills, which general inputs never do — copies `cap + 1`
//!   entries (a classic off-by-one, modeled on bc's `more_arrays` bug).
//! * **bc-2** (escapes, hot-entry §7.1(2)): the assignment-trace write
//!   `outhist[pos]` is unguarded. During the input's early assignments the
//!   `pending > 0` edge is exercised past the counter threshold while `pos`
//!   is still small; by the time `pos` has run past the history capacity the
//!   branch is never taken again and its exercise counter blocks NT-path
//!   spawning. Raising `NTPathCounterThreshold` or shortening
//!   `CounterResetInterval` exposes it (the sensitivity experiment).

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
char inbuf[800];
int inlen = 0;
int pos = 0;

int regs[26];
int storage[16];
int wide[40];
int scap = 16;
int used = 0;

int outhist[8];
int histpos = 0;
int pending = 0;

int errbuf[8];
int expr_count = 0;
int assign_count = 0;
int err_count = 0;
int paren_count = 0;
int depth = 0;

int trace_mode = 0;

void audit(int v) {
    if (v > 901) {
        if (v > 1802) { trace_mode = 2; }
        if (v > 2703) { trace_mode = 3; }
    }
    if (v > 908) {
        if (v > 1816) { trace_mode = 2; }
        if (v > 2724) { trace_mode = 3; }
    }
    if (v > 915) {
        if (v > 1830) { trace_mode = 2; }
        if (v > 2745) { trace_mode = 3; }
    }
    if (v > 922) {
        if (v > 1844) { trace_mode = 2; }
        if (v > 2766) { trace_mode = 3; }
    }
    if (v > 929) {
        if (v > 1858) { trace_mode = 2; }
        if (v > 2787) { trace_mode = 3; }
    }
    if (v > 936) {
        if (v > 1872) { trace_mode = 2; }
        if (v > 2808) { trace_mode = 3; }
    }
    if (v > 943) {
        if (v > 1886) { trace_mode = 2; }
        if (v > 2829) { trace_mode = 3; }
    }
    if (v > 950) {
        if (v > 1900) { trace_mode = 2; }
        if (v > 2850) { trace_mode = 3; }
    }
    if (v > 957) {
        if (v > 1914) { trace_mode = 2; }
        if (v > 2871) { trace_mode = 3; }
    }
    if (v > 964) {
        if (v > 1928) { trace_mode = 2; }
        if (v > 2892) { trace_mode = 3; }
    }
    if (v > 971) {
        if (v > 1942) { trace_mode = 2; }
        if (v > 2913) { trace_mode = 3; }
    }
    if (v > 978) {
        if (v > 1956) { trace_mode = 2; }
        if (v > 2934) { trace_mode = 3; }
    }
    if (v > 985) {
        if (v > 1970) { trace_mode = 2; }
        if (v > 2955) { trace_mode = 3; }
    }
    if (v > 992) {
        if (v > 1984) { trace_mode = 2; }
        if (v > 2976) { trace_mode = 3; }
    }
}

void read_input() {
    int c = getchar();
    while (c != -1 && inlen < 800) {
        inbuf[inlen] = c;
        inlen = inlen + 1;
        c = getchar();
    }
}

void skip_spaces() {
    while (pos < inlen && (inbuf[pos] == ' ' || inbuf[pos] == 9)) {
        pos = pos + 1;
    }
}

int is_digit(int c) {
    if (c >= '0' && c <= '9') { return 1; }
    return 0;
}

int parse_factor() {
    skip_spaces();
    if (pos >= inlen) { err_count = err_count + 1; return 0; }
    int c = inbuf[pos];
    if (c == '(') {
        pos = pos + 1;
        depth = depth + 1;
        paren_count = paren_count + 1;
        int v = parse_expr();
        skip_spaces();
        if (pos < inlen && inbuf[pos] == ')') { pos = pos + 1; }
        else { err_count = err_count + 1; }
        depth = depth - 1;
        return v;
    }
    if (c == '-') {
        pos = pos + 1;
        return 0 - parse_factor();
    }
    if (c >= 'a' && c <= 'z') {
        pos = pos + 1;
        return regs[c - 'a'];
    }
    if (is_digit(c)) {
        int v = 0;
        while (pos < inlen && is_digit(inbuf[pos])) {
            v = v * 10 + (inbuf[pos] - '0');
            pos = pos + 1;
        }
        return v;
    }
    err_count = err_count + 1;
    pos = pos + 1;
    return 0;
}

int parse_term() {
    int v = parse_factor();
    skip_spaces();
    while (pos < inlen && (inbuf[pos] == '*' || inbuf[pos] == '/')) {
        int op = inbuf[pos];
        pos = pos + 1;
        int rhs = parse_factor();
        if (op == '*') { v = v * rhs; }
        else {
            if (rhs == 0) { err_count = err_count + 1; }
            else { v = v / rhs; }
        }
        skip_spaces();
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    skip_spaces();
    while (pos < inlen && (inbuf[pos] == '+' || inbuf[pos] == '-')) {
        int op = inbuf[pos];
        pos = pos + 1;
        int rhs = parse_term();
        if (op == '+') { v = v + rhs; }
        else { v = v - rhs; }
        skip_spaces();
    }
    return v;
}

void store_value(int v) {
    if (used >= scap) {
        int t;
        for (t = 0; t <= scap; t = t + 1) {
            wide[t] = storage[t]; /*BUG:bc-1*/
        }
        scap = scap + 8;
    } else {
        storage[used] = v;
        used = used + 1;
    }
}

void diagnostics(int x) {
    int e0 = 8 + x % 4;
    if (e0 < 8) { errbuf[e0] = 1; } /*FPSITE*/
    int e1 = 8 + (x / 3) % 4;
    if (e1 < 8) { errbuf[e1] = 2; } /*FPSITE*/
    int e2 = 9 + x % 3;
    if (e2 < 8) { errbuf[e2] = 3; } /*FPSITE*/
    int e3 = 8 + (x / 5) % 4;
    if (e3 < 8) { errbuf[e3] = 4; } /*FPSITE*/
    int e4 = 10 + x % 2;
    if (e4 < 8) { errbuf[e4] = 5; } /*FPSITE*/
    int e5 = 8 + (x / 7) % 4;
    if (e5 < 8) { errbuf[e5] = 6; } /*FPSITE*/
    int e6 = 9 + (x / 2) % 3;
    if (e6 < 8) { errbuf[e6] = 7; } /*FPSITE*/
    int e7 = 8 + (x / 11) % 4;
    if (e7 < 8) { errbuf[e7] = 8; } /*FPSITE*/
    int e8 = 8 + (x / 13) % 4;
    if (e8 < 8) { errbuf[e8] = 9; } /*FPSITE*/
    int e9 = 11 + x % 2;
    if (e9 < 8) { errbuf[e9] = 10; } /*FPSITE*/
    int r0 = 8 + x % 4;
    if (r0 < 8) { errbuf[r0 + 2] = 11; } /*FPRES*/
    int r1 = 8 + (x / 3) % 4;
    if (r1 < 8) { errbuf[r1 + 3] = 12; } /*FPRES*/
    int r2 = 9 + x % 3;
    if (r2 < 8) { errbuf[r2 + 2] = 13; } /*FPRES*/
    int r3 = 8 + (x / 5) % 4;
    if (r3 < 8) { errbuf[r3 + 4] = 14; } /*FPRES*/
}

int main() {
    read_input();
    while (pos < inlen) {
        skip_spaces();
        if (pos >= inlen) { break; }
        int c = inbuf[pos];
        if (c == 10 || c == ';') {
            pos = pos + 1;
            continue;
        }
        int had_assign = 0;
        int target = 0;
        if (c >= 'a' && c <= 'z' && pos + 1 < inlen && inbuf[pos + 1] == '=') {
            target = c - 'a';
            pos = pos + 2;
            had_assign = 1;
        }
        int before_parens = paren_count;
        int v = parse_expr();
        expr_count = expr_count + 1;
        if (had_assign == 1) {
            regs[target] = v;
            assign_count = assign_count + 1;
            pending = pending + 1;
            if (assign_count % 5 == 0) {
                store_value(v);
            }
        }
        if (pending > 0) {
            outhist[histpos] = v; /*BUG:bc-2*/
            histpos = histpos + 1;
            pending = 0;
        }
        if (paren_count > before_parens) {
            histpos = histpos + 1;
        }
        int av = v;
        if (av < 0) { av = 0 - av; }
        diagnostics(av);
        if (trace_mode > 0) { audit(av % 400); }
        printint(v);
        putchar(10);
    }
    printint(expr_count);
    return 0;
}
"#;

/// General input: an early phase of simple assignments (the hot-entry
/// warm-up for bc-2), then parenthesized arithmetic with no assignments.
/// At most 8 assignments, so the value store never fills.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x6263_3036);
    let mut out = Vec::new();
    // Phase 1: 7 assignments (each takes the `pending > 0` edge once).
    for i in 0..7u8 {
        let reg = b'a' + (i % 5);
        out.push(reg);
        out.push(b'=');
        out.extend_from_slice(&g.number(3));
        out.push(*g.pick(b"+-*"));
        out.extend_from_slice(&g.number(2));
        out.push(b'\n');
    }
    // Phase 2: pure arithmetic with parentheses (advances histpos past the
    // history capacity without taking the trace branch).
    let exprs = g.range(14, 22);
    for _ in 0..exprs {
        out.push(b'(');
        out.extend_from_slice(&g.number(3));
        out.push(*g.pick(b"+-*"));
        out.extend_from_slice(&g.number(2));
        out.push(b')');
        if g.chance(1, 2) {
            out.push(*g.pick(b"+-"));
            let reg = b'a' + (g.below(5) as u8);
            out.push(reg);
        }
        out.push(b'\n');
    }
    // Benign per-input diversity: parse-error paths.
    if g.chance(1, 3) {
        out.extend_from_slice(b"3 + ?\n");
    }
    if g.chance(1, 4) {
        out.extend_from_slice(b"(1 + 2\n");
    }
    out
}

/// The `bc` workload.
#[must_use]
pub fn workload() -> Workload {
    let bugs = |tool: Tool, suffix: &'static str| {
        vec![
            BugSpec {
                id: if suffix == "c" {
                    "bc-1-ccured".to_owned()
                } else {
                    "bc-1-iwatcher".to_owned()
                },
                tool,
                marker: "/*BUG:bc-1*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "storage growth copies cap+1 entries (off-by-one, modeled \
                              on bc's more_arrays bug)"
                    .to_owned(),
            },
            BugSpec {
                id: if suffix == "c" {
                    "bc-2-ccured".to_owned()
                } else {
                    "bc-2-iwatcher".to_owned()
                },
                tool,
                marker: "/*BUG:bc-2*/".to_owned(),
                escape: EscapeClass::HotEntry,
                description: "unguarded trace write: the pending>0 edge saturates its \
                              exercise counter before histpos runs past capacity"
                    .to_owned(),
            },
        ]
    };
    let mut all = bugs(Tool::Ccured, "c");
    all.extend(bugs(Tool::Iwatcher, "i"));
    Workload {
        name: "bc".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::OpenSource,
        tools: vec![Tool::Ccured, Tool::Iwatcher],
        bugs: all,
        max_nt_path_len: 1000,
        input: InputSource::Fn(general_input),
    }
}
