//! `man` — a man-page formatter in the style of man-1.5h1: parses
//! `name width` entry lines into records, lays them out into a line buffer,
//! and keeps an optional cross-reference pointer that general inputs never
//! set. The single seeded bug (Table 3: 1 bug, detected) is a buffer
//! overrun in the cross-reference formatter, guarded by `xref != 0` — the
//! NT-path reaches it **only** through the §4.4 blank-data-structure fix,
//! which is exactly the paper's Table 5 observation for `man`: the bug is
//! found after consistency fixing, not before (the unfixed NT-path crashes
//! on the null dereference first).

use px_detect::Tool;

use crate::input::InputGen;
use crate::{BugSpec, EscapeClass, Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
struct Entry {
    int width;
    int flags;
    char name[12];
};

char inbuf[700];
int inlen = 0;
int pos = 0;

char line[60];
int linelen = 0;
char namebuf[8];
int errbuf[8];

struct Entry* xref = 0;
int entry_count = 0;
int long_count = 0;
int wrap_count = 0;
int err_count = 0;
int total_width = 0;

int trace_mode = 0;

void audit(int v) {
    if (v > 901) {
        if (v > 1802) { trace_mode = 2; }
        if (v > 2703) { trace_mode = 3; }
    }
    if (v > 908) {
        if (v > 1816) { trace_mode = 2; }
        if (v > 2724) { trace_mode = 3; }
    }
    if (v > 915) {
        if (v > 1830) { trace_mode = 2; }
        if (v > 2745) { trace_mode = 3; }
    }
    if (v > 922) {
        if (v > 1844) { trace_mode = 2; }
        if (v > 2766) { trace_mode = 3; }
    }
    if (v > 929) {
        if (v > 1858) { trace_mode = 2; }
        if (v > 2787) { trace_mode = 3; }
    }
    if (v > 936) {
        if (v > 1872) { trace_mode = 2; }
        if (v > 2808) { trace_mode = 3; }
    }
    if (v > 943) {
        if (v > 1886) { trace_mode = 2; }
        if (v > 2829) { trace_mode = 3; }
    }
    if (v > 950) {
        if (v > 1900) { trace_mode = 2; }
        if (v > 2850) { trace_mode = 3; }
    }
    if (v > 957) {
        if (v > 1914) { trace_mode = 2; }
        if (v > 2871) { trace_mode = 3; }
    }
}

void read_input() {
    int c = getchar();
    while (c != -1 && inlen < 700) {
        inbuf[inlen] = c;
        inlen = inlen + 1;
        c = getchar();
    }
}

int is_alpha(int c) {
    if (c >= 'a' && c <= 'z') { return 1; }
    return 0;
}

int is_digit(int c) {
    if (c >= '0' && c <= '9') { return 1; }
    return 0;
}

void flush_line() {
    int i;
    for (i = 0; i < linelen; i = i + 1) {
        putchar(line[i]);
    }
    putchar(10);
    linelen = 0;
}

void put(int c) {
    if (linelen >= 60) {
        flush_line();
        wrap_count = wrap_count + 1;
    }
    line[linelen] = c;
    linelen = linelen + 1;
}

void diagnostics(int x) {
    int e0 = 8 + x % 4;
    if (e0 < 8) { errbuf[e0] = 1; } /*FPSITE*/
    int e1 = 8 + (x / 3) % 4;
    if (e1 < 8) { errbuf[e1] = 2; } /*FPSITE*/
    int e2 = 9 + x % 3;
    if (e2 < 8) { errbuf[e2] = 3; } /*FPSITE*/
    int e3 = 8 + (x / 5) % 4;
    if (e3 < 8) { errbuf[e3] = 4; } /*FPSITE*/
    int e4 = 10 + x % 2;
    if (e4 < 8) { errbuf[e4] = 5; } /*FPSITE*/
    int e5 = 8 + (x / 7) % 4;
    if (e5 < 8) { errbuf[e5] = 6; } /*FPSITE*/
    int e6 = 9 + (x / 2) % 3;
    if (e6 < 8) { errbuf[e6] = 7; } /*FPSITE*/
    int e7 = 8 + (x / 11) % 4;
    if (e7 < 8) { errbuf[e7] = 8; } /*FPSITE*/
    int r0 = 8 + x % 4;
    if (r0 < 8) { errbuf[r0 + 2] = 9; } /*FPRES*/
    int r1 = 9 + x % 3;
    if (r1 < 8) { errbuf[r1 + 3] = 10; } /*FPRES*/
    int r2 = 8 + (x / 5) % 4;
    if (r2 < 8) { errbuf[r2 + 4] = 11; } /*FPRES*/
}

int main() {
    read_input();
    while (pos < inlen) {
        int c = inbuf[pos];
        if (trace_mode > 0) { audit(c + entry_count); }
        if (c == ' ' || c == 10 || c == 9) {
            pos = pos + 1;
            continue;
        }
        if (c == '!') {
            // A cross-reference directive would set xref; general inputs
            // never contain one, so xref stays null.
            pos = pos + 1;
            continue;
        }
        if (is_alpha(c)) {
            int nlen = 0;
            while (pos < inlen && is_alpha(inbuf[pos])) {
                if (nlen < 11) {
                    put(inbuf[pos]);
                    nlen = nlen + 1;
                }
                pos = pos + 1;
            }
            if (nlen > 9) {
                long_count = long_count + 1;
            }
            put(' ');
            entry_count = entry_count + 1;
            continue;
        }
        if (is_digit(c)) {
            int w = 0;
            while (pos < inlen && is_digit(inbuf[pos])) {
                w = w * 10 + (inbuf[pos] - '0');
                pos = pos + 1;
            }
            total_width = total_width + w;
            int pad = w % 4;
            while (pad > 0) {
                put('.');
                pad = pad - 1;
            }
            if (xref != 0) {
                int n = xref->width;
                int k;
                for (k = 0; k <= 8; k = k + 1) {
                    namebuf[k] = xref->name[0] + n + k; /*BUG:man-1*/
                }
                put(namebuf[0]);
            }
            diagnostics(w);
            continue;
        }
        err_count = err_count + 1;
        pos = pos + 1;
    }
    flush_line();
    printint(entry_count);
    printint(total_width);
    return 0;
}
"#;

/// General input: `name width` pairs, no `!` directives — the
/// cross-reference pointer stays null.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x6D61_6E00);
    let mut out = Vec::new();
    let entries = g.range(20, 35);
    for _ in 0..entries {
        out.extend_from_slice(&g.word(2, 9));
        out.push(b' ');
        out.extend_from_slice(&g.number(3));
        out.push(b'\n');
    }
    // Benign per-input diversity: the '!' directive is skipped (it never
    // sets the cross-reference pointer) and unknown characters take the
    // error path.
    if g.chance(1, 3) {
        out.extend_from_slice(b"! skipped 1\n");
    }
    if g.chance(1, 4) {
        out.extend_from_slice(b"# 2\n");
    }
    out
}

/// The `man` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "man".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::OpenSource,
        tools: vec![Tool::Ccured, Tool::Iwatcher],
        bugs: vec![
            BugSpec {
                id: "man-1-ccured".to_owned(),
                tool: Tool::Ccured,
                marker: "/*BUG:man-1*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "cross-reference formatter overruns namebuf[8]; reachable \
                              on an NT-path only via the blank-structure pointer fix"
                    .to_owned(),
            },
            BugSpec {
                id: "man-1-iwatcher".to_owned(),
                tool: Tool::Iwatcher,
                marker: "/*BUG:man-1*/".to_owned(),
                escape: EscapeClass::Helped,
                description: "same overrun, caught by the red zone after namebuf".to_owned(),
            },
        ],
        max_nt_path_len: 1000,
        input: InputSource::Fn(general_input),
    }
}
