//! Deterministic input generation for the workloads.
//!
//! `InputGen` is a tiny seeded generator used by every workload's
//! general-input function, plus by the cumulative-coverage experiment which
//! feeds each application 50 random inputs (paper §6.3).
//!
//! The raw stream comes from [`px_util::XorShift64Star`], which is
//! bit-for-bit the xorshift64* generator this module originally embedded:
//! every experiment's inputs (and therefore every paper-claims band) depend
//! on that stream staying fixed.

use px_util::{Rng, XorShift64Star};

/// A seeded pseudo-random byte/choice generator (xorshift64*).
#[derive(Debug, Clone)]
pub struct InputGen {
    rng: XorShift64Star,
}

impl InputGen {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> InputGen {
        InputGen {
            rng: XorShift64Star::new(seed),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u32) -> u32 {
        self.rng.below(u64::from(n)) as u32
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below(hi - lo + 1)
    }

    /// One element of a slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        self.rng.choose(items)
    }

    /// One byte-string out of a list (avoids double-reference inference).
    pub fn pick_bytes<'a>(&mut self, items: &[&'a [u8]]) -> &'a [u8] {
        items[self.below(items.len() as u32) as usize]
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        self.rng.chance(u64::from(num), u64::from(den))
    }

    /// A lowercase identifier of the given length range.
    pub fn word(&mut self, min_len: u32, max_len: u32) -> Vec<u8> {
        let len = self.range(min_len, max_len);
        (0..len).map(|_| b'a' + self.below(26) as u8).collect()
    }

    /// A decimal number with `1..=digits` digits, no leading zero.
    pub fn number(&mut self, digits: u32) -> Vec<u8> {
        let len = self.range(1, digits);
        let mut out = Vec::with_capacity(len as usize);
        out.push(b'1' + self.below(9) as u8);
        for _ in 1..len {
            out.push(b'0' + self.below(10) as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = InputGen::new(5);
        let mut b = InputGen::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_matches_the_historical_embedded_generator() {
        // The pre-px-util implementation, kept verbatim as an oracle: the
        // workload inputs (and the experiment bands built on them) are a
        // function of this exact stream.
        let mut state: u64 = 5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut legacy_next = move || {
            let mut x = state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut g = InputGen::new(5);
        for _ in 0..64 {
            assert_eq!(g.next_u64(), legacy_next());
        }
    }

    #[test]
    fn ranges_hold() {
        let mut g = InputGen::new(9);
        for _ in 0..1000 {
            let v = g.range(3, 7);
            assert!((3..=7).contains(&v));
        }
        let w = g.word(2, 5);
        assert!((2..=5).contains(&(w.len() as u32)));
        assert!(w.iter().all(u8::is_ascii_lowercase));
        let n = g.number(4);
        assert!(!n.is_empty() && n.len() <= 4);
        assert_ne!(n[0], b'0');
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut g = InputGen::new(11);
        let hits = (0..10_000).filter(|_| g.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "~25%: {hits}");
    }
}
