//! SPEC-style kernels for the latency (Figure 3) and overhead experiments.
//! They carry no seeded bugs; what matters is their *side-effect density*:
//! `gzip` writes output from its inner loop (NT-paths stop on unsafe
//! events), `vpr` calls `rand()` per annealing move (likewise), and
//! `parser` — like `go` — computes over buffered data (NT-paths survive).

pub mod gzip;
pub mod parser;
pub mod vpr;
