//! `175.vpr` — a placement annealing kernel: cells on a 16×16 grid, nets
//! with Manhattan wirelength cost, random swap moves. Every move consults
//! `rand()`, so NT-paths reach an unsafe event quickly — the paper's
//! Figure 3(c) shape.

use px_detect::Tool;

use crate::input::InputGen;
use crate::{Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
int cellx[40];
int celly[40];
int net_a[64];
int net_b[64];
int ncells = 0;
int nnets = 0;

int accepted = 0;
int rejected = 0;
int best_cost = 0;
int moves = 0;
int prng_state = 1;

int next_move() {
    if (moves % 10 == 7) {
        prng_state = rand() + 1;
    }
    prng_state = prng_state * 1103515245 + 12345;
    int v = prng_state;
    if (v < 0) { v = 0 - v; }
    return v;
}

int absval(int v) {
    if (v < 0) { return 0 - v; }
    return v;
}

int net_cost(int n) {
    int a = net_a[n];
    int b = net_b[n];
    int dx = absval(cellx[a] - cellx[b]);
    int dy = absval(celly[a] - celly[b]);
    return dx + dy;
}

int total_cost() {
    int sum = 0;
    int n;
    for (n = 0; n < nnets; n = n + 1) {
        sum = sum + net_cost(n);
    }
    return sum;
}

int main() {
    ncells = readint();
    if (ncells < 4) { ncells = 4; }
    if (ncells > 40) { ncells = 40; }
    nnets = readint();
    if (nnets < 4) { nnets = 4; }
    if (nnets > 64) { nnets = 64; }
    int iters = readint();
    if (iters < 10) { iters = 10; }
    if (iters > 600) { iters = 600; }

    int i;
    for (i = 0; i < ncells; i = i + 1) {
        cellx[i] = (i * 7) % 16;
        celly[i] = (i * 3) % 16;
    }
    for (i = 0; i < nnets; i = i + 1) {
        net_a[i] = (i * 5) % ncells;
        net_b[i] = (i * 11 + 3) % ncells;
    }

    int cost = total_cost();
    best_cost = cost;
    int temperature = 64;
    int m;
    for (m = 0; m < iters; m = m + 1) {
        moves = moves + 1;
        int cell = next_move() % ncells;
        int oldx = cellx[cell];
        int oldy = celly[cell];
        cellx[cell] = next_move() % 16;
        celly[cell] = next_move() % 16;
        int newcost = total_cost();
        int delta = newcost - cost;
        if (delta <= 0) {
            accepted = accepted + 1;
            cost = newcost;
        } else {
            int gate = next_move() % 64;
            if (gate < temperature) {
                accepted = accepted + 1;
                cost = newcost;
            } else {
                cellx[cell] = oldx;
                celly[cell] = oldy;
                rejected = rejected + 1;
            }
        }
        if (cost < best_cost) { best_cost = cost; }
        if (m % 50 == 49 && temperature > 2) {
            temperature = temperature / 2;
        }
    }
    printint(best_cost);
    printint(accepted);
    printint(rejected);
    return 0;
}
"#;

/// General input: cell count, net count and iteration count.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x7670_7200);
    let cells = g.range(16, 40);
    let nets = g.range(20, 64);
    let iters = g.range(150, 400);
    format!("{cells} {nets} {iters}\n").into_bytes()
}

/// The `175.vpr` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "175.vpr".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::Spec,
        tools: vec![Tool::Ccured, Tool::Assertions],
        bugs: Vec::new(),
        max_nt_path_len: 1000,
        input: InputSource::Fn(general_input),
    }
}
