//! `197.parser` — a dictionary-driven sentence checker: tokenizes buffered
//! text, classifies each word by linear dictionary search, and validates a
//! small grammar with a state machine. Pure computation after input
//! buffering, like `go` — NT-paths mostly survive to the length limit.

use px_detect::Tool;

use crate::input::InputGen;
use crate::{Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
char inbuf[1200];
int inlen = 0;

char dict[240];
int dict_class[30];
int dict_n = 0;

int nouns = 0;
int verbs = 0;
int dets = 0;
int unknown = 0;
int sentences = 0;
int wellformed = 0;
int state = 0;

void add_word(char* w, int class) {
    int i = 0;
    int base = dict_n * 8;
    while (w[i] != 0 && i < 7) {
        dict[base + i] = w[i];
        i = i + 1;
    }
    dict[base + i] = 0;
    dict_class[dict_n] = class;
    dict_n = dict_n + 1;
}

void build_dict() {
    add_word("dog", 1);
    add_word("cat", 1);
    add_word("fox", 1);
    add_word("man", 1);
    add_word("box", 1);
    add_word("sees", 2);
    add_word("bites", 2);
    add_word("jumps", 2);
    add_word("finds", 2);
    add_word("takes", 2);
    add_word("the", 3);
    add_word("a", 3);
    add_word("every", 3);
    add_word("some", 3);
}

int lookup(char* w) {
    int d;
    for (d = 0; d < dict_n; d = d + 1) {
        int base = d * 8;
        int i = 0;
        int same = 1;
        while (same == 1 && (w[i] != 0 || dict[base + i] != 0)) {
            if (w[i] != dict[base + i]) { same = 0; }
            else { i = i + 1; }
        }
        if (same == 1) { return dict_class[d]; }
    }
    return 0;
}

void read_input() {
    int c = getchar();
    while (c != -1 && inlen < 1200) {
        inbuf[inlen] = c;
        inlen = inlen + 1;
        c = getchar();
    }
}

int main() {
    build_dict();
    read_input();
    int pos = 0;
    char word[8];
    while (pos < inlen) {
        int c = inbuf[pos];
        if (c == ' ' || c == 10) {
            pos = pos + 1;
            continue;
        }
        if (c == '.') {
            sentences = sentences + 1;
            if (state == 3) { wellformed = wellformed + 1; }
            state = 0;
            pos = pos + 1;
            continue;
        }
        int wl = 0;
        while (pos < inlen && inbuf[pos] != ' ' && inbuf[pos] != 10 &&
               inbuf[pos] != '.') {
            if (wl < 7) {
                word[wl] = inbuf[pos];
                wl = wl + 1;
            }
            pos = pos + 1;
        }
        word[wl] = 0;
        int class = lookup(word);
        if (class == 1) {
            nouns = nouns + 1;
            if (state == 1) { state = 2; }
            else { if (state == 3) { state = 3; } else { state = 0; } }
        }
        if (class == 2) {
            verbs = verbs + 1;
            if (state == 2) { state = 3; }
        }
        if (class == 3) {
            dets = dets + 1;
            if (state == 0 || state == 3) { state = 1; }
        }
        if (class == 0) {
            unknown = unknown + 1;
        }
    }
    printint(nouns);
    printint(verbs);
    printint(dets);
    printint(unknown);
    printint(sentences);
    printint(wellformed);
    return 0;
}
"#;

/// General input: sentences built from dictionary words with occasional
/// out-of-dictionary words.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x7072_7300);
    let nouns: &[&[u8]] = &[b"dog", b"cat", b"fox", b"man", b"box"];
    let verbs: &[&[u8]] = &[b"sees", b"bites", b"jumps", b"finds", b"takes"];
    let dets: &[&[u8]] = &[b"the", b"a", b"every", b"some"];
    let mut out = Vec::new();
    let n_sent = g.range(25, 45);
    for _ in 0..n_sent {
        out.extend_from_slice(g.pick_bytes(dets));
        out.push(b' ');
        out.extend_from_slice(g.pick_bytes(nouns));
        out.push(b' ');
        out.extend_from_slice(g.pick_bytes(verbs));
        if g.chance(1, 3) {
            out.push(b' ');
            out.extend_from_slice(&g.word(3, 7));
        }
        out.extend_from_slice(b". ");
        if g.chance(1, 5) {
            out.push(b'\n');
        }
    }
    out
}

/// The `197.parser` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "197.parser".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::Spec,
        tools: vec![Tool::Ccured, Tool::Assertions],
        bugs: Vec::new(),
        max_nt_path_len: 1000,
        input: InputSource::Fn(general_input),
    }
}
