//! `164.gzip` — an LZ77-style compressor kernel. The inner match-search
//! loops provide compute; literals and match tokens are emitted with
//! `putchar` from the main loop, so NT-paths frequently reach an unsafe
//! event — the paper's Figure 3(b) shape, where most early NT-path stops
//! are unsafe events rather than crashes.

use px_detect::Tool;

use crate::input::InputGen;
use crate::{Family, InputSource, Workload};

pub(crate) const SOURCE: &str = r#"
char inbuf[1600];
int inlen = 0;

int literals = 0;
int matches = 0;
int total_saved = 0;
int longest = 0;
int out_bytes = 0;
char outq[64];
int oqn = 0;

void read_input() {
    int c = getchar();
    while (c != -1 && inlen < 1600) {
        inbuf[inlen] = c;
        inlen = inlen + 1;
        c = getchar();
    }
}

void flush_out() {
    int i;
    for (i = 0; i < oqn; i = i + 1) {
        putchar(outq[i]);
    }
    oqn = 0;
}

void emit(int b) {
    outq[oqn] = b;
    oqn = oqn + 1;
    out_bytes = out_bytes + 1;
    if (oqn >= 56) {
        flush_out();
    }
}

int main() {
    read_input();
    int pos = 0;
    while (pos < inlen) {
        int best_len = 0;
        int best_dist = 0;
        int start = pos - 64;
        if (start < 0) { start = 0; }
        int cand;
        for (cand = start; cand < pos; cand = cand + 1) {
            int len = 0;
            while (pos + len < inlen && len < 32 &&
                   inbuf[cand + len] == inbuf[pos + len]) {
                len = len + 1;
            }
            if (len > best_len) {
                best_len = len;
                best_dist = pos - cand;
            }
        }
        if (best_len >= 4) {
            emit(255);
            emit(best_dist);
            emit(best_len);
            matches = matches + 1;
            total_saved = total_saved + best_len - 3;
            if (best_len > longest) { longest = best_len; }
            pos = pos + best_len;
        } else {
            emit(inbuf[pos]);
            literals = literals + 1;
            pos = pos + 1;
        }
    }
    flush_out();
    putchar(10);
    printint(literals);
    printint(matches);
    printint(total_saved);
    printint(longest);
    return 0;
}
"#;

/// General input: repetitive text with embedded random words — compressible
/// enough to exercise both the literal and the match paths.
pub(crate) fn general_input(seed: u64) -> Vec<u8> {
    let mut g = InputGen::new(seed ^ 0x677A_6970);
    let mut out = Vec::new();
    let phrases: &[&[u8]] = &[
        b"the quick brown fox ",
        b"lorem ipsum dolor ",
        b"pack my box with ",
        b"jumps over the lazy dog ",
    ];
    while out.len() < 1200 {
        if g.chance(3, 5) {
            out.extend_from_slice(g.pick_bytes(phrases));
        } else {
            out.extend_from_slice(&g.word(3, 9));
            out.push(b' ');
        }
    }
    out.truncate(1400);
    out
}

/// The `164.gzip` workload.
#[must_use]
pub fn workload() -> Workload {
    Workload {
        name: "164.gzip".to_owned(),
        source: SOURCE.to_owned(),
        family: Family::Spec,
        tools: vec![Tool::Ccured, Tool::Assertions],
        bugs: Vec::new(),
        max_nt_path_len: 1000,
        input: InputSource::Fn(general_input),
    }
}
