//! # px-workloads — the benchmark programs of the evaluation
//!
//! Behaviour-equivalent PXC reconstructions of the paper's applications
//! (Table 3): four Siemens-suite programs with seeded semantic bugs for the
//! assertion method, three open-source-style applications with memory bugs
//! for CCured and iWatcher, and three SPEC-style kernels for the latency and
//! overhead measurements.
//!
//! Every seeded bug is marked in its source with a `/*BUG:id*/` comment and
//! described by a [`BugSpec`] carrying the paper's *escape class* — whether
//! PathExpander is expected to expose it, and if not, which of the §7.1
//! failure reasons applies. Seeded false-positive-prone sites (the Table 5
//! material) are marked `/*FPSITE*/` (pruned by boundary fixing) and
//! `/*FPRES*/` (residual after fixing).
//!
//! The source programs deliberately reproduce the *structural* properties
//! the evaluation depends on: many rarely-taken edges (error handling,
//! special token classes, rare opcodes), bugs placed within
//! `MaxNTPathLength` instructions of a cold edge, and per-application
//! side-effect density (gzip writes output in its inner loop, vpr calls
//! `rand()` in its move loop, go is pure computation — the Figure 3 shapes).

mod apps;
mod input;
mod siemens;
mod spec;
pub mod zoo;

pub use input::InputGen;

use pathexpander::PxConfig;
use px_detect::Tool;
use px_lang::{CompileError, CompiledProgram};

/// Which group of the paper's Table 3 a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Siemens suite (semantic bugs, assertions, `MaxNTPathLength` = 100).
    Siemens,
    /// Open-source applications (memory bugs, CCured/iWatcher).
    OpenSource,
    /// SPEC-style kernels (latency and overhead measurements).
    Spec,
    /// Generated zoo programs ([`zoo`]): synthesized families with an
    /// injectable bug taxonomy.
    Zoo,
}

/// Why a seeded bug escapes PathExpander — the paper's §7.1 taxonomy — or
/// [`EscapeClass::Helped`] when PathExpander is expected to expose it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeClass {
    /// Detected thanks to PathExpander (one of the 21).
    Helped,
    /// Value-coverage-limited: on an executed path, needs a specific value.
    ValueCoverage,
    /// The buggy path's entry edge is exercised past the counter threshold
    /// before the bug could matter.
    HotEntry,
    /// NT-path state inconsistency (even after fixing) masks the bug.
    Inconsistency,
    /// Only detectable under inputs as special as the bug-triggering one.
    NeedsSpecialInput,
}

impl EscapeClass {
    /// Whether PathExpander should detect this bug.
    #[must_use]
    pub fn expected_detected(self) -> bool {
        matches!(self, EscapeClass::Helped)
    }
}

/// One seeded bug.
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// Stable identifier, e.g. `"pt-3"` or `"bc-1"`.
    pub id: String,
    /// The tool that can detect this class of bug.
    pub tool: Tool,
    /// The `/*BUG:id*/` (or zoo `/*ZBUG:id*/`) marker to locate the buggy
    /// source line.
    pub marker: String,
    /// Expected outcome under PathExpander.
    pub escape: EscapeClass,
    /// Short description.
    pub description: String,
}

/// Where a workload's general input comes from.
///
/// Hand-written workloads carry a plain generator function; generated zoo
/// programs derive their input stream from the [`zoo::ZooSpec`] so that the
/// same spec always drives the same bytes.
#[derive(Debug, Clone)]
pub enum InputSource {
    /// Seeded generator function (the hand-written Table 3 programs).
    Fn(fn(u64) -> Vec<u8>),
    /// Derived from a zoo spec.
    Zoo(zoo::ZooSpec),
}

/// A benchmark program with its manifest.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name as the paper writes it (`"print_tokens"`, `"099.go"`, ...)
    /// or the canonical spec string for generated programs (`"zoo:parser:3"`).
    pub name: String,
    /// PXC source text.
    pub source: String,
    /// Table 3 group.
    pub family: Family,
    /// Detection tools this workload is evaluated with.
    pub tools: Vec<Tool>,
    /// Seeded bugs.
    pub bugs: Vec<BugSpec>,
    /// `MaxNTPathLength` for this workload (100 for Siemens, 1000 otherwise,
    /// §6.3; 250 for zoo programs).
    pub max_nt_path_len: u32,
    /// Seeded general-input source (inputs that do **not** trigger the
    /// seeded bugs).
    pub input: InputSource,
}

impl Workload {
    /// Source line (1-based) of a marker comment.
    ///
    /// # Panics
    ///
    /// Panics if the marker does not appear in the source — manifests are
    /// validated by tests.
    #[must_use]
    pub fn marker_line(&self, marker: &str) -> u32 {
        self.source
            .lines()
            .position(|l| l.contains(marker))
            .map(|i| i as u32 + 1)
            .unwrap_or_else(|| panic!("marker `{marker}` not found in {}", self.name))
    }

    /// Lines of all seeded bugs detectable by `tool`.
    #[must_use]
    pub fn bug_lines_for(&self, tool: Tool) -> Vec<u32> {
        self.bugs
            .iter()
            .filter(|b| b.tool == tool)
            .map(|b| self.marker_line(&b.marker))
            .collect()
    }

    /// The bugs evaluated with `tool`.
    #[must_use]
    pub fn bugs_for(&self, tool: Tool) -> Vec<&BugSpec> {
        self.bugs.iter().filter(|b| b.tool == tool).collect()
    }

    /// Compiles the workload for a tool (arming that tool's checks).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (the test suite guarantees none).
    pub fn compile_for(&self, tool: Tool) -> Result<CompiledProgram, CompileError> {
        px_lang::compile(&self.source, &tool.compile_options())
    }

    /// The PathExpander configuration the paper uses for this workload.
    #[must_use]
    pub fn px_config(&self) -> PxConfig {
        PxConfig::default().with_max_nt_path_len(self.max_nt_path_len)
    }

    /// A general (non-bug-triggering) input.
    #[must_use]
    pub fn general_input(&self, seed: u64) -> Vec<u8> {
        match &self.input {
            InputSource::Fn(f) => f(seed),
            InputSource::Zoo(spec) => zoo::input_bytes(spec, seed),
        }
    }

    /// Lines of source (for the Table 3 LOC column).
    #[must_use]
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// The seven buggy applications of Table 3, in the paper's order.
#[must_use]
pub fn buggy() -> Vec<Workload> {
    vec![
        apps::go::workload(),
        apps::bc::workload(),
        apps::man::workload(),
        siemens::print_tokens::workload(),
        siemens::print_tokens2::workload(),
        siemens::schedule::workload(),
        siemens::schedule2::workload(),
    ]
}

/// The three SPEC-style kernels used for overhead and latency measurements.
#[must_use]
pub fn spec_kernels() -> Vec<Workload> {
    vec![
        spec::gzip::workload(),
        spec::vpr::workload(),
        spec::parser::workload(),
    ]
}

/// Every workload.
#[must_use]
pub fn all() -> Vec<Workload> {
    let mut v = buggy();
    v.extend(spec_kernels());
    v
}

/// Looks a workload up by name. Names starting with `zoo:` are parsed as
/// [`zoo::ZooSpec`] strings and generated on the fly, so every CLI surface
/// (`pxc run`, `pxc bench`, `pxc analyze`) accepts zoo programs unchanged.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    if name.starts_with("zoo:") {
        return zoo::ZooSpec::parse(name).ok().map(|s| zoo::generate(&s));
    }
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table3() {
        let names: Vec<String> = buggy().iter().map(|w| w.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "099.go",
                "bc",
                "man",
                "print_tokens",
                "print_tokens2",
                "schedule",
                "schedule2"
            ]
        );
        let total_bugs: usize = buggy().iter().map(|w| w.bugs.len()).sum();
        assert_eq!(total_bugs, 38, "Table 3/4: 38 tested bugs");
        let helped: usize = buggy()
            .iter()
            .flat_map(|w| w.bugs.iter())
            .filter(|b| b.escape.expected_detected())
            .count();
        assert_eq!(helped, 21, "abstract: 21 of 38 detected");
    }

    #[test]
    fn every_workload_compiles_for_its_tools() {
        for w in all() {
            for &tool in &w.tools {
                let compiled = w
                    .compile_for(tool)
                    .unwrap_or_else(|e| panic!("{} ({}): {e}", w.name, tool.name()));
                assert!(
                    compiled.program.code.len() > 50,
                    "{} is non-trivial",
                    w.name
                );
            }
        }
    }

    #[test]
    fn every_bug_marker_resolves() {
        for w in buggy() {
            for b in &w.bugs {
                let line = w.marker_line(&b.marker);
                assert!(line > 0);
                assert!(
                    w.tools.contains(&b.tool),
                    "{}: bug {} uses tool not in workload tools",
                    w.name,
                    b.id
                );
            }
        }
    }

    #[test]
    fn inputs_are_deterministic_and_distinct() {
        for w in all() {
            let a = w.general_input(7);
            let b = w.general_input(7);
            let c = w.general_input(8);
            assert_eq!(a, b, "{}: same seed, same input", w.name);
            assert_ne!(a, c, "{}: different seeds differ", w.name);
            assert!(!a.is_empty(), "{}: input not empty", w.name);
        }
    }

    #[test]
    fn siemens_use_short_nt_paths() {
        for w in buggy() {
            match w.family {
                Family::Siemens => assert_eq!(w.max_nt_path_len, 100, "{}", w.name),
                _ => assert_eq!(w.max_nt_path_len, 1000, "{}", w.name),
            }
        }
    }
}
