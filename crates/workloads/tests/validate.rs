//! Workload validation: every seeded bug behaves exactly as its manifest
//! claims — invisible to the baseline monitored run, and under PathExpander
//! detected if and only if its escape class is `Helped`.

use pathexpander::run_standard;
use px_detect::{classify, report, Tool};
use px_mach::{run_baseline, IoState, MachConfig, RunExit};
use px_workloads::{buggy, spec_kernels, Workload};

const SEED: u64 = 12345;
const BUDGET: u64 = 20_000_000;

fn io(w: &Workload, seed: u64) -> IoState {
    IoState::new(w.general_input(seed), seed)
}

#[test]
fn all_programs_run_cleanly_on_general_inputs() {
    for w in buggy().iter().chain(spec_kernels().iter()) {
        for &tool in &w.tools {
            let compiled = w.compile_for(tool).unwrap();
            for seed in [1u64, 2, 3] {
                let r = run_baseline(
                    &compiled.program,
                    &MachConfig::single_core(),
                    io(w, seed),
                    BUDGET,
                );
                assert_eq!(
                    r.exit,
                    RunExit::Exited(0),
                    "{} ({}) seed {seed} must exit cleanly, ran {} instructions",
                    w.name,
                    tool.name(),
                    r.instructions,
                );
            }
        }
    }
}

#[test]
fn baseline_detects_no_seeded_bugs() {
    for w in buggy() {
        for &tool in &w.tools {
            let compiled = w.compile_for(tool).unwrap();
            let r = run_baseline(
                &compiled.program,
                &MachConfig::single_core(),
                io(&w, SEED),
                BUDGET,
            );
            let dets = report(&compiled, &r.monitor, tool);
            let c = classify(&dets, &w.bug_lines_for(tool), false);
            assert_eq!(
                c.true_positives(),
                0,
                "{} ({}): baseline must miss all seeded bugs, found {:?}",
                w.name,
                tool.name(),
                c.true_positive_lines,
            );
        }
    }
}

#[test]
fn pathexpander_detects_exactly_the_helped_bugs() {
    for w in buggy() {
        for &tool in &w.tools {
            let compiled = w.compile_for(tool).unwrap();
            let r = run_standard(
                &compiled.program,
                &MachConfig::single_core(),
                &w.px_config().with_max_instructions(BUDGET),
                io(&w, SEED),
            );
            assert_eq!(
                r.exit,
                RunExit::Exited(0),
                "{} ({}): PathExpander run must still exit cleanly",
                w.name,
                tool.name(),
            );
            let dets = report(&compiled, &r.monitor, tool);
            let c = classify(&dets, &w.bug_lines_for(tool), false);
            for bug in w.bugs_for(tool) {
                let line = w.marker_line(&bug.marker);
                let detected = c.true_positive_lines.contains(&line);
                if bug.escape.expected_detected() {
                    assert!(
                        detected,
                        "{} ({}): bug {} (line {line}) should be DETECTED; \
                         spawns={} stops: crash={} unsafe={} maxlen={} overflow={}",
                        w.name,
                        tool.name(),
                        bug.id,
                        r.stats.spawns,
                        r.stats.stops_of("crash"),
                        r.stats.stops_of("unsafe"),
                        r.stats.stops_of("max-length"),
                        r.stats.stops_of("sandbox-overflow"),
                    );
                } else {
                    assert!(
                        !detected,
                        "{} ({}): bug {} (line {line}) should ESCAPE ({:?}) but was detected",
                        w.name,
                        tool.name(),
                        bug.id,
                        bug.escape,
                    );
                }
            }
        }
    }
}

#[test]
fn detection_is_stable_across_inputs() {
    // The headline 21/38 must not hinge on one lucky input: check three
    // seeds on the assertion workloads.
    for w in buggy() {
        if !w.tools.contains(&Tool::Assertions) {
            continue;
        }
        let compiled = w.compile_for(Tool::Assertions).unwrap();
        for seed in [7u64, 8, 9] {
            let r = run_standard(
                &compiled.program,
                &MachConfig::single_core(),
                &w.px_config().with_max_instructions(BUDGET),
                io(&w, seed),
            );
            let dets = report(&compiled, &r.monitor, Tool::Assertions);
            let c = classify(&dets, &w.bug_lines_for(Tool::Assertions), false);
            let expected: usize = w
                .bugs_for(Tool::Assertions)
                .iter()
                .filter(|b| b.escape.expected_detected())
                .count();
            assert_eq!(
                c.true_positives(),
                expected,
                "{} seed {seed}: expected {expected} detections, got {:?}",
                w.name,
                c.true_positive_lines,
            );
        }
    }
}

#[test]
fn man_bug_needs_consistency_fixing() {
    // Table 5: man's bug is detected only after key-variable fixing.
    let w = px_workloads::by_name("man").unwrap();
    for tool in [Tool::Ccured, Tool::Iwatcher] {
        let compiled = w.compile_for(tool).unwrap();
        let bug_lines = w.bug_lines_for(tool);

        let unfixed = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config()
                .with_fixes(false)
                .with_max_instructions(BUDGET),
            io(&w, SEED),
        );
        let dets = report(&compiled, &unfixed.monitor, tool);
        let c = classify(&dets, &bug_lines, false);
        assert_eq!(
            c.true_positives(),
            0,
            "man ({}): without fixing the NT-path crashes before the bug",
            tool.name(),
        );

        let fixed = run_standard(
            &compiled.program,
            &MachConfig::single_core(),
            &w.px_config().with_max_instructions(BUDGET),
            io(&w, SEED),
        );
        let dets = report(&compiled, &fixed.monitor, tool);
        let c = classify(&dets, &bug_lines, false);
        assert_eq!(
            c.true_positives(),
            1,
            "man ({}): the blank-structure fix exposes the bug",
            tool.name(),
        );
    }
}

#[test]
fn bc_hot_entry_bug_appears_with_higher_threshold() {
    // §7.1(2): bc's second bug escapes because its entry edge saturates the
    // exercise counter; a higher threshold (the paper's suggested remedy
    // direction) exposes it.
    let w = px_workloads::by_name("bc").unwrap();
    let compiled = w.compile_for(Tool::Ccured).unwrap();
    let bug_line = w.marker_line("/*BUG:bc-2*/");

    let default_run = run_standard(
        &compiled.program,
        &MachConfig::single_core(),
        &w.px_config().with_max_instructions(BUDGET),
        io(&w, SEED),
    );
    let dets = report(&compiled, &default_run.monitor, Tool::Ccured);
    assert!(
        !dets.iter().any(|d| d.line == bug_line && d.on_nt_path),
        "bc-2 must escape at the default threshold",
    );

    let high = run_standard(
        &compiled.program,
        &MachConfig::single_core(),
        &w.px_config()
            .with_counter_threshold(15)
            .with_max_instructions(BUDGET),
        io(&w, SEED),
    );
    let dets = report(&compiled, &high.monitor, Tool::Ccured);
    assert!(
        dets.iter().any(|d| d.line == bug_line && d.on_nt_path),
        "bc-2 is found once the threshold admits more NT-paths",
    );
}

#[test]
fn false_positive_sites_behave() {
    // Table 5 mechanics, per memory-checked workload: unfixed runs report
    // more NT-only false positives than fixed runs, and fixed runs still
    // report the residual sites.
    for name in ["099.go", "bc", "man", "print_tokens2"] {
        let w = px_workloads::by_name(name).unwrap();
        let tool = Tool::Ccured;
        let compiled = w.compile_for(tool).unwrap();
        let bug_lines = w.bug_lines_for(tool);

        let mut fp = [0usize; 2];
        for (i, fixes) in [false, true].into_iter().enumerate() {
            let r = run_standard(
                &compiled.program,
                &MachConfig::single_core(),
                &w.px_config()
                    .with_fixes(fixes)
                    .with_max_instructions(BUDGET),
                io(&w, SEED),
            );
            let dets = report(&compiled, &r.monitor, tool);
            let c = classify(&dets, &bug_lines, true);
            fp[i] = c.false_positives();
        }
        assert!(
            fp[0] > fp[1],
            "{name}: fixing must prune false positives (before={}, after={})",
            fp[0],
            fp[1],
        );
        assert!(
            fp[1] > 0,
            "{name}: residual sites must survive fixing (after={})",
            fp[1],
        );
    }
}

#[test]
fn escaped_value_coverage_bugs_are_on_executed_paths() {
    // Sanity: the value-coverage escapes are genuinely executed (the code
    // runs) — they escape because the *values* are benign, unlike the
    // path-coverage bugs.
    let w = px_workloads::by_name("schedule").unwrap();
    let compiled = w.compile_for(Tool::Assertions).unwrap();
    let line = w.marker_line("/*BUG:sch-1*/");
    // The site exists in the compiled program (the check was emitted).
    assert!(compiled.sites.iter().any(|s| s.line == line));
}
