//! Property tests for the zoo synthesizer's determinism contract: a
//! `ZooSpec` is the *complete* description of a generated program, so equal
//! specs must yield byte-identical artifacts at every pipeline stage and
//! distinct structure seeds must yield genuinely different programs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pathexpander::run_standard;
use px_mach::{IoState, MachConfig};
use px_util::prop::{run_prop, PropConfig};
use px_util::px_prop;
use px_workloads::zoo::{self, BugMix, ZooShape, ZooSpec};

fn spec_of(shape_i: u32, seed: u64, size: u32, mix_i: u32) -> ZooSpec {
    let mut spec = ZooSpec::new(
        ZooShape::ALL[shape_i as usize % ZooShape::ALL.len()],
        1 + seed,
    );
    spec.size = 1 + size % 4;
    spec.mix = BugMix::ALL[mix_i as usize % BugMix::ALL.len()];
    spec
}

px_prop! {
    cases = 24;
    /// Same spec → byte-identical source, compiled code stream, and input.
    fn same_spec_is_byte_identical(
        shape_i in 0u32..4,
        seed in 0u64..1_000_000,
        size in 0u32..4,
        mix_i in 0u32..4,
    ) {
        let spec = spec_of(shape_i, seed, size, mix_i);
        let (a, b) = (zoo::generate(&spec), zoo::generate(&spec));
        assert_eq!(a.source, b.source, "{spec}: source must be deterministic");
        assert_eq!(a.bugs.len(), b.bugs.len(), "{spec}");
        let tool = a.tools[0];
        let (ca, cb) = (a.compile_for(tool).unwrap(), b.compile_for(tool).unwrap());
        assert_eq!(ca.program.code, cb.program.code, "{spec}: compiled stream");
        assert_eq!(
            zoo::input_bytes(&spec, 7),
            zoo::input_bytes(&spec, 7),
            "{spec}: input stream"
        );
        // The round trip through the spec grammar is lossless.
        assert_eq!(ZooSpec::parse(&spec.to_string()), Ok(spec.clone()), "{spec}");
    }
}

px_prop! {
    cases = 8;
    /// Distinct structure seeds → distinct programs with distinct dynamic
    /// behaviour (taken-path digests of a standard-engine run differ).
    fn distinct_seeds_are_distinct(
        shape_i in 0u32..4,
        seed in 0u64..10_000,
    ) {
        let a = spec_of(shape_i, seed, 1, 0);
        let b = spec_of(shape_i, seed + 1, 1, 0);
        let (wa, wb) = (zoo::generate(&a), zoo::generate(&b));
        assert_ne!(wa.source, wb.source, "{a} vs {b}: sources must differ");

        let run = |w: &px_workloads::Workload| {
            let compiled = w.compile_for(w.tools[0]).unwrap();
            let io = IoState::new(w.general_input(11), 11);
            run_standard(
                &compiled.program,
                &MachConfig::single_core(),
                &w.px_config(),
                io,
            )
            .taken_path_digest(&compiled.program)
        };
        assert_ne!(run(&wa), run(&wb), "{a} vs {b}: taken-path digests");
    }
}

/// The prop harness shrinks a failing zoo property back to the smallest
/// spec that still violates it, and says so in the failure report — that is
/// the knob that keeps generated-program counterexamples readable.
#[test]
fn failing_zoo_property_shrinks_to_minimal_spec() {
    let cfg = PropConfig {
        cases: 16,
        seed: 0xDEAD_BEEF,
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        run_prop(
            "zoo_loc_is_tiny",
            &cfg,
            &(0u32..4, 0u64..10_000),
            |(shape_i, seed)| {
                let w = zoo::generate(&spec_of(shape_i, seed, 1, 0));
                // Deliberately false: every generated family is larger than
                // 10 lines, so the harness must fail and shrink.
                assert!(w.loc() < 10, "loc={}", w.loc());
            },
        );
    }))
    .expect_err("the seeded property must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("minimal failing input (size 0): (0, 0)"),
        "shrinker must reach the minimal spec parameters: {msg}"
    );
    assert!(msg.contains("replay with PX_PROP_SEED="), "{msg}");
}
