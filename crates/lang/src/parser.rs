//! Recursive-descent parser for PXC.

use core::fmt;

use crate::ast::{
    BinOp, Expr, ExprKind, Field, FuncDef, GlobalDef, Param, Stmt, StmtKind, StructDef, Type, UnOp,
    Unit,
};
use crate::token::{lex, Token, TokenKind};

/// Parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::token::LexError> for ParseError {
    fn from(e: crate::token::LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a PXC translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Unit, ParseError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn err(&self, message: &str) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.to_owned(),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.tokens[self.pos.saturating_sub(1)].line,
                message: format!("expected identifier, found {other}"),
            }),
        }
    }

    // ---- top level ----

    fn unit(&mut self) -> Result<Unit, ParseError> {
        let mut unit = Unit::default();
        while *self.peek() != TokenKind::Eof {
            if *self.peek() == TokenKind::KwStruct && *self.peek2() != TokenKind::Star {
                // Could be `struct S { ... };` or `struct S name ...` — look
                // ahead for `{` after the name.
                if let TokenKind::Ident(_) = self.peek2() {
                    let brace = self
                        .tokens
                        .get(self.pos + 2)
                        .map(|t| t.kind == TokenKind::LBrace)
                        .unwrap_or(false);
                    if brace {
                        unit.structs.push(self.struct_def()?);
                        continue;
                    }
                }
            }
            // A type, then a name, then `(` (function) or not (global).
            let line = self.line();
            let ty = self.parse_type()?;
            let name = self.ident()?;
            if *self.peek() == TokenKind::LParen {
                unit.funcs.push(self.func_def(ty, name, line)?);
            } else {
                unit.globals.push(self.global_def(ty, name, line)?);
            }
        }
        Ok(unit)
    }

    fn struct_def(&mut self) -> Result<StructDef, ParseError> {
        let line = self.line();
        self.expect(&TokenKind::KwStruct)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let ty = self.parse_type()?;
            let fname = self.ident()?;
            let ty = self.maybe_array(ty)?;
            self.expect(&TokenKind::Semi)?;
            fields.push(Field { name: fname, ty });
        }
        self.expect(&TokenKind::Semi)?;
        Ok(StructDef { name, fields, line })
    }

    fn global_def(&mut self, ty: Type, name: String, line: u32) -> Result<GlobalDef, ParseError> {
        let ty = self.maybe_array(ty)?;
        let mut init = None;
        let mut array_init = Vec::new();
        if self.eat(&TokenKind::Assign) {
            if self.eat(&TokenKind::LBrace) {
                loop {
                    array_init.push(self.const_int()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBrace)?;
            } else {
                init = Some(self.const_int()?);
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(GlobalDef {
            name,
            ty,
            init,
            array_init,
            line,
        })
    }

    fn const_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat(&TokenKind::Minus);
        match self.bump() {
            TokenKind::Int(v) => Ok(if neg { -v } else { v }),
            TokenKind::CharLit(c) => Ok(i64::from(c)),
            other => Err(self.err(&format!("expected constant, found {other}"))),
        }
    }

    fn func_def(&mut self, ret: Type, name: String, line: u32) -> Result<FuncDef, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                if self.eat(&TokenKind::KwVoid) && *self.peek() == TokenKind::RParen {
                    break;
                }
                let ty = self.parse_type()?;
                let pname = self.ident()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(FuncDef {
            name,
            ret,
            params,
            body,
            line,
        })
    }

    // ---- types ----

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut ty = match self.bump() {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwChar => Type::Char,
            TokenKind::KwVoid => Type::Void,
            TokenKind::KwStruct => Type::Struct(self.ident()?),
            other => {
                return Err(ParseError {
                    line: self.tokens[self.pos.saturating_sub(1)].line,
                    message: format!("expected type, found {other}"),
                })
            }
        };
        while self.eat(&TokenKind::Star) {
            ty = ty.ptr();
        }
        Ok(ty)
    }

    fn maybe_array(&mut self, ty: Type) -> Result<Type, ParseError> {
        if self.eat(&TokenKind::LBracket) {
            let n = self.const_int()?;
            if n <= 0 || n > i64::from(u32::MAX) {
                return Err(self.err("array size out of range"));
            }
            self.expect(&TokenKind::RBracket)?;
            Ok(Type::Array(Box::new(ty), n as u32))
        } else {
            Ok(ty)
        }
    }

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwChar | TokenKind::KwStruct | TokenKind::KwVoid
        )
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let kind = match self.peek() {
            TokenKind::LBrace => StmtKind::Block(self.block()?),
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_body = self.stmt_or_block()?;
                let else_body = if self.eat(&TokenKind::KwElse) {
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                }
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.stmt_or_block()?;
                StmtKind::While { cond, body }
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if self.eat(&TokenKind::Semi) {
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(&TokenKind::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                let step = if *self.peek() == TokenKind::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&TokenKind::RParen)?;
                let body = self.stmt_or_block()?;
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                StmtKind::Return(value)
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Break
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Continue
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semi)?;
                return Ok(Stmt { kind: s.kind, line });
            }
        };
        Ok(Stmt { kind, line })
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if *self.peek() == TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// A declaration, assignment or expression statement — without the
    /// trailing semicolon (shared with `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        if self.starts_type() {
            let ty = self.parse_type()?;
            let name = self.ident()?;
            let ty = self.maybe_array(ty)?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt {
                kind: StmtKind::Decl { name, ty, init },
                line,
            });
        }
        let e = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let value = self.expr()?;
            return Ok(Stmt {
                kind: StmtKind::Assign { target: e, value },
                line,
            });
        }
        Ok(Stmt {
            kind: StmtKind::Expr(e),
            line,
        })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.logic_or()
    }

    fn bin_level<F>(
        &mut self,
        next: fn(&mut Parser) -> Result<Expr, ParseError>,
        mut op_of: F,
    ) -> Result<Expr, ParseError>
    where
        F: FnMut(&TokenKind) -> Option<BinOp>,
    {
        let mut lhs = next(self)?;
        while let Some(op) = op_of(self.peek()) {
            let line = self.line();
            self.bump();
            let rhs = next(self)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::logic_and, |t| {
            (*t == TokenKind::OrOr).then_some(BinOp::LogOr)
        })
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::bit_or, |t| {
            (*t == TokenKind::AndAnd).then_some(BinOp::LogAnd)
        })
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::bit_xor, |t| {
            (*t == TokenKind::Pipe).then_some(BinOp::BitOr)
        })
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::bit_and, |t| {
            (*t == TokenKind::Caret).then_some(BinOp::BitXor)
        })
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::equality, |t| {
            (*t == TokenKind::Amp).then_some(BinOp::BitAnd)
        })
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::relational, |t| match t {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            _ => None,
        })
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::shift, |t| match t {
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        })
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::additive, |t| match t {
            TokenKind::Shl => Some(BinOp::Shl),
            TokenKind::Shr => Some(BinOp::Shr),
            _ => None,
        })
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::multiplicative, |t| match t {
            TokenKind::Plus => Some(BinOp::Add),
            TokenKind::Minus => Some(BinOp::Sub),
            _ => None,
        })
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.bin_level(Parser::unary, |t| match t {
            TokenKind::Star => Some(BinOp::Mul),
            TokenKind::Slash => Some(BinOp::Div),
            TokenKind::Percent => Some(BinOp::Rem),
            _ => None,
        })
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Amp => Some(UnOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(op, Box::new(inner)),
                line,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    line,
                };
            } else if self.eat(&TokenKind::Dot) {
                let f = self.ident()?;
                e = Expr {
                    kind: ExprKind::Member(Box::new(e), f),
                    line,
                };
            } else if self.eat(&TokenKind::Arrow) {
                let f = self.ident()?;
                e = Expr {
                    kind: ExprKind::Arrow(Box::new(e), f),
                    line,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr {
                kind: ExprKind::Int(v),
                line,
            }),
            TokenKind::CharLit(c) => Ok(Expr {
                kind: ExprKind::Int(i64::from(c)),
                line,
            }),
            TokenKind::Str(s) => Ok(Expr {
                kind: ExprKind::Str(s),
                line,
            }),
            TokenKind::KwSizeof => {
                self.expect(&TokenKind::LParen)?;
                let ty = self.parse_type()?;
                let ty = self.maybe_array(ty)?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr {
                    kind: ExprKind::SizeOf(ty),
                    line,
                })
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        line,
                    })
                }
            }
            other => Err(ParseError {
                line,
                message: format!("expected expression, found {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_structs_globals_functions() {
        let unit = parse(
            r"
            struct Node { int val; struct Node* next; };
            int g = 5;
            int table[4] = {1, 2, 3, 4};
            char buf[16];
            int add(int a, int b) { return a + b; }
            ",
        )
        .unwrap();
        assert_eq!(unit.structs.len(), 1);
        assert_eq!(
            unit.structs[0].fields[1].ty,
            Type::Struct("Node".into()).ptr()
        );
        assert_eq!(unit.globals.len(), 3);
        assert_eq!(unit.globals[0].init, Some(5));
        assert_eq!(unit.globals[1].array_init, vec![1, 2, 3, 4]);
        assert_eq!(unit.funcs.len(), 1);
        assert_eq!(unit.funcs[0].params.len(), 2);
    }

    #[test]
    fn precedence_is_c_like() {
        let unit = parse("int f() { return 1 + 2 * 3 < 4 && 5 == 6; }").unwrap();
        let StmtKind::Return(Some(e)) = &unit.funcs[0].body[0].kind else {
            panic!("expected return");
        };
        // Top must be &&.
        let ExprKind::Bin(BinOp::LogAnd, lhs, rhs) = &e.kind else {
            panic!("expected &&, got {e:?}");
        };
        assert!(matches!(lhs.kind, ExprKind::Bin(BinOp::Lt, _, _)));
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Eq, _, _)));
    }

    #[test]
    fn statements_parse() {
        let unit = parse(
            r#"
            int main() {
                int i;
                int a[3];
                for (i = 0; i < 3; i = i + 1) {
                    a[i] = i * 2;
                }
                while (i > 0) { i = i - 1; if (i == 1) break; else continue; }
                if (a[0] == 0) putchar('y');
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(unit.funcs[0].body.len(), 6);
    }

    #[test]
    fn pointer_and_member_expressions() {
        let unit = parse(
            r"
            struct P { int x; int y; };
            int f(struct P* p, int* q) {
                p->x = (*q) + p->y;
                return -p->x + !q[2] + sizeof(struct P);
            }
            ",
        )
        .unwrap();
        let f = &unit.funcs[0];
        assert!(matches!(f.body[0].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn error_locations() {
        let e = parse("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("int f( { }").unwrap_err();
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn dangling_else_binds_inner() {
        let unit =
            parse("int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }")
                .unwrap();
        let StmtKind::If {
            else_body,
            then_body,
            ..
        } = &unit.funcs[0].body[0].kind
        else {
            panic!()
        };
        assert!(else_body.is_empty(), "else belongs to the inner if");
        let StmtKind::If {
            else_body: inner_else,
            ..
        } = &then_body[0].kind
        else {
            panic!()
        };
        assert_eq!(inner_else.len(), 1);
    }
}
