//! Code generation: AST → PXVM-32, including the three instrumentation
//! passes the paper requires from the compiler:
//!
//! * **variable fixing** (§4.4) — predicated fix instructions at the head of
//!   both edges of every conditional branch, pinning simple condition
//!   variables to boundary values (or to the per-type *blank data structure*
//!   for pointer conditions);
//! * **CCured-style checking** — bounds checks on known-size array accesses
//!   and null checks on pointer dereferences, emitted as `check` probes
//!   inside tagged checker regions;
//! * **iWatcher-style monitoring** — red zones after every array plus
//!   `watch` registrations so overruns trip hardware watchpoints.

use std::collections::HashMap;

use px_isa::{
    AluOp, BranchCond, CheckKind, Instruction, Program, ProgramBuilder, Reg, SyscallCode, Width,
    DATA_BASE,
};

use crate::ast::{BinOp, Expr, ExprKind, FuncDef, Stmt, StmtKind, Type, UnOp, Unit};
use crate::types::{align_up, cerr, CompileError, TypeTable};

/// How fix values are chosen for inequality conditions (ablation D4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixStrategy {
    /// Fix to exactly the boundary value (the paper's choice).
    Boundary,
    /// Fix to a random value satisfying the condition (seeded, compile-time).
    RandomSatisfying {
        /// Deterministic seed.
        seed: u64,
    },
}

/// Compilation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Insert the §4.4 predicated variable-fixing instructions.
    pub insert_fixes: bool,
    /// Fix-value selection strategy.
    pub fix_strategy: FixStrategy,
    /// Insert CCured-style bounds / null checks.
    pub ccured: bool,
    /// Insert iWatcher-style red zones and watch registrations.
    pub iwatcher: bool,
    /// Red-zone size after each array when `iwatcher` is on.
    pub redzone_bytes: u32,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            insert_fixes: true,
            fix_strategy: FixStrategy::Boundary,
            ccured: false,
            iwatcher: false,
            redzone_bytes: 16,
        }
    }
}

impl CompileOptions {
    /// Options for a CCured-monitored build.
    #[must_use]
    pub fn ccured() -> CompileOptions {
        CompileOptions {
            ccured: true,
            ..CompileOptions::default()
        }
    }

    /// Options for an iWatcher-monitored build.
    #[must_use]
    pub fn iwatcher() -> CompileOptions {
        CompileOptions {
            iwatcher: true,
            ..CompileOptions::default()
        }
    }

    /// Options for an assertions-only build.
    #[must_use]
    pub fn assertions() -> CompileOptions {
        CompileOptions::default()
    }
}

/// A `check` site emitted by the compiler, for mapping reports back to
/// source constructs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteInfo {
    /// Site identifier carried by the `check` instruction.
    pub id: u32,
    /// Checker kind.
    pub kind: CheckKind,
    /// 1-based source line.
    pub line: u32,
    /// Enclosing function.
    pub func: String,
}

/// A watch tag registered by the iWatcher pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchInfo {
    /// Tag carried by watch hits.
    pub tag: u32,
    /// The guarded array's name.
    pub array: String,
    /// Declaration line.
    pub line: u32,
    /// Enclosing function (`None` for globals).
    pub func: Option<String>,
}

/// A compiled PXC program plus instrumentation metadata.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The runnable program.
    pub program: Program,
    /// All `check` sites (assertions, CCured checks).
    pub sites: Vec<SiteInfo>,
    /// All iWatcher watch registrations.
    pub watches: Vec<WatchInfo>,
    /// Refittable §4.4 fix instructions (see [`crate::refit_fixes`]).
    pub fix_sites: Vec<FixSite>,
}

impl CompiledProgram {
    /// Finds the site id of the check at a source line (first match).
    #[must_use]
    pub fn site_at_line(&self, line: u32) -> Option<u32> {
        self.sites.iter().find(|s| s.line == line).map(|s| s.id)
    }

    /// Finds the watch tag guarding a named array (first match).
    #[must_use]
    pub fn watch_tag_for(&self, array: &str) -> Option<u32> {
        self.watches
            .iter()
            .find(|w| w.array == array)
            .map(|w| w.tag)
    }
}

/// Compiles a parsed unit.
///
/// # Errors
///
/// Returns the first type or codegen error.
pub fn compile_unit(unit: &Unit, opts: &CompileOptions) -> Result<CompiledProgram, CompileError> {
    Cg::new(unit, opts)?.run()
}

// ---------------------------------------------------------------------------

const TEMP_BASE: u8 = 8;
const TEMP_COUNT: u8 = 20;
/// Scratch register reserved for fix values and the epilogue.
const SCRATCH: Reg = Reg::new(4);
/// Second scratch register (watch-registration lengths).
const SCRATCH2: Reg = Reg::new(5);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Label(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Base {
    /// fp-relative (locals, parameters).
    Fp,
    /// Absolute address (globals); offset holds the address.
    Abs,
}

#[derive(Debug, Clone)]
enum Place {
    Mem { base: Base, offset: i32, ty: Type },
    Indirect { addr: Reg, ty: Type },
}

impl Place {
    fn ty(&self) -> &Type {
        match self {
            Place::Mem { ty, .. } | Place::Indirect { ty, .. } => ty,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum FixValue {
    Const(i32),
    /// `other_reg + delta` (for variable-vs-variable comparisons).
    Rel {
        other: Reg,
        delta: i32,
    },
}

/// Which branch operand a fix site pins (for value-profile refitting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSide {
    /// The branch instruction's first operand.
    Lhs,
    /// The branch instruction's second operand.
    Rhs,
}

/// Metadata for one refittable fix instruction: an integer condition
/// variable pinned against a literal. Profile-guided refitting
/// ([`crate::refit_fixes`]) may replace the boundary value with one inside
/// the variable's observed range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixSite {
    /// Instruction index of the `PMovI` fix.
    pub fix_pc: u32,
    /// Instruction index of the branch the fix belongs to.
    pub branch_pc: u32,
    /// Which branch operand holds the fixed variable.
    pub side: OperandSide,
    /// The comparison, as seen from the fixed variable's side.
    pub op: BinOp,
    /// The semantic outcome this edge corresponds to.
    pub want: bool,
    /// Whether this fix sits on the branch instruction's *taken* edge (the
    /// profile conditions observations on the dynamic outcome).
    pub taken_when: bool,
    /// The literal the variable is compared against.
    pub literal: i32,
}

#[derive(Debug, Clone, Copy)]
struct RefitMeta {
    side: OperandSide,
    op: BinOp,
    want: bool,
    literal: i32,
}

#[derive(Debug, Clone)]
struct FixAction {
    value: FixValue,
    home_base: Base,
    home_offset: i32,
    width: Width,
    refit: Option<RefitMeta>,
}

struct FnState {
    name: String,
    ret: Type,
    scopes: Vec<HashMap<String, (i32, Type)>>,
    next_local: i32,
    frame_patch: u32,
    epilogue: Label,
    breaks: Vec<Label>,
    continues: Vec<Label>,
    local_watch_tags: Vec<u32>,
}

struct Cg<'a> {
    unit: &'a Unit,
    types: TypeTable,
    opts: &'a CompileOptions,
    b: ProgramBuilder,
    label_pcs: Vec<Option<u32>>,
    fixups: Vec<(u32, Label)>,
    data: Vec<u8>,
    globals: HashMap<String, (u32, Type)>,
    func_labels: HashMap<String, (Label, Type, Vec<Type>)>,
    blanks: HashMap<String, u32>,
    blank_area: (u32, u32),
    heap_ptr_addr: u32,
    sites: Vec<SiteInfo>,
    watches: Vec<WatchInfo>,
    fix_sites: Vec<FixSite>,
    global_watches: Vec<(u32, u32, u32)>, // (addr, len, tag)
    temp_depth: u8,
    rng: u64,
    f: Option<FnState>,
    cur_line: u32,
}

impl<'a> Cg<'a> {
    fn new(unit: &'a Unit, opts: &'a CompileOptions) -> Result<Cg<'a>, CompileError> {
        let types = TypeTable::build(&unit.structs)?;
        let rng = match opts.fix_strategy {
            FixStrategy::Boundary => 0x243F_6A88_85A3_08D3,
            FixStrategy::RandomSatisfying { seed } => seed | 1,
        };
        Ok(Cg {
            unit,
            types,
            opts,
            b: ProgramBuilder::new(),
            label_pcs: Vec::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            globals: HashMap::new(),
            func_labels: HashMap::new(),
            blanks: HashMap::new(),
            blank_area: (0, 0),
            heap_ptr_addr: 0,
            sites: Vec::new(),
            watches: Vec::new(),
            fix_sites: Vec::new(),
            global_watches: Vec::new(),
            temp_depth: 0,
            rng,
            f: None,
            cur_line: 0,
        })
    }

    // ---- small emission helpers ----

    fn emit(&mut self, insn: Instruction) -> u32 {
        self.b.push(insn, self.cur_line)
    }

    fn li(&mut self, rd: Reg, imm: i32) {
        self.emit(Instruction::AluI {
            op: AluOp::Add,
            rd,
            rs1: Reg::ZERO,
            imm,
        });
    }

    fn mv(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instruction::AluI {
            op: AluOp::Add,
            rd,
            rs1: rs,
            imm: 0,
        });
    }

    fn new_label(&mut self) -> Label {
        self.label_pcs.push(None);
        Label(self.label_pcs.len() - 1)
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.label_pcs[l.0].is_none(), "label bound twice");
        self.label_pcs[l.0] = Some(self.b.next_pc());
    }

    fn emit_jump(&mut self, l: Label) {
        let pc = self.emit(Instruction::Jump { target: 0 });
        self.fixups.push((pc, l));
    }

    fn emit_branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, l: Label) {
        let pc = self.emit(Instruction::Branch {
            cond,
            rs1,
            rs2,
            target: 0,
        });
        self.fixups.push((pc, l));
    }

    fn emit_call(&mut self, l: Label) {
        let pc = self.emit(Instruction::Call { target: 0 });
        self.fixups.push((pc, l));
    }

    fn alloc_temp(&mut self) -> Result<Reg, CompileError> {
        if self.temp_depth >= TEMP_COUNT {
            return cerr(
                self.cur_line,
                "expression too complex (temporary registers exhausted)",
            );
        }
        let r = Reg::new(TEMP_BASE + self.temp_depth);
        self.temp_depth += 1;
        Ok(r)
    }

    fn free_temp(&mut self, r: Reg) {
        debug_assert_eq!(
            r.index(),
            usize::from(TEMP_BASE + self.temp_depth - 1),
            "temporaries must be freed LIFO"
        );
        self.temp_depth -= 1;
    }

    fn live_temps(&self) -> Vec<Reg> {
        (0..self.temp_depth)
            .map(|i| Reg::new(TEMP_BASE + i))
            .collect()
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn new_site(&mut self, kind: CheckKind, line: u32) -> u32 {
        let id = self.sites.len() as u32 + 1;
        let func = self.f.as_ref().map_or_else(String::new, |f| f.name.clone());
        self.sites.push(SiteInfo {
            id,
            kind,
            line,
            func,
        });
        id
    }

    // ---- data layout ----

    fn data_addr(&self) -> u32 {
        DATA_BASE + self.data.len() as u32
    }

    fn push_data(&mut self, bytes: &[u8]) -> u32 {
        let addr = self.data_addr();
        self.data.extend_from_slice(bytes);
        addr
    }

    fn align_data(&mut self, align: u32) {
        while !(self.data.len() as u32).is_multiple_of(align) {
            self.data.push(0);
        }
    }

    fn layout_globals(&mut self) -> Result<(), CompileError> {
        // Heap pointer word first (patched after full layout).
        self.align_data(4);
        self.heap_ptr_addr = self.push_data(&[0; 4]);
        self.globals
            .insert("__heap".to_owned(), (self.heap_ptr_addr, Type::Int));

        for g in &self.unit.globals {
            let size = self.types.size_of(&g.ty).map_err(|m| CompileError {
                line: g.line,
                message: format!("global `{}`: {m}", g.name),
            })?;
            self.align_data(self.types.align_of(&g.ty).max(4));
            let addr = self.data_addr();
            let mut bytes = vec![0u8; size as usize];
            if let Some(v) = g.init {
                match g.ty {
                    Type::Char => bytes[0] = v as u8,
                    _ => bytes[0..4].copy_from_slice(&(v as i32).to_le_bytes()),
                }
            }
            if !g.array_init.is_empty() {
                let Type::Array(ref elem, n) = g.ty else {
                    return cerr(g.line, "array initializer on a non-array global");
                };
                if g.array_init.len() as u32 > n {
                    return cerr(g.line, "too many array initializers");
                }
                let esz = self.types.size_of(elem).expect("sized") as usize;
                for (i, &v) in g.array_init.iter().enumerate() {
                    match esz {
                        1 => bytes[i] = v as u8,
                        _ => bytes[i * 4..i * 4 + 4].copy_from_slice(&(v as i32).to_le_bytes()),
                    }
                }
            }
            if self.globals.contains_key(&g.name) {
                return cerr(g.line, format!("duplicate global `{}`", g.name));
            }
            self.push_data(&bytes);
            self.globals.insert(g.name.clone(), (addr, g.ty.clone()));
            self.b.define_global(&g.name, addr, size);

            // iWatcher: red zone after every global array.
            if self.opts.iwatcher && matches!(g.ty, Type::Array(..)) {
                let zone = vec![0u8; self.opts.redzone_bytes as usize];
                let zone_addr = self.push_data(&zone);
                let tag = self.watches.len() as u32 + 1;
                self.watches.push(WatchInfo {
                    tag,
                    array: g.name.clone(),
                    line: g.line,
                    func: None,
                });
                self.global_watches
                    .push((zone_addr, self.opts.redzone_bytes, tag));
            }
        }

        // Blank data structures for pointer fixing (paper §4.4).
        self.align_data(4);
        let blank_start = self.data_addr();
        for name in self.types.struct_names() {
            let size = self.types.layout(&name).expect("listed").size;
            let addr = self.push_data(&vec![0u8; size.max(4) as usize]);
            self.blanks.insert(name.clone(), addr);
            self.align_data(4);
        }
        let int_blank = self.push_data(&[0u8; 64]);
        self.blanks.insert("__int".to_owned(), int_blank);
        let char_blank = self.push_data(&[0u8; 64]);
        self.blanks.insert("__char".to_owned(), char_blank);
        self.blank_area = (blank_start, self.data_addr());
        Ok(())
    }

    fn blank_addr_for(&self, pointee: &Type) -> u32 {
        match pointee {
            Type::Struct(name) => self.blanks.get(name).copied().unwrap_or(self.blank_area.0),
            Type::Char => self.blanks["__char"],
            _ => self.blanks["__int"],
        }
    }

    // ---- top-level driver ----

    fn run(mut self) -> Result<CompiledProgram, CompileError> {
        self.layout_globals()?;

        // Pre-declare function labels.
        for f in &self.unit.funcs {
            if self.func_labels.contains_key(&f.name) {
                return cerr(f.line, format!("duplicate function `{}`", f.name));
            }
            let label = self.new_label();
            let params = f.params.iter().map(|p| p.ty.clone()).collect();
            self.func_labels
                .insert(f.name.clone(), (label, f.ret.clone(), params));
        }
        if !self.func_labels.contains_key("main") {
            return cerr(0, "no `main` function");
        }

        // __start: register global watches, call main, exit with its result.
        let start_pc = self.b.next_pc();
        let global_watches = std::mem::take(&mut self.global_watches);
        for (addr, len, tag) in global_watches {
            self.li(SCRATCH, addr as i32);
            self.li(SCRATCH2, len as i32);
            self.emit(Instruction::SetWatch {
                base: SCRATCH,
                len: SCRATCH2,
                tag,
            });
        }
        let main_label = self.func_labels["main"].0;
        self.emit_call(main_label);
        self.mv(Reg::A0, Reg::RV);
        self.emit(Instruction::Syscall {
            code: SyscallCode::Exit,
        });

        for f in &self.unit.funcs {
            self.gen_function(f)?;
        }

        // Resolve labels.
        for (pc, label) in std::mem::take(&mut self.fixups) {
            let Some(target) = self.label_pcs[label.0] else {
                return cerr(0, "internal error: unbound label");
            };
            let insn = match self.b.at(pc) {
                Instruction::Jump { .. } => Instruction::Jump { target },
                Instruction::Call { .. } => Instruction::Call { target },
                Instruction::Branch { cond, rs1, rs2, .. } => Instruction::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                },
                other => other,
            };
            self.b.patch(pc, insn);
        }

        // Heap base = end of data, 4-aligned.
        self.align_data(4);
        let heap_base = self.data_addr();
        let off = (self.heap_ptr_addr - DATA_BASE) as usize;
        self.data[off..off + 4].copy_from_slice(&(heap_base as i32).to_le_bytes());

        let data = std::mem::take(&mut self.data);
        self.b.add_data(DATA_BASE, data);
        self.b.set_heap_base(heap_base);
        self.b.set_entry(start_pc);
        self.b.set_blank_area(self.blank_area.0, self.blank_area.1);
        self.b.define_function("__start", start_pc);

        let program = self.b.finish();
        Ok(CompiledProgram {
            program,
            sites: self.sites,
            watches: self.watches,
            fix_sites: self.fix_sites,
        })
    }

    // ---- functions ----

    fn gen_function(&mut self, f: &FuncDef) -> Result<(), CompileError> {
        self.cur_line = f.line;
        let (label, ret, _) = self.func_labels[&f.name].clone();
        self.bind(label);
        self.b.define_function(&f.name, self.b.next_pc());

        // Prologue.
        self.emit(Instruction::AluI {
            op: AluOp::Sub,
            rd: Reg::SP,
            rs1: Reg::SP,
            imm: 8,
        });
        self.emit(Instruction::Store {
            width: Width::Word,
            rs: Reg::RA,
            base: Reg::SP,
            offset: 4,
        });
        self.emit(Instruction::Store {
            width: Width::Word,
            rs: Reg::FP,
            base: Reg::SP,
            offset: 0,
        });
        self.emit(Instruction::AluI {
            op: AluOp::Add,
            rd: Reg::FP,
            rs1: Reg::SP,
            imm: 8,
        });
        let frame_patch = self.emit(Instruction::AluI {
            op: AluOp::Sub,
            rd: Reg::SP,
            rs1: Reg::SP,
            imm: 0,
        });

        let epilogue = self.new_label();
        let mut scope = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            if !p.ty.is_scalar() {
                return cerr(f.line, format!("parameter `{}` must be scalar", p.name));
            }
            scope.insert(p.name.clone(), (i as i32 * 4, p.ty.clone()));
        }
        self.f = Some(FnState {
            name: f.name.clone(),
            ret,
            scopes: vec![scope],
            next_local: -8,
            frame_patch,
            epilogue,
            breaks: Vec::new(),
            continues: Vec::new(),
            local_watch_tags: Vec::new(),
        });

        self.gen_block(&f.body)?;

        // Epilogue: default return value 0, clear local watches, unwind.
        self.li(Reg::RV, 0);
        self.bind(epilogue);
        let state = self.f.as_ref().expect("in function");
        let tags = state.local_watch_tags.clone();
        for tag in tags {
            self.emit(Instruction::ClearWatch { tag });
        }
        self.emit(Instruction::Load {
            width: Width::Word,
            rd: Reg::RA,
            base: Reg::FP,
            offset: -4,
        });
        self.mv(SCRATCH, Reg::FP);
        self.emit(Instruction::Load {
            width: Width::Word,
            rd: Reg::FP,
            base: Reg::FP,
            offset: -8,
        });
        self.mv(Reg::SP, SCRATCH);
        self.emit(Instruction::Ret);

        // Patch the frame-allocation instruction with the final local size.
        let state = self.f.take().expect("in function");
        let locals_bytes = align_up((-(state.next_local + 8)).max(0) as u32, 4);
        self.b.patch(
            state.frame_patch,
            Instruction::AluI {
                op: AluOp::Sub,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: locals_bytes as i32,
            },
        );
        debug_assert_eq!(self.temp_depth, 0, "temps leaked in `{}`", f.name);
        Ok(())
    }

    fn fstate(&mut self) -> &mut FnState {
        self.f.as_mut().expect("inside a function")
    }

    fn lookup_var(&self, name: &str) -> Option<Place> {
        if let Some(f) = &self.f {
            for scope in f.scopes.iter().rev() {
                if let Some((offset, ty)) = scope.get(name) {
                    return Some(Place::Mem {
                        base: Base::Fp,
                        offset: *offset,
                        ty: ty.clone(),
                    });
                }
            }
        }
        self.globals.get(name).map(|(addr, ty)| Place::Mem {
            base: Base::Abs,
            offset: *addr as i32,
            ty: ty.clone(),
        })
    }

    // ---- statements ----

    fn gen_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.fstate().scopes.push(HashMap::new());
        for s in stmts {
            self.gen_stmt(s)?;
        }
        self.fstate().scopes.pop();
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        self.cur_line = s.line;
        match &s.kind {
            StmtKind::Block(body) => self.gen_block(body)?,
            StmtKind::Decl { name, ty, init } => {
                let size = self.types.size_of(ty).map_err(|m| CompileError {
                    line: s.line,
                    message: format!("local `{name}`: {m}"),
                })?;
                let is_array = matches!(ty, Type::Array(..));
                let mut alloc_size = align_up(size, 4);
                if is_array && self.opts.iwatcher {
                    alloc_size += align_up(self.opts.redzone_bytes, 4);
                }
                let f = self.fstate();
                f.next_local -= alloc_size as i32;
                let offset = f.next_local;
                let scope = f.scopes.last_mut().expect("scope");
                if scope.insert(name.clone(), (offset, ty.clone())).is_some() {
                    return cerr(s.line, format!("duplicate local `{name}`"));
                }

                if is_array && self.opts.iwatcher {
                    let tag = self.watches.len() as u32 + 1;
                    let func = self.fstate().name.clone();
                    self.watches.push(WatchInfo {
                        tag,
                        array: name.clone(),
                        line: s.line,
                        func: Some(func),
                    });
                    self.fstate().local_watch_tags.push(tag);
                    let zone_off = offset + size as i32;
                    self.emit(Instruction::AluI {
                        op: AluOp::Add,
                        rd: SCRATCH,
                        rs1: Reg::FP,
                        imm: zone_off,
                    });
                    self.li(SCRATCH2, self.opts.redzone_bytes as i32);
                    self.emit(Instruction::SetWatch {
                        base: SCRATCH,
                        len: SCRATCH2,
                        tag,
                    });
                }

                if let Some(e) = init {
                    if is_array {
                        return cerr(s.line, "array locals cannot have initializers");
                    }
                    let (r, _vt) = self.gen_expr(e)?;
                    let width = if *ty == Type::Char {
                        Width::Byte
                    } else {
                        Width::Word
                    };
                    self.emit(Instruction::Store {
                        width,
                        rs: r,
                        base: Reg::FP,
                        offset,
                    });
                    self.free_temp(r);
                }
            }
            StmtKind::Assign { target, value } => {
                let (vr, _vt) = self.gen_expr(value)?;
                let place = self.gen_lvalue(target)?;
                self.store_place(&place, vr, s.line)?;
                if let Place::Indirect { addr, .. } = place {
                    self.free_temp(addr);
                }
                self.free_temp(vr);
            }
            StmtKind::Expr(e) => {
                if let ExprKind::Call(name, args) = &e.kind {
                    if let Some(r) = self.gen_call(name, args, e.line, true)? {
                        self.free_temp(r);
                    }
                } else {
                    let (r, _) = self.gen_expr(e)?;
                    self.free_temp(r);
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let l_then = self.new_label();
                let l_end = self.new_label();
                if else_body.is_empty() {
                    self.branch_true(cond, l_then)?;
                    self.emit_jump(l_end);
                    self.bind(l_then);
                    self.gen_block(then_body)?;
                } else {
                    self.branch_true(cond, l_then)?;
                    self.gen_block(else_body)?;
                    self.emit_jump(l_end);
                    self.bind(l_then);
                    self.gen_block(then_body)?;
                }
                self.bind(l_end);
            }
            StmtKind::While { cond, body } => {
                let l_cond = self.new_label();
                let l_body = self.new_label();
                let l_end = self.new_label();
                self.bind(l_cond);
                self.branch_true(cond, l_body)?;
                self.emit_jump(l_end);
                self.bind(l_body);
                self.fstate().breaks.push(l_end);
                self.fstate().continues.push(l_cond);
                self.gen_block(body)?;
                self.fstate().breaks.pop();
                self.fstate().continues.pop();
                self.emit_jump(l_cond);
                self.bind(l_end);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let l_cond = self.new_label();
                let l_body = self.new_label();
                let l_step = self.new_label();
                let l_end = self.new_label();
                self.bind(l_cond);
                match cond {
                    Some(c) => {
                        self.branch_true(c, l_body)?;
                        self.emit_jump(l_end);
                    }
                    None => self.emit_jump(l_body),
                }
                self.bind(l_body);
                self.fstate().breaks.push(l_end);
                self.fstate().continues.push(l_step);
                self.gen_block(body)?;
                self.fstate().breaks.pop();
                self.fstate().continues.pop();
                self.bind(l_step);
                if let Some(step) = step {
                    self.gen_stmt(step)?;
                }
                self.emit_jump(l_cond);
                self.bind(l_end);
            }
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    let (r, _) = self.gen_expr(e)?;
                    self.mv(Reg::RV, r);
                    self.free_temp(r);
                } else if self.fstate().ret != Type::Void {
                    self.li(Reg::RV, 0);
                }
                let ep = self.fstate().epilogue;
                self.emit_jump(ep);
            }
            StmtKind::Break => {
                let Some(&l) = self.fstate().breaks.last() else {
                    return cerr(s.line, "`break` outside a loop");
                };
                self.emit_jump(l);
            }
            StmtKind::Continue => {
                let Some(&l) = self.fstate().continues.last() else {
                    return cerr(s.line, "`continue` outside a loop");
                };
                self.emit_jump(l);
            }
        }
        Ok(())
    }

    // ---- conditions with fix insertion ----

    fn branch_true(&mut self, e: &Expr, l_true: Label) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Bin(BinOp::LogAnd, a, b) => {
                let skip = self.new_label();
                self.branch_false(a, skip)?;
                self.branch_true(b, l_true)?;
                self.bind(skip);
                Ok(())
            }
            ExprKind::Bin(BinOp::LogOr, a, b) => {
                self.branch_true(a, l_true)?;
                self.branch_true(b, l_true)
            }
            ExprKind::Bin(op, a, b) if op.is_comparison() => {
                self.primitive_branch(*op, a, b, true, l_true, e.line)
            }
            ExprKind::Un(UnOp::Not, x) => self.branch_false(x, l_true),
            _ => {
                // Truthiness: e != 0.
                let zero = Expr {
                    kind: ExprKind::Int(0),
                    line: e.line,
                };
                self.primitive_branch(BinOp::Ne, e, &zero, true, l_true, e.line)
            }
        }
    }

    fn branch_false(&mut self, e: &Expr, l_false: Label) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Bin(BinOp::LogAnd, a, b) => {
                self.branch_false(a, l_false)?;
                self.branch_false(b, l_false)
            }
            ExprKind::Bin(BinOp::LogOr, a, b) => {
                let skip = self.new_label();
                self.branch_true(a, skip)?;
                self.branch_false(b, l_false)?;
                self.bind(skip);
                Ok(())
            }
            ExprKind::Bin(op, a, b) if op.is_comparison() => {
                self.primitive_branch(*op, a, b, false, l_false, e.line)
            }
            ExprKind::Un(UnOp::Not, x) => self.branch_true(x, l_false),
            _ => {
                let zero = Expr {
                    kind: ExprKind::Int(0),
                    line: e.line,
                };
                self.primitive_branch(BinOp::Ne, e, &zero, false, l_false, e.line)
            }
        }
    }

    /// Emits one conditional branch for `lhs OP rhs`; jumps to `target` when
    /// the comparison equals `jump_if`, and plants predicated fix
    /// instructions at the head of both edges.
    fn primitive_branch(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        jump_if: bool,
        target: Label,
        line: u32,
    ) -> Result<(), CompileError> {
        let (ra, ta) = self.gen_expr(lhs)?;
        let (rb, tb) = self.gen_expr(rhs)?;
        let mut bc = comparison_cond(op);
        if !jump_if {
            bc = bc.negate();
        }

        let fix_true = self.fix_plan(op, lhs, &ta, ra, rhs, &tb, rb, true);
        let fix_false = self.fix_plan(op, lhs, &ta, ra, rhs, &tb, rb, false);
        let (fix_taken, fix_fall) = if jump_if {
            (fix_true, fix_false)
        } else {
            (fix_false, fix_true)
        };

        if self.opts.insert_fixes && (fix_taken.is_some() || fix_fall.is_some()) {
            let pad = self.new_label();
            let cont = self.new_label();
            self.cur_line = line;
            let branch_pc = self.b.next_pc();
            self.emit_branch(bc, ra, rb, pad);
            self.emit_fix(fix_fall, branch_pc, false);
            self.emit_jump(cont);
            self.bind(pad);
            self.emit_fix(fix_taken, branch_pc, true);
            self.emit_jump(target);
            self.bind(cont);
        } else {
            self.cur_line = line;
            self.emit_branch(bc, ra, rb, target);
        }
        self.free_temp(rb);
        self.free_temp(ra);
        Ok(())
    }

    /// Computes how to fix a simple condition variable so the comparison's
    /// value is `want` (paper §4.4). Returns `None` when neither side is a
    /// fixable simple variable.
    #[allow(clippy::too_many_arguments)]
    fn fix_plan(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        ta: &Type,
        _ra: Reg,
        rhs: &Expr,
        tb: &Type,
        rb: Reg,
        want: bool,
    ) -> Option<FixAction> {
        // Try the left side first, then the mirrored comparison.
        if let Some(action) = self.fix_side(op, lhs, ta, rhs, rb, want, OperandSide::Lhs) {
            return Some(action);
        }
        let mirrored = mirror(op);
        if let Some(action) = self.fix_side(mirrored, rhs, tb, lhs, _ra, want, OperandSide::Rhs) {
            return Some(action);
        }
        None
    }

    /// Fix `var OP other` to have value `want`, where `var` must be a simple
    /// scalar variable with a memory home.
    #[allow(clippy::too_many_arguments)]
    fn fix_side(
        &mut self,
        op: BinOp,
        var: &Expr,
        var_ty: &Type,
        other: &Expr,
        other_reg: Reg,
        want: bool,
        side: OperandSide,
    ) -> Option<FixAction> {
        let ExprKind::Var(name) = &var.kind else {
            return None;
        };
        if !var_ty.is_scalar() {
            return None;
        }
        let Some(Place::Mem { base, offset, ty }) = self.lookup_var(name) else {
            return None;
        };
        let width = if ty == Type::Char {
            Width::Byte
        } else {
            Width::Word
        };

        // Pointer-vs-null: the non-null edge points at the blank structure.
        if let Type::Ptr(pointee) = &ty {
            if let ExprKind::Int(0) = other.kind {
                if matches!(op, BinOp::Eq | BinOp::Ne) {
                    let nonnull_when = matches!(op, BinOp::Ne) == want;
                    let value = if nonnull_when {
                        self.blank_addr_for(pointee) as i32
                    } else {
                        0
                    };
                    return Some(FixAction {
                        value: FixValue::Const(value),
                        home_base: base,
                        home_offset: offset,
                        width,
                        refit: None, // pointer fixes are never refitted
                    });
                }
            }
        }

        let jitter = match self.opts.fix_strategy {
            FixStrategy::Boundary => 0,
            FixStrategy::RandomSatisfying { .. } => (self.next_rand() % 8) as i32,
        };
        let delta = boundary_delta(op, want)?;
        // Apply jitter away from the boundary in the satisfying direction
        // (equality fixes admit no jitter).
        let delta = match (op, want) {
            (BinOp::Eq, true) | (BinOp::Ne, false) => delta,
            _ => {
                if delta <= boundary_delta(op, want).unwrap_or(0) && jitter != 0 {
                    // Move further into the satisfying half-space.
                    let dir = satisfying_direction(op, want);
                    delta + dir * jitter
                } else {
                    delta
                }
            }
        };

        let (value, refit) = match other.kind {
            ExprKind::Int(k) => (
                FixValue::Const((k as i32).wrapping_add(delta)),
                Some(RefitMeta {
                    side,
                    op,
                    want,
                    literal: k as i32,
                }),
            ),
            _ => (
                FixValue::Rel {
                    other: other_reg,
                    delta,
                },
                None,
            ),
        };
        Some(FixAction {
            value,
            home_base: base,
            home_offset: offset,
            width,
            refit,
        })
    }

    fn emit_fix(&mut self, plan: Option<FixAction>, branch_pc: u32, taken_when: bool) {
        let Some(plan) = plan else { return };
        let fix_pc = match plan.value {
            FixValue::Const(v) => self.emit(Instruction::PMovI {
                rd: SCRATCH,
                imm: v,
            }),
            FixValue::Rel { other, delta } => self.emit(Instruction::PAluI {
                op: AluOp::Add,
                rd: SCRATCH,
                rs1: other,
                imm: delta,
            }),
        };
        if let Some(meta) = plan.refit {
            self.fix_sites.push(FixSite {
                fix_pc,
                branch_pc,
                side: meta.side,
                op: meta.op,
                want: meta.want,
                taken_when,
                literal: meta.literal,
            });
        }
        let (base_reg, offset) = match plan.home_base {
            Base::Fp => (Reg::FP, plan.home_offset),
            Base::Abs => (Reg::ZERO, plan.home_offset),
        };
        self.emit(Instruction::PStore {
            width: plan.width,
            rs: SCRATCH,
            base: base_reg,
            offset,
        });
    }

    // ---- lvalues ----

    fn gen_lvalue(&mut self, e: &Expr) -> Result<Place, CompileError> {
        self.cur_line = e.line;
        match &e.kind {
            ExprKind::Var(name) => self.lookup_var(name).ok_or_else(|| CompileError {
                line: e.line,
                message: format!("unknown variable `{name}`"),
            }),
            ExprKind::Un(UnOp::Deref, inner) => {
                let (p, pt) = self.gen_expr(inner)?;
                let Type::Ptr(pointee) = pt else {
                    return cerr(e.line, "dereference of a non-pointer");
                };
                self.ccured_null_check(p, e.line);
                Ok(Place::Indirect {
                    addr: p,
                    ty: *pointee,
                })
            }
            ExprKind::Index(base, index) => self.gen_index_place(base, index, e.line),
            ExprKind::Member(base, field) => {
                let place = self.gen_lvalue(base)?;
                let Type::Struct(sname) = place.ty().clone() else {
                    return cerr(e.line, "member access on a non-struct");
                };
                let layout = self.types.layout(&sname).ok_or_else(|| CompileError {
                    line: e.line,
                    message: format!("unknown struct `{sname}`"),
                })?;
                let fl = layout.fields.get(field).ok_or_else(|| CompileError {
                    line: e.line,
                    message: format!("no field `{field}` in struct `{sname}`"),
                })?;
                let (foffset, fty) = (fl.offset as i32, fl.ty.clone());
                match place {
                    Place::Mem { base, offset, .. } => Ok(Place::Mem {
                        base,
                        offset: offset + foffset,
                        ty: fty,
                    }),
                    Place::Indirect { addr, .. } => {
                        self.emit(Instruction::AluI {
                            op: AluOp::Add,
                            rd: addr,
                            rs1: addr,
                            imm: foffset,
                        });
                        Ok(Place::Indirect { addr, ty: fty })
                    }
                }
            }
            ExprKind::Arrow(base, field) => {
                let (p, pt) = self.gen_expr(base)?;
                let Type::Ptr(pointee) = pt else {
                    return cerr(e.line, "`->` on a non-pointer");
                };
                let Type::Struct(sname) = *pointee else {
                    return cerr(e.line, "`->` on a pointer to non-struct");
                };
                self.ccured_null_check(p, e.line);
                let layout = self.types.layout(&sname).ok_or_else(|| CompileError {
                    line: e.line,
                    message: format!("unknown struct `{sname}`"),
                })?;
                let fl = layout.fields.get(field).ok_or_else(|| CompileError {
                    line: e.line,
                    message: format!("no field `{field}` in struct `{sname}`"),
                })?;
                let (foffset, fty) = (fl.offset as i32, fl.ty.clone());
                self.emit(Instruction::AluI {
                    op: AluOp::Add,
                    rd: p,
                    rs1: p,
                    imm: foffset,
                });
                Ok(Place::Indirect { addr: p, ty: fty })
            }
            _ => cerr(e.line, "expression is not assignable"),
        }
    }

    fn gen_index_place(
        &mut self,
        base: &Expr,
        index: &Expr,
        line: u32,
    ) -> Result<Place, CompileError> {
        // Determine the base address and element type.
        let base_ty = self.type_of_lvalue_or_expr(base)?;
        match base_ty {
            Type::Array(elem, n) => {
                let esz = self
                    .types
                    .size_of(&elem)
                    .map_err(|m| CompileError { line, message: m })?;
                // Address of the array.
                let addr = self.addr_of_lvalue(base)?;
                let (ri, _) = self.gen_expr(index)?;
                self.ccured_bounds_check(ri, n, line);
                self.scale_index(ri, esz)?;
                self.emit(Instruction::Alu {
                    op: AluOp::Add,
                    rd: addr,
                    rs1: addr,
                    rs2: ri,
                });
                self.free_temp(ri);
                Ok(Place::Indirect { addr, ty: *elem })
            }
            Type::Ptr(pointee) => {
                let esz = self
                    .types
                    .size_of(&pointee)
                    .map_err(|m| CompileError { line, message: m })?;
                let (p, _) = self.gen_expr(base)?;
                self.ccured_null_check(p, line);
                let (ri, _) = self.gen_expr(index)?;
                self.scale_index(ri, esz)?;
                self.emit(Instruction::Alu {
                    op: AluOp::Add,
                    rd: p,
                    rs1: p,
                    rs2: ri,
                });
                self.free_temp(ri);
                Ok(Place::Indirect {
                    addr: p,
                    ty: *pointee,
                })
            }
            other => cerr(line, format!("cannot index into `{other:?}`")),
        }
    }

    fn scale_index(&mut self, ri: Reg, esz: u32) -> Result<(), CompileError> {
        match esz {
            1 => {}
            n if n.is_power_of_two() => {
                self.emit(Instruction::AluI {
                    op: AluOp::Shl,
                    rd: ri,
                    rs1: ri,
                    imm: n.trailing_zeros() as i32,
                });
            }
            n => {
                self.emit(Instruction::AluI {
                    op: AluOp::Mul,
                    rd: ri,
                    rs1: ri,
                    imm: n as i32,
                });
            }
        }
        Ok(())
    }

    /// Type of an expression without emitting code (only the shapes needed
    /// to pick indexing strategies).
    fn type_of_lvalue_or_expr(&mut self, e: &Expr) -> Result<Type, CompileError> {
        match &e.kind {
            ExprKind::Var(name) => self
                .lookup_var(name)
                .map(|p| p.ty().clone())
                .ok_or_else(|| CompileError {
                    line: e.line,
                    message: format!("unknown variable `{name}`"),
                }),
            ExprKind::Member(base, field) | ExprKind::Arrow(base, field) => {
                let bt = self.type_of_lvalue_or_expr(base)?;
                let sname = match (&e.kind, bt) {
                    (ExprKind::Member(..), Type::Struct(s)) => s,
                    (ExprKind::Arrow(..), Type::Ptr(p)) => match *p {
                        Type::Struct(s) => s,
                        _ => return cerr(e.line, "`->` on a pointer to non-struct"),
                    },
                    _ => return cerr(e.line, "invalid member access"),
                };
                let layout = self.types.layout(&sname).ok_or_else(|| CompileError {
                    line: e.line,
                    message: format!("unknown struct `{sname}`"),
                })?;
                layout
                    .fields
                    .get(field)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| CompileError {
                        line: e.line,
                        message: format!("no field `{field}` in `{sname}`"),
                    })
            }
            ExprKind::Index(base, _) => match self.type_of_lvalue_or_expr(base)? {
                Type::Array(elem, _) => Ok(*elem),
                Type::Ptr(p) => Ok(*p),
                _ => cerr(e.line, "cannot index"),
            },
            ExprKind::Un(UnOp::Deref, inner) => match self.type_of_lvalue_or_expr(inner)? {
                Type::Ptr(p) => Ok(*p),
                _ => cerr(e.line, "dereference of a non-pointer"),
            },
            ExprKind::Un(UnOp::Addr, inner) => Ok(self.type_of_lvalue_or_expr(inner)?.ptr()),
            ExprKind::Call(name, _) => {
                if let Some((_, ret, _)) = self.func_labels.get(name) {
                    Ok(ret.clone())
                } else {
                    Ok(intrinsic_ret(name).unwrap_or(Type::Int))
                }
            }
            _ => Ok(Type::Int),
        }
    }

    /// Materializes the address of an lvalue into a fresh temp.
    fn addr_of_lvalue(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        let place = self.gen_lvalue(e)?;
        match place {
            Place::Mem { base, offset, .. } => {
                let t = self.alloc_temp()?;
                let base_reg = match base {
                    Base::Fp => Reg::FP,
                    Base::Abs => Reg::ZERO,
                };
                self.emit(Instruction::AluI {
                    op: AluOp::Add,
                    rd: t,
                    rs1: base_reg,
                    imm: offset,
                });
                Ok(t)
            }
            Place::Indirect { addr, .. } => Ok(addr),
        }
    }

    fn store_place(&mut self, place: &Place, value: Reg, line: u32) -> Result<(), CompileError> {
        let ty = place.ty().clone();
        if !ty.is_scalar() {
            return cerr(line, "cannot assign a non-scalar value");
        }
        let width = if ty == Type::Char {
            Width::Byte
        } else {
            Width::Word
        };
        match place {
            Place::Mem { base, offset, .. } => {
                let base_reg = match base {
                    Base::Fp => Reg::FP,
                    Base::Abs => Reg::ZERO,
                };
                self.emit(Instruction::Store {
                    width,
                    rs: value,
                    base: base_reg,
                    offset: *offset,
                });
            }
            Place::Indirect { addr, .. } => {
                self.emit(Instruction::Store {
                    width,
                    rs: value,
                    base: *addr,
                    offset: 0,
                });
            }
        }
        Ok(())
    }

    fn load_place(&mut self, place: &Place, line: u32) -> Result<(Reg, Type), CompileError> {
        let ty = place.ty().clone();
        // Arrays decay to their address.
        if let Type::Array(elem, _) = &ty {
            let decayed = Type::Ptr(elem.clone());
            return match place {
                Place::Mem { base, offset, .. } => {
                    let t = self.alloc_temp()?;
                    let base_reg = match base {
                        Base::Fp => Reg::FP,
                        Base::Abs => Reg::ZERO,
                    };
                    self.emit(Instruction::AluI {
                        op: AluOp::Add,
                        rd: t,
                        rs1: base_reg,
                        imm: *offset,
                    });
                    Ok((t, decayed))
                }
                Place::Indirect { addr, .. } => Ok((*addr, decayed)),
            };
        }
        if !ty.is_scalar() {
            return cerr(line, "cannot load a non-scalar value");
        }
        let width = if ty == Type::Char {
            Width::Byte
        } else {
            Width::Word
        };
        match place {
            Place::Mem { base, offset, .. } => {
                let t = self.alloc_temp()?;
                let base_reg = match base {
                    Base::Fp => Reg::FP,
                    Base::Abs => Reg::ZERO,
                };
                self.emit(Instruction::Load {
                    width,
                    rd: t,
                    base: base_reg,
                    offset: *offset,
                });
                Ok((t, ty))
            }
            Place::Indirect { addr, .. } => {
                self.emit(Instruction::Load {
                    width,
                    rd: *addr,
                    base: *addr,
                    offset: 0,
                });
                Ok((*addr, ty))
            }
        }
    }

    // ---- expressions ----

    #[allow(clippy::too_many_lines)]
    fn gen_expr(&mut self, e: &Expr) -> Result<(Reg, Type), CompileError> {
        self.cur_line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                let t = self.alloc_temp()?;
                self.li(t, *v as i32);
                Ok((t, Type::Int))
            }
            ExprKind::Str(bytes) => {
                let mut blob = bytes.clone();
                blob.push(0);
                let addr = self.push_data(&blob);
                let t = self.alloc_temp()?;
                self.li(t, addr as i32);
                Ok((t, Type::Char.ptr()))
            }
            ExprKind::SizeOf(ty) => {
                let size = self.types.size_of(ty).map_err(|m| CompileError {
                    line: e.line,
                    message: m,
                })?;
                let t = self.alloc_temp()?;
                self.li(t, size as i32);
                Ok((t, Type::Int))
            }
            ExprKind::Var(_) | ExprKind::Member(..) | ExprKind::Arrow(..) | ExprKind::Index(..) => {
                let place = self.gen_lvalue(e)?;
                self.load_place(&place, e.line)
            }
            ExprKind::Un(UnOp::Deref, _) => {
                let place = self.gen_lvalue(e)?;
                self.load_place(&place, e.line)
            }
            ExprKind::Un(UnOp::Addr, inner) => {
                let t = self.addr_of_lvalue(inner)?;
                let ty = self.type_of_lvalue_or_expr(inner)?;
                let pointee = match ty {
                    Type::Array(elem, _) => *elem,
                    other => other,
                };
                Ok((t, pointee.ptr()))
            }
            ExprKind::Un(UnOp::Neg, inner) => {
                let (r, _) = self.gen_expr(inner)?;
                self.emit(Instruction::Alu {
                    op: AluOp::Sub,
                    rd: r,
                    rs1: Reg::ZERO,
                    rs2: r,
                });
                Ok((r, Type::Int))
            }
            ExprKind::Un(UnOp::Not, inner) => {
                let (r, _) = self.gen_expr(inner)?;
                self.emit(Instruction::Alu {
                    op: AluOp::Seq,
                    rd: r,
                    rs1: r,
                    rs2: Reg::ZERO,
                });
                Ok((r, Type::Int))
            }
            ExprKind::Bin(BinOp::LogAnd | BinOp::LogOr, ..) => {
                // Value context: materialize 0/1 through branches.
                let t = self.alloc_temp()?;
                let l_false = self.new_label();
                let l_end = self.new_label();
                // Free the temp during condition evaluation ordering: the
                // condition uses its own temps above `t`.
                self.branch_false(e, l_false)?;
                self.li(t, 1);
                self.emit_jump(l_end);
                self.bind(l_false);
                self.li(t, 0);
                self.bind(l_end);
                Ok((t, Type::Int))
            }
            ExprKind::Bin(op, a, b) => {
                let (ra, ta) = self.gen_expr(a)?;
                let (rb, tb) = self.gen_expr(b)?;
                let result_ty = self.emit_binop(*op, ra, &ta, rb, &tb, e.line)?;
                self.free_temp(rb);
                Ok((ra, result_ty))
            }
            ExprKind::Call(name, args) => {
                let r = self.gen_call(name, args, e.line, false)?;
                r.map(|r| {
                    let ty = if let Some((_, ret, _)) = self.func_labels.get(name) {
                        ret.clone()
                    } else {
                        intrinsic_ret(name).unwrap_or(Type::Int)
                    };
                    (r, ty)
                })
                .ok_or_else(|| CompileError {
                    line: e.line,
                    message: format!("void call `{name}` used as a value"),
                })
            }
        }
    }

    fn emit_binop(
        &mut self,
        op: BinOp,
        ra: Reg,
        ta: &Type,
        rb: Reg,
        tb: &Type,
        line: u32,
    ) -> Result<Type, CompileError> {
        // Pointer arithmetic scaling.
        if matches!(op, BinOp::Add | BinOp::Sub) {
            if let Type::Ptr(pointee) = ta {
                if !tb.is_ptr() {
                    let esz = self
                        .types
                        .size_of(pointee)
                        .map_err(|m| CompileError { line, message: m })?;
                    self.scale_index(rb, esz)?;
                    let alu = if op == BinOp::Add {
                        AluOp::Add
                    } else {
                        AluOp::Sub
                    };
                    self.emit(Instruction::Alu {
                        op: alu,
                        rd: ra,
                        rs1: ra,
                        rs2: rb,
                    });
                    return Ok(ta.clone());
                }
                // ptr - ptr: element count.
                if op == BinOp::Sub && tb.is_ptr() {
                    let esz = self
                        .types
                        .size_of(pointee)
                        .map_err(|m| CompileError { line, message: m })?;
                    self.emit(Instruction::Alu {
                        op: AluOp::Sub,
                        rd: ra,
                        rs1: ra,
                        rs2: rb,
                    });
                    if esz > 1 {
                        self.emit(Instruction::AluI {
                            op: AluOp::Div,
                            rd: ra,
                            rs1: ra,
                            imm: esz as i32,
                        });
                    }
                    return Ok(Type::Int);
                }
            }
            if let Type::Ptr(pointee) = tb {
                if op == BinOp::Add && !ta.is_ptr() {
                    let esz = self
                        .types
                        .size_of(pointee)
                        .map_err(|m| CompileError { line, message: m })?;
                    self.scale_index(ra, esz)?;
                    self.emit(Instruction::Alu {
                        op: AluOp::Add,
                        rd: ra,
                        rs1: ra,
                        rs2: rb,
                    });
                    return Ok(tb.clone());
                }
            }
        }

        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Rem => AluOp::Rem,
            BinOp::BitAnd => AluOp::And,
            BinOp::BitOr => AluOp::Or,
            BinOp::BitXor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => AluOp::Sar,
            BinOp::Eq => AluOp::Seq,
            BinOp::Ne => AluOp::Sne,
            BinOp::Lt => AluOp::Slt,
            BinOp::Le => AluOp::Sle,
            BinOp::Gt => AluOp::Slt,
            BinOp::Ge => AluOp::Sle,
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled by caller"),
        };
        // Gt/Ge swap operands.
        if matches!(op, BinOp::Gt | BinOp::Ge) {
            self.emit(Instruction::Alu {
                op: alu,
                rd: ra,
                rs1: rb,
                rs2: ra,
            });
        } else {
            self.emit(Instruction::Alu {
                op: alu,
                rd: ra,
                rs1: ra,
                rs2: rb,
            });
        }
        Ok(Type::Int)
    }

    // ---- calls and intrinsics ----

    #[allow(clippy::too_many_lines)]
    fn gen_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
        _stmt_ctx: bool,
    ) -> Result<Option<Reg>, CompileError> {
        let argn = |n: usize| -> Result<(), CompileError> {
            if args.len() == n {
                Ok(())
            } else {
                cerr(
                    line,
                    format!("`{name}` expects {n} argument(s), got {}", args.len()),
                )
            }
        };
        match name {
            "getchar" | "readint" | "rand" | "time" => {
                argn(0)?;
                let code = match name {
                    "getchar" => SyscallCode::GetChar,
                    "readint" => SyscallCode::ReadInt,
                    "rand" => SyscallCode::Rand,
                    _ => SyscallCode::Time,
                };
                self.emit(Instruction::Syscall { code });
                let t = self.alloc_temp()?;
                self.mv(t, Reg::RV);
                return Ok(Some(t));
            }
            "putchar" | "printint" | "exit" => {
                argn(1)?;
                let (r, _) = self.gen_expr(&args[0])?;
                self.mv(Reg::A0, r);
                self.free_temp(r);
                let code = match name {
                    "putchar" => SyscallCode::PutChar,
                    "printint" => SyscallCode::PrintInt,
                    _ => SyscallCode::Exit,
                };
                self.emit(Instruction::Syscall { code });
                return Ok(None);
            }
            "assert" => {
                argn(1)?;
                let region_start = self.b.next_pc();
                let (r, _) = self.gen_expr(&args[0])?;
                let site = self.new_site(CheckKind::Assertion, line);
                self.emit(Instruction::Check {
                    kind: CheckKind::Assertion,
                    cond: r,
                    site,
                });
                self.free_temp(r);
                self.b.add_checker_region(region_start, self.b.next_pc());
                return Ok(None);
            }
            "alloc" => {
                argn(1)?;
                let (rn, _) = self.gen_expr(&args[0])?;
                // Align request to 4.
                self.emit(Instruction::AluI {
                    op: AluOp::Add,
                    rd: rn,
                    rs1: rn,
                    imm: 3,
                });
                self.emit(Instruction::AluI {
                    op: AluOp::And,
                    rd: rn,
                    rs1: rn,
                    imm: -4,
                });
                let t = self.alloc_temp()?;
                self.emit(Instruction::Load {
                    width: Width::Word,
                    rd: t,
                    base: Reg::ZERO,
                    offset: self.heap_ptr_addr as i32,
                });
                self.emit(Instruction::Alu {
                    op: AluOp::Add,
                    rd: rn,
                    rs1: t,
                    rs2: rn,
                });
                self.emit(Instruction::Store {
                    width: Width::Word,
                    rs: rn,
                    base: Reg::ZERO,
                    offset: self.heap_ptr_addr as i32,
                });
                // Result is the old heap pointer, now in `t`; swap temps so
                // the returned temp is the top of the stack.
                self.mv(SCRATCH, t);
                self.mv(t, rn);
                self.mv(rn, SCRATCH);
                let result = rn;
                self.free_temp(t);
                return Ok(Some(result));
            }
            "watch" => {
                argn(3)?;
                let ExprKind::Int(tag) = args[2].kind else {
                    return cerr(line, "`watch` tag must be a constant");
                };
                let (rp, _) = self.gen_expr(&args[0])?;
                let (rl, _) = self.gen_expr(&args[1])?;
                self.emit(Instruction::SetWatch {
                    base: rp,
                    len: rl,
                    tag: tag as u32,
                });
                self.free_temp(rl);
                self.free_temp(rp);
                return Ok(None);
            }
            "unwatch" => {
                argn(1)?;
                let ExprKind::Int(tag) = args[0].kind else {
                    return cerr(line, "`unwatch` tag must be a constant");
                };
                self.emit(Instruction::ClearWatch { tag: tag as u32 });
                return Ok(None);
            }
            _ => {}
        }

        // User function.
        let Some((label, ret, params)) = self.func_labels.get(name).cloned() else {
            return cerr(line, format!("unknown function `{name}`"));
        };
        if params.len() != args.len() {
            return cerr(
                line,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    params.len(),
                    args.len()
                ),
            );
        }
        // Spill the temps that must survive the call *below* the argument
        // area, so the callee still sees its arguments at `fp+0..`.
        let live = self.live_temps();
        let spill = live.len() as i32;
        if spill > 0 {
            self.emit(Instruction::AluI {
                op: AluOp::Sub,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: spill * 4,
            });
            for (i, r) in live.iter().enumerate() {
                self.emit(Instruction::Store {
                    width: Width::Word,
                    rs: *r,
                    base: Reg::SP,
                    offset: i as i32 * 4,
                });
            }
        }
        let argc = args.len() as i32;
        if argc > 0 {
            self.emit(Instruction::AluI {
                op: AluOp::Sub,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: argc * 4,
            });
        }
        for (i, arg) in args.iter().enumerate() {
            let (r, _) = self.gen_expr(arg)?;
            self.emit(Instruction::Store {
                width: Width::Word,
                rs: r,
                base: Reg::SP,
                offset: i as i32 * 4,
            });
            self.free_temp(r);
        }
        self.emit_call(label);
        if argc > 0 {
            self.emit(Instruction::AluI {
                op: AluOp::Add,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: argc * 4,
            });
        }
        if spill > 0 {
            for (i, r) in live.iter().enumerate() {
                self.emit(Instruction::Load {
                    width: Width::Word,
                    rd: *r,
                    base: Reg::SP,
                    offset: i as i32 * 4,
                });
            }
            self.emit(Instruction::AluI {
                op: AluOp::Add,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: spill * 4,
            });
        }
        if ret == Type::Void {
            Ok(None)
        } else {
            let t = self.alloc_temp()?;
            self.mv(t, Reg::RV);
            Ok(Some(t))
        }
    }

    // ---- CCured instrumentation ----

    fn ccured_null_check(&mut self, p: Reg, line: u32) {
        if !self.opts.ccured {
            return;
        }
        let start = self.b.next_pc();
        let site = self.new_site(CheckKind::CcuredNull, line);
        self.emit(Instruction::Alu {
            op: AluOp::Sne,
            rd: SCRATCH,
            rs1: p,
            rs2: Reg::ZERO,
        });
        self.emit(Instruction::Check {
            kind: CheckKind::CcuredNull,
            cond: SCRATCH,
            site,
        });
        self.b.add_checker_region(start, self.b.next_pc());
    }

    fn ccured_bounds_check(&mut self, idx: Reg, n: u32, line: u32) {
        if !self.opts.ccured {
            return;
        }
        let start = self.b.next_pc();
        let site = self.new_site(CheckKind::CcuredBound, line);
        self.emit(Instruction::AluI {
            op: AluOp::Sltu,
            rd: SCRATCH,
            rs1: idx,
            imm: n as i32,
        });
        self.emit(Instruction::Check {
            kind: CheckKind::CcuredBound,
            cond: SCRATCH,
            site,
        });
        self.b.add_checker_region(start, self.b.next_pc());
    }
}

fn comparison_cond(op: BinOp) -> BranchCond {
    match op {
        BinOp::Eq => BranchCond::Eq,
        BinOp::Ne => BranchCond::Ne,
        BinOp::Lt => BranchCond::Lt,
        BinOp::Le => BranchCond::Le,
        BinOp::Gt => BranchCond::Gt,
        BinOp::Ge => BranchCond::Ge,
        _ => unreachable!("not a comparison"),
    }
}

/// `a OP b` ⇔ `b mirror(OP) a`.
fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Boundary fix: for `var OP k`, returns `delta` such that `k + delta`
/// satisfies (`want=true`) or violates (`want=false`) the comparison, at the
/// boundary (paper §4.4(1)).
pub(crate) fn boundary_delta(op: BinOp, want: bool) -> Option<i32> {
    Some(match (op, want) {
        (BinOp::Lt, true) | (BinOp::Ge, false) => -1,
        (BinOp::Lt, false) | (BinOp::Ge, true) => 0,
        (BinOp::Le, true) | (BinOp::Gt, false) => 0,
        (BinOp::Le, false) | (BinOp::Gt, true) => 1,
        (BinOp::Eq, true) | (BinOp::Ne, false) => 0,
        (BinOp::Eq, false) | (BinOp::Ne, true) => 1,
        _ => return None,
    })
}

/// Direction (±1) that moves deeper into the satisfying half-space.
pub(crate) fn satisfying_direction(op: BinOp, want: bool) -> i32 {
    match (op, want) {
        (BinOp::Lt | BinOp::Le, true) | (BinOp::Gt | BinOp::Ge, false) => -1,
        _ => 1,
    }
}

fn intrinsic_ret(name: &str) -> Option<Type> {
    match name {
        "getchar" | "readint" | "rand" | "time" => Some(Type::Int),
        "alloc" => Some(Type::Char.ptr()),
        "putchar" | "printint" | "exit" | "assert" | "watch" | "unwatch" => Some(Type::Void),
        _ => None,
    }
}
