//! Lexer for PXC, the mini-C language the workloads are written in.

use core::fmt;

/// A lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and names.
    Ident(String),
    Int(i64),
    Str(Vec<u8>),
    CharLit(u8),

    // Keywords.
    KwInt,
    KwChar,
    KwVoid,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,

    // Operators.
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Not,
    AndAnd,
    OrOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::CharLit(c) => write!(f, "char literal `{}`", *c as char),
            TokenKind::KwInt => write!(f, "`int`"),
            TokenKind::KwChar => write!(f, "`char`"),
            TokenKind::KwVoid => write!(f, "`void`"),
            TokenKind::KwStruct => write!(f, "`struct`"),
            TokenKind::KwIf => write!(f, "`if`"),
            TokenKind::KwElse => write!(f, "`else`"),
            TokenKind::KwWhile => write!(f, "`while`"),
            TokenKind::KwFor => write!(f, "`for`"),
            TokenKind::KwReturn => write!(f, "`return`"),
            TokenKind::KwBreak => write!(f, "`break`"),
            TokenKind::KwContinue => write!(f, "`continue`"),
            TokenKind::KwSizeof => write!(f, "`sizeof`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Shl => write!(f, "`<<`"),
            TokenKind::Shr => write!(f, "`>>`"),
            TokenKind::Not => write!(f, "`!`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Eq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes PXC source into tokens (always ending with [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings/chars, bad escapes or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;

    let err = |line: u32, msg: &str| LexError {
        line,
        message: msg.to_owned(),
    };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut value: i64;
                if c == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'X')) {
                    i += 2;
                    let hex_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hex_start {
                        return Err(err(line, "expected hex digits after 0x"));
                    }
                    value = i64::from_str_radix(
                        std::str::from_utf8(&bytes[hex_start..i]).expect("ascii"),
                        16,
                    )
                    .map_err(|_| err(line, "hex literal too large"))?;
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    value = std::str::from_utf8(&bytes[start..i])
                        .expect("ascii")
                        .parse()
                        .map_err(|_| err(line, "integer literal too large"))?;
                }
                if value > i64::from(u32::MAX) {
                    value = i64::from(u32::MAX);
                }
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i]).expect("ascii");
                let kind = match word {
                    "int" => TokenKind::KwInt,
                    "char" => TokenKind::KwChar,
                    "void" => TokenKind::KwVoid,
                    "struct" => TokenKind::KwStruct,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "while" => TokenKind::KwWhile,
                    "for" => TokenKind::KwFor,
                    "return" => TokenKind::KwReturn,
                    "break" => TokenKind::KwBreak,
                    "continue" => TokenKind::KwContinue,
                    "sizeof" => TokenKind::KwSizeof,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token { kind, line });
            }
            b'"' => {
                i += 1;
                let mut out = Vec::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => return Err(err(line, "unterminated string")),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            let esc = bytes.get(i).copied();
                            out.push(unescape(esc).ok_or_else(|| err(line, "bad escape"))?);
                            i += 1;
                        }
                        Some(&b) => {
                            out.push(b);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(out),
                    line,
                });
            }
            b'\'' => {
                i += 1;
                let value = match bytes.get(i) {
                    Some(b'\\') => {
                        i += 1;
                        let esc = bytes.get(i).copied();
                        i += 1;
                        unescape(esc).ok_or_else(|| err(line, "bad escape"))?
                    }
                    Some(&b) if b != b'\'' => {
                        i += 1;
                        b
                    }
                    _ => return Err(err(line, "empty char literal")),
                };
                if bytes.get(i) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal"));
                }
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::CharLit(value),
                    line,
                });
            }
            _ => {
                let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
                let (kind, len) = if two(b'-', b'>') {
                    (TokenKind::Arrow, 2)
                } else if two(b'&', b'&') {
                    (TokenKind::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (TokenKind::OrOr, 2)
                } else if two(b'=', b'=') {
                    (TokenKind::Eq, 2)
                } else if two(b'!', b'=') {
                    (TokenKind::Ne, 2)
                } else if two(b'<', b'=') {
                    (TokenKind::Le, 2)
                } else if two(b'>', b'=') {
                    (TokenKind::Ge, 2)
                } else if two(b'<', b'<') {
                    (TokenKind::Shl, 2)
                } else if two(b'>', b'>') {
                    (TokenKind::Shr, 2)
                } else {
                    let k = match c {
                        b'(' => TokenKind::LParen,
                        b')' => TokenKind::RParen,
                        b'{' => TokenKind::LBrace,
                        b'}' => TokenKind::RBrace,
                        b'[' => TokenKind::LBracket,
                        b']' => TokenKind::RBracket,
                        b';' => TokenKind::Semi,
                        b',' => TokenKind::Comma,
                        b'.' => TokenKind::Dot,
                        b'=' => TokenKind::Assign,
                        b'+' => TokenKind::Plus,
                        b'-' => TokenKind::Minus,
                        b'*' => TokenKind::Star,
                        b'/' => TokenKind::Slash,
                        b'%' => TokenKind::Percent,
                        b'&' => TokenKind::Amp,
                        b'|' => TokenKind::Pipe,
                        b'^' => TokenKind::Caret,
                        b'!' => TokenKind::Not,
                        b'<' => TokenKind::Lt,
                        b'>' => TokenKind::Gt,
                        other => {
                            return Err(err(
                                line,
                                &format!("unexpected character `{}`", other as char),
                            ))
                        }
                    };
                    (k, 1)
                };
                tokens.push(Token { kind, line });
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn unescape(c: Option<u8>) -> Option<u8> {
    match c? {
        b'n' => Some(b'\n'),
        b't' => Some(b'\t'),
        b'r' => Some(b'\r'),
        b'0' => Some(0),
        b'\\' => Some(b'\\'),
        b'\'' => Some(b'\''),
        b'"' => Some(b'"'),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_function_header() {
        let k = kinds("int f(int a) { return a + 1; }");
        assert_eq!(
            k,
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::KwInt,
                TokenKind::Ident("a".into()),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::KwReturn,
                TokenKind::Ident("a".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators_win() {
        let k = kinds("a <= b == c && d -> e << 2");
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Eq));
        assert!(k.contains(&TokenKind::AndAnd));
        assert!(k.contains(&TokenKind::Arrow));
        assert!(k.contains(&TokenKind::Shl));
    }

    #[test]
    fn comments_and_lines_tracked() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
        assert!(matches!(toks[1].kind, TokenKind::Ident(ref s) if s == "b"));
    }

    #[test]
    fn string_and_char_escapes() {
        let k = kinds(r#""a\n\0" 'x' '\t'"#);
        assert_eq!(k[0], TokenKind::Str(vec![b'a', b'\n', 0]));
        assert_eq!(k[1], TokenKind::CharLit(b'x'));
        assert_eq!(k[2], TokenKind::CharLit(b'\t'));
    }

    #[test]
    fn hex_literals() {
        assert_eq!(kinds("0x10")[0], TokenKind::Int(16));
    }

    #[test]
    fn errors_are_reported() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("@").is_err());
        assert!(lex("/* no end").is_err());
    }
}
