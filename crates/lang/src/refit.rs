//! Profile-guided fix refitting — the paper's §4.4 "value-invariants
//! inference" direction (it cites DIDUCE): instead of pinning a condition
//! variable to the bare comparison boundary, pick a satisfying value that
//! also lies inside the variable's *observed, outcome-conditioned* value
//! range.
//!
//! The win: a guard that is looser than the data it protects. For
//! `if (slot < 64) { table[slot] = ...; }` with `int table[16]`, the
//! boundary fix `slot = 63` sends the NT-path out of bounds — a false
//! positive — while a profiled fix (observed `slot ∈ [0, 15]` whenever the
//! guard held) picks 15 and stays clean.
//!
//! Usage: compile once, run [`collect_branch_profile`] on a general input,
//! then [`refit_fixes`] patches the predicated fix instructions in place.

use std::collections::HashMap;

use px_isa::{Instruction, Program};
use px_mach::{CoreState, IoState, MachConfig, Memory, StepEnv, StepEvent, WatchTable};

use crate::ast::BinOp;
use crate::codegen::{boundary_delta, satisfying_direction, CompiledProgram, OperandSide};

/// Observed `(min, max)` for both operands of a branch.
pub type OperandRanges = ((i32, i32), (i32, i32));

/// What a profiling run learned about one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchObservation {
    /// Ranges over every execution of the branch.
    pub any: OperandRanges,
    /// Ranges over executions where the branch was taken, if any.
    pub taken: Option<OperandRanges>,
    /// Ranges over executions where the branch fell through, if any.
    pub not_taken: Option<OperandRanges>,
}

/// The whole profile: branch instruction index → observation.
pub type BranchRanges = HashMap<u32, BranchObservation>;

fn widen(r: &mut OperandRanges, a: i32, b: i32) {
    r.0 .0 = r.0 .0.min(a);
    r.0 .1 = r.0 .1.max(a);
    r.1 .0 = r.1 .0.min(b);
    r.1 .1 = r.1 .1.max(b);
}

/// Runs `program` once (no PathExpander) and records per-branch,
/// per-outcome operand value ranges.
///
/// The profiling input should be a *general* input — the point is to learn
/// normal value ranges, exactly like the invariant-inference tools the
/// paper cites.
#[must_use]
pub fn collect_branch_profile(
    program: &Program,
    mach: &MachConfig,
    io: IoState,
    max_instructions: u64,
) -> BranchRanges {
    let mut memory = Memory::new(mach.mem_size.max(program.mem_size));
    for item in &program.data {
        memory.load_blob(item.addr, &item.bytes);
    }
    let mut core = CoreState::at_entry(program.entry, memory.size());
    let mut watches = WatchTable::new();
    let mut io = io;
    let mut ranges = BranchRanges::new();

    for _ in 0..max_instructions {
        let mut env = StepEnv {
            io: &mut io,
            watches: &mut watches,
            suppress_syscalls: false,
            now_cycles: 0,
            costs: &mach.costs,
            fault: None,
        };
        let s = px_mach::step(program, &mut core, &mut memory, &mut env);
        match s.event {
            StepEvent::Branch {
                pc,
                taken,
                operands: (a, b),
                ..
            } => {
                let fresh = ((a, a), (b, b));
                let obs = ranges.entry(pc).or_insert(BranchObservation {
                    any: fresh,
                    taken: None,
                    not_taken: None,
                });
                widen(&mut obs.any, a, b);
                let side = if taken {
                    &mut obs.taken
                } else {
                    &mut obs.not_taken
                };
                match side {
                    Some(r) => widen(r, a, b),
                    None => *side = Some(fresh),
                }
            }
            StepEvent::Exit { .. } | StepEvent::Crash { .. } => break,
            _ => {}
        }
    }
    ranges
}

/// Rewrites the compiled program's refittable fix instructions using the
/// observed value ranges. Returns how many fix values changed.
///
/// For each site the pass prefers the range observed *when execution
/// actually went the fixed edge's way* (those values satisfied the condition
/// by construction); if that edge was never taken in the profile, it falls
/// back to clamping the boundary into the overall observed range. Pointer
/// fixes and equality fixes are never touched.
pub fn refit_fixes(compiled: &mut CompiledProgram, ranges: &BranchRanges) -> u32 {
    let mut patched = 0;
    for site in &compiled.fix_sites {
        let Some(obs) = ranges.get(&site.branch_pc) else {
            continue;
        };
        let pick = |r: OperandRanges| match site.side {
            OperandSide::Lhs => r.0,
            OperandSide::Rhs => r.1,
        };
        let outcome = if site.taken_when {
            obs.taken
        } else {
            obs.not_taken
        };
        let value = match outcome {
            // Values observed on this very edge satisfy the condition; take
            // the one nearest the boundary.
            Some(r) => {
                let (lo, hi) = pick(r);
                match satisfying_direction(site.op, site.want) {
                    d if d > 0 => Some(lo),
                    _ => Some(hi),
                }
                .filter(|_| !matches!((site.op, site.want), (BinOp::Eq, true) | (BinOp::Ne, false)))
            }
            // Edge never taken: clamp the boundary into the overall range.
            None => {
                let (lo, hi) = pick(obs.any);
                profiled_value(site.op, site.want, site.literal, lo, hi)
            }
        };
        let Some(value) = value else { continue };
        let insn = compiled.program.code[site.fix_pc as usize];
        let Instruction::PMovI { rd, imm } = insn else {
            debug_assert!(false, "fix site {site:?} does not point at a PMovI");
            continue;
        };
        if imm != value {
            compiled.program.code[site.fix_pc as usize] = Instruction::PMovI { rd, imm: value };
            patched += 1;
        }
    }
    patched
}

/// Picks the value closest to the comparison boundary that satisfies
/// `var OP literal == want` **and** lies within the observed `[lo, hi]`
/// range. `None` when the condition admits exactly one value or no observed
/// value satisfies it (the boundary default stands).
#[must_use]
pub fn profiled_value(op: BinOp, want: bool, literal: i32, lo: i32, hi: i32) -> Option<i32> {
    // Equality-style fixes admit a single value; the profile cannot help.
    if matches!((op, want), (BinOp::Eq, true) | (BinOp::Ne, false)) {
        return None;
    }
    let boundary = literal.checked_add(boundary_delta(op, want)?)?;
    let dir = satisfying_direction(op, want);
    if dir > 0 {
        let v = boundary.max(lo);
        (v <= hi).then_some(v)
    } else {
        let v = boundary.min(hi);
        (v >= lo).then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};

    #[test]
    fn profiled_value_clamps_into_the_observed_range() {
        // x < 100, want true, observed x in [0, 15] -> 15 (not 99).
        assert_eq!(profiled_value(BinOp::Lt, true, 100, 0, 15), Some(15));
        // Observed range already contains the boundary -> boundary.
        assert_eq!(profiled_value(BinOp::Lt, true, 100, 0, 500), Some(99));
        // No observed value satisfies -> None (keep the boundary default).
        assert_eq!(profiled_value(BinOp::Lt, true, 100, 200, 300), None);
        // x > 10, want true, observed [0, 50] -> 11.
        assert_eq!(profiled_value(BinOp::Gt, true, 10, 0, 50), Some(11));
        // x > 10, want false (x <= 10), observed [3, 8] -> 8.
        assert_eq!(profiled_value(BinOp::Gt, false, 10, 3, 8), Some(8));
        // Equality fixes are never refitted.
        assert_eq!(profiled_value(BinOp::Eq, true, 7, 0, 100), None);
        assert_eq!(profiled_value(BinOp::Ne, false, 7, 0, 100), None);
        // x != 7 want true, observed [0, 3]: boundary 8 > hi -> None.
        assert_eq!(profiled_value(BinOp::Ne, true, 7, 0, 3), None);
    }

    #[test]
    fn profile_records_outcome_conditioned_ranges() {
        let compiled = compile(
            "int main() {
                int i;
                for (i = 0; i < 20; i = i + 1) {
                    int v = i * 7 % 30;
                    if (v < 10) { putchar('a' + v); }
                }
                return 0;
            }",
            &CompileOptions::default(),
        )
        .unwrap();
        let ranges = collect_branch_profile(
            &compiled.program,
            &MachConfig::single_core(),
            IoState::default(),
            1_000_000,
        );
        // Find the `v < 10` branch: a site comparing against literal 10.
        let site = compiled
            .fix_sites
            .iter()
            .find(|s| s.literal == 10)
            .expect("v < 10 site");
        let obs = ranges[&site.branch_pc];
        let taken = obs.taken.expect("v < 10 held sometimes");
        let not_taken = obs.not_taken.expect("and failed sometimes");
        // Values on the satisfying side are all < 10; on the other, >= 10.
        assert!(taken.0 .1 < 10, "taken-side max {:?}", taken.0);
        assert!(not_taken.0 .0 >= 10, "fall-side min {:?}", not_taken.0);
        assert_eq!(obs.any.0 .0, taken.0 .0.min(not_taken.0 .0));
    }

    #[test]
    fn fix_sites_are_recorded_and_point_at_pmovi() {
        let compiled = compile(
            "int main() {
                int x = readint();
                int y = 0;
                if (x < 100) { y = 1; }
                if (x > 7) { y = 2; }
                if (x == 3) { y = 3; }
                while (y < 10) { y = y + 1; }
                return 0;
            }",
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(
            compiled.fix_sites.len() >= 6,
            "two sites per branch with integer-literal comparisons, got {}",
            compiled.fix_sites.len()
        );
        for site in &compiled.fix_sites {
            assert!(matches!(
                compiled.program.code[site.fix_pc as usize],
                Instruction::PMovI { .. }
            ));
            assert!(matches!(
                compiled.program.code[site.branch_pc as usize],
                Instruction::Branch { .. }
            ));
        }
        // Each branch with fixes has one taken-edge and one fall-edge site.
        for site in &compiled.fix_sites {
            let sibling = compiled
                .fix_sites
                .iter()
                .find(|s| s.branch_pc == site.branch_pc && s.taken_when != site.taken_when);
            assert!(sibling.is_some(), "both edges carry fixes: {site:?}");
        }
    }

    #[test]
    fn refit_uses_the_satisfying_outcome_range() {
        // `slot < 64` guards a 16-element table; slot is in [0, 15] when the
        // guard holds and in [100, 115] otherwise. The boundary fix (63)
        // would overrun; the refit picks the observed satisfying maximum.
        let mut compiled = compile(
            "int table[16];
             int main() {
                int i;
                for (i = 0; i < 40; i = i + 1) {
                    int slot = i % 16;
                    if (i % 8 == 7) { slot = 100 + slot; }
                    if (slot < 64) {
                        table[slot] = table[slot] + 1;
                    }
                }
                return 0;
             }",
            &CompileOptions::ccured(),
        )
        .unwrap();
        let site = compiled
            .fix_sites
            .iter()
            .find(|s| s.literal == 64 && s.want)
            .expect("slot < 64 true-edge site")
            .clone();
        let Instruction::PMovI { imm, .. } = compiled.program.code[site.fix_pc as usize] else {
            panic!("not a PMovI");
        };
        assert_eq!(imm, 63, "boundary value before refitting");

        let profile = collect_branch_profile(
            &compiled.program,
            &MachConfig::single_core(),
            IoState::default(),
            1_000_000,
        );
        let patched = refit_fixes(&mut compiled, &profile);
        assert!(patched >= 1);
        let Instruction::PMovI { imm, .. } = compiled.program.code[site.fix_pc as usize] else {
            panic!("not a PMovI");
        };
        // slot == 15 occurs only when i % 8 == 7 (i = 15, 31), which takes
        // the other edge — so the satisfying-outcome maximum is 14.
        assert_eq!(imm, 14, "refit to the satisfying-outcome maximum");

        // Idempotent under the same profile.
        assert_eq!(refit_fixes(&mut compiled, &profile), 0);
    }
}
