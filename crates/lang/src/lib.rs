//! # px-lang — the PXC compiler
//!
//! PXC is a small C-like language (ints, chars, pointers, fixed arrays,
//! structs, functions, recursion) that compiles to the PXVM-32 ISA. It plays
//! the role the C toolchain played for the PathExpander paper, including the
//! three compiler duties the paper assigns (§4.4, §6.2):
//!
//! * inserting **predicated variable-fixing instructions** at the head of
//!   both edges of every conditional branch, with per-type **blank data
//!   structures** for pointer conditions;
//! * inserting **CCured-style** bounds and null checks as tagged checker
//!   regions whose reports go to the monitor memory area;
//! * laying out **iWatcher-style red zones** after arrays and registering
//!   hardware watch ranges over them.
//!
//! ## Example
//!
//! ```
//! use px_lang::{compile, CompileOptions};
//! use px_mach::{run_baseline, IoState, MachConfig};
//!
//! let compiled = compile(
//!     r"
//!     int main() {
//!         int i;
//!         int sum = 0;
//!         for (i = 1; i <= 10; i = i + 1) { sum = sum + i; }
//!         printint(sum);
//!         return 0;
//!     }
//!     ",
//!     &CompileOptions::default(),
//! )?;
//! let run = run_baseline(&compiled.program, &MachConfig::single_core(),
//!                        IoState::default(), 100_000);
//! assert_eq!(run.io.output_string(), "55");
//! # Ok::<(), px_lang::CompileError>(())
//! ```
//!
//! ## Intrinsics
//!
//! `getchar()`, `putchar(c)`, `readint()`, `printint(n)`, `rand()`, `time()`,
//! `exit(code)`, `alloc(bytes)` (bump allocator), `assert(cond)`,
//! `watch(ptr, len, tag)`, `unwatch(tag)`, `sizeof(type)`.

pub mod ast;
pub mod codegen;
pub mod parser;
pub mod refit;
pub mod token;
pub mod types;

pub use codegen::{
    compile_unit, CompileOptions, CompiledProgram, FixSite, FixStrategy, OperandSide, SiteInfo,
    WatchInfo,
};
pub use parser::{parse, ParseError};
pub use refit::{profiled_value, refit_fixes, BranchRanges};
pub use types::{CompileError, TypeTable};

/// Compiles PXC source text.
///
/// # Errors
///
/// Returns the first lexical, syntactic, type or codegen error.
pub fn compile(source: &str, opts: &CompileOptions) -> Result<CompiledProgram, CompileError> {
    let unit = parse(source)?;
    compile_unit(&unit, opts)
}
