//! Type layout: sizes, struct field offsets, and the compile-time symbol
//! tables shared by the code generator.

use std::collections::HashMap;

use crate::ast::{StructDef, Type};

/// Compile error with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line (0 when not attributable).
    pub line: u32,
    /// Description.
    pub message: String,
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<crate::parser::ParseError> for CompileError {
    fn from(e: crate::parser::ParseError) -> CompileError {
        CompileError {
            line: e.line,
            message: e.message,
        }
    }
}

pub(crate) fn cerr<T>(line: u32, message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        line,
        message: message.into(),
    })
}

/// One struct field's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Byte offset from the struct base.
    pub offset: u32,
    /// Field type.
    pub ty: Type,
}

/// A laid-out struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Total size in bytes (4-aligned).
    pub size: u32,
    /// Field name → placement.
    pub fields: HashMap<String, FieldLayout>,
}

/// The type table: struct layouts plus size queries.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    structs: HashMap<String, StructLayout>,
}

impl TypeTable {
    /// Lays out all structs of a unit. Structs may reference earlier structs
    /// by value and any struct by pointer.
    ///
    /// # Errors
    ///
    /// Reports unknown struct names and by-value self references.
    pub fn build(defs: &[StructDef]) -> Result<TypeTable, CompileError> {
        let mut table = TypeTable::default();
        for def in defs {
            let mut offset = 0u32;
            let mut fields = HashMap::new();
            for field in &def.fields {
                let size = table.size_of(&field.ty).map_err(|m| CompileError {
                    line: def.line,
                    message: format!("in struct `{}` field `{}`: {m}", def.name, field.name),
                })?;
                let align = table.align_of(&field.ty);
                offset = align_up(offset, align);
                fields.insert(
                    field.name.clone(),
                    FieldLayout {
                        offset,
                        ty: field.ty.clone(),
                    },
                );
                offset += size;
            }
            let layout = StructLayout {
                size: align_up(offset.max(1), 4),
                fields,
            };
            if table.structs.insert(def.name.clone(), layout).is_some() {
                return cerr(def.line, format!("duplicate struct `{}`", def.name));
            }
        }
        Ok(table)
    }

    /// Size of a type in bytes.
    ///
    /// # Errors
    ///
    /// Returns a message for `void`, unknown structs, or zero-size types.
    pub fn size_of(&self, ty: &Type) -> Result<u32, String> {
        match ty {
            Type::Int | Type::Ptr(_) => Ok(4),
            Type::Char => Ok(1),
            Type::Void => Err("`void` has no size".to_owned()),
            Type::Array(elem, n) => Ok(self.size_of(elem)? * n),
            Type::Struct(name) => self
                .structs
                .get(name)
                .map(|s| s.size)
                .ok_or_else(|| format!("unknown struct `{name}`")),
        }
    }

    /// Alignment of a type (1 for char / char arrays, else 4).
    #[must_use]
    pub fn align_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Char => 1,
            Type::Array(elem, _) => self.align_of(elem),
            _ => 4,
        }
    }

    /// A struct's layout, if defined.
    #[must_use]
    pub fn layout(&self, name: &str) -> Option<&StructLayout> {
        self.structs.get(name)
    }

    /// Names of all defined structs, sorted (for deterministic blank-area
    /// layout).
    #[must_use]
    pub fn struct_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.structs.keys().cloned().collect();
        names.sort();
        names
    }
}

pub(crate) fn align_up(v: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Field;

    fn sdef(name: &str, fields: Vec<(&str, Type)>) -> StructDef {
        StructDef {
            name: name.to_owned(),
            fields: fields
                .into_iter()
                .map(|(n, ty)| Field {
                    name: n.to_owned(),
                    ty,
                })
                .collect(),
            line: 1,
        }
    }

    #[test]
    fn struct_layout_aligns_fields() {
        let t = TypeTable::build(&[sdef(
            "S",
            vec![
                ("c", Type::Char),
                ("x", Type::Int),
                ("buf", Type::Array(Box::new(Type::Char), 3)),
                ("p", Type::Int.ptr()),
            ],
        )])
        .unwrap();
        let s = t.layout("S").unwrap();
        assert_eq!(s.fields["c"].offset, 0);
        assert_eq!(s.fields["x"].offset, 4, "int after char aligns to 4");
        assert_eq!(s.fields["buf"].offset, 8);
        assert_eq!(s.fields["p"].offset, 12, "char[3] then align 4");
        assert_eq!(s.size, 16);
    }

    #[test]
    fn nested_struct_by_value_and_pointer() {
        let t = TypeTable::build(&[
            sdef("A", vec![("x", Type::Int)]),
            sdef(
                "B",
                vec![
                    ("a", Type::Struct("A".into())),
                    ("next", Type::Struct("B".into()).ptr()),
                ],
            ),
        ])
        .unwrap();
        assert_eq!(t.size_of(&Type::Struct("B".into())).unwrap(), 8);
    }

    #[test]
    fn by_value_forward_reference_rejected() {
        let e = TypeTable::build(&[sdef("B", vec![("a", Type::Struct("A".into()))])]);
        assert!(e.is_err());
    }

    #[test]
    fn sizes() {
        let t = TypeTable::default();
        assert_eq!(t.size_of(&Type::Int).unwrap(), 4);
        assert_eq!(t.size_of(&Type::Char).unwrap(), 1);
        assert_eq!(t.size_of(&Type::Char.ptr()).unwrap(), 4);
        assert_eq!(
            t.size_of(&Type::Array(Box::new(Type::Int), 10)).unwrap(),
            40
        );
        assert!(t.size_of(&Type::Void).is_err());
        assert_eq!(align_up(5, 4), 8);
        assert_eq!(align_up(8, 4), 8);
    }
}
