//! Abstract syntax tree for PXC.

/// A PXC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer.
    Int,
    /// 8-bit character (widened to `int` in expressions).
    Char,
    /// No value (function returns only).
    Void,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// Fixed-size array (only as a variable's declared type).
    Array(Box<Type>, u32),
    /// A named struct.
    Struct(String),
}

impl Type {
    /// Pointer to this type.
    #[must_use]
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether this is any pointer type.
    #[must_use]
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether values of this type fit in a register as an `int`.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Ptr(_))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical and.
    LogAnd,
    /// Short-circuit logical or.
    LogOr,
}

impl BinOp {
    /// Whether the operator is a comparison producing 0/1.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` → 0/1).
    Not,
    /// Pointer dereference.
    Deref,
    /// Address-of an lvalue.
    Addr,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// String literal (decays to `char*`).
    Str(Vec<u8>),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Array / pointer indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Struct member `base.field`.
    Member(Box<Expr>, String),
    /// Struct member through pointer `base->field`.
    Arrow(Box<Expr>, String),
    /// Function call (user function or intrinsic).
    Call(String, Vec<Expr>),
    /// `sizeof(type)`.
    SizeOf(Type),
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement kind.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: u32,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local declaration with optional initializer.
    Decl {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
    /// Assignment `lvalue = expr;`.
    Assign { target: Expr, value: Expr },
    /// Expression evaluated for side effects (calls).
    Expr(Expr),
    /// `if` with optional `else`.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while` loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// `for (init; cond; step) body` — init/step are statements.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    /// `return` with optional value.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested block.
    Block(Vec<Stmt>),
}

/// A struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type (may be an array).
    pub ty: Type,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
    /// Source line.
    pub line: u32,
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional scalar initializer (constant).
    pub init: Option<i64>,
    /// Optional array initializer (constants).
    pub array_init: Vec<i64>,
    /// Source line.
    pub line: u32,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (scalar).
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Struct definitions, in order.
    pub structs: Vec<StructDef>,
    /// Global variables, in order.
    pub globals: Vec<GlobalDef>,
    /// Functions, in order.
    pub funcs: Vec<FuncDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_helpers() {
        assert!(Type::Int.ptr().is_ptr());
        assert!(Type::Int.is_scalar());
        assert!(Type::Char.is_scalar());
        assert!(Type::Int.ptr().is_scalar());
        assert!(!Type::Array(Box::new(Type::Int), 4).is_scalar());
        assert!(!Type::Struct("S".into()).is_scalar());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LogAnd.is_comparison());
    }
}
